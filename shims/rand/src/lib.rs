//! Offline shim for the `rand` crate.
//!
//! Implements the exact API surface the vulnman workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods
//! `gen_range`/`gen_bool`/`gen` — over a deterministic xoshiro256++ core.
//! Stream values differ from upstream `rand`; everything in this workspace
//! that depends on randomness is seeded, so only determinism matters.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (via splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// splitmix64 step, used to expand seeds into full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The standard RNG: xoshiro256++ (fast, high-quality, deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Common RNG namespace, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// A type samplable uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`hi` exclusive).
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]` (`hi` inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (hi - lo) * unit as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Draws a value of `Self`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let neg = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_range_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
