//! Offline shim for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this shim uses a
//! simple self-describing [`Value`] tree: `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds it from one. `serde_json` (the sibling
//! shim) converts between `Value` and JSON text. The `derive` macros (from
//! the local `serde_derive` shim, re-exported here) cover the shapes this
//! workspace uses: structs with named fields, unit enums, and enums with
//! single-field tuple variants (externally tagged, matching serde_json's
//! default representation).

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order (field order of the serialized struct).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up an object key; missing keys read as `Null` (so `Option`
    /// fields tolerate absent keys, as with upstream serde's defaults).
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Map(m) => {
                m.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&Value::Null)
            }
            _ => &Value::Null,
        }
    }

    /// One-word description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: deserialize one struct field by key.
pub fn field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    T::from_value(v.get(key)).map_err(|e| DeError(format!("field `{key}`: {e}")))
}

/// Helper used by derived code for `#[serde(default)]` fields: a missing or
/// `null` key reads as `Default::default()` instead of an error.
pub fn field_or_default<T: Deserialize + Default>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Value::Null => Ok(T::default()),
        val => T::from_value(val).map_err(|e| DeError(format!("field `{key}`: {e}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as i128;
                if let Ok(i) = i64::try_from(wide) {
                    Value::I64(i)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::I64(i) => *i as i128,
                    Value::U64(u) => *u as i128,
                    Value::F64(f) if f.fract() == 0.0 => *f as i128,
                    other => return Err(DeError(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!(
                    "integer {wide} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::I64(i) => Ok(*i as $t),
                    Value::U64(u) => Ok(*u as $t),
                    other => Err(DeError(format!(
                        "expected number, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!("expected single-char string, got {}", other.kind()))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($len:literal => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected {}-element array, got {}", $len, other.kind()
                    ))),
                }
            }
        }
    };
}

impl_serde_tuple!(2 => A.0, B.1);
impl_serde_tuple!(3 => A.0, B.1, C.2);
impl_serde_tuple!(4 => A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted by key so serialized output is deterministic.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(DeError(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(u64::from_value(&123u64.to_value()).unwrap(), 123);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn big_u64_uses_u64_variant() {
        let v = u64::MAX.to_value();
        assert_eq!(v, Value::U64(u64::MAX));
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn option_null_and_missing_key() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let m = Value::Map(vec![]);
        let got: Option<u32> = field(&m, "absent").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn vec_roundtrip() {
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(String::from_value(&Value::I64(1)).is_err());
        assert!(u8::from_value(&Value::I64(300)).is_err());
    }
}
