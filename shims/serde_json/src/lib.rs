//! Offline shim for `serde_json`: renders the `serde` shim's [`Value`]
//! model to JSON text and parses JSON text back, with the `to_string` /
//! `to_string_pretty` / `from_str` entry points vulnman uses.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-roundtrip for f64 and always includes
                // a `.0` or exponent, keeping floats distinguishable.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}, got `{}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char).unwrap_or('∅')
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("expected `,` or `]` at {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("expected `,` or `}}` at {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".into()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".into()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error(format!("invalid \\u{code:04x}")))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(from_str::<f64>("-1.5").unwrap(), -1.5);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{1F600} café".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        // Unicode escapes with surrogate pairs parse too.
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "\u{1F600}");
    }

    #[test]
    fn vec_and_pretty() {
        let xs = vec![1u32, 2, 3];
        let compact = to_string(&xs).unwrap();
        assert_eq!(compact, "[1,2,3]");
        let pretty = to_string_pretty(&xs).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), xs);
    }

    #[test]
    fn float_precision_survives() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456789.123456, f64::MAX] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), f, "{json}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn u64_beyond_i64_roundtrips() {
        let big = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }
}
