//! Offline shim for `proptest`.
//!
//! Provides the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros and the
//! strategy combinators this workspace uses (integer/float ranges,
//! `any::<T>()`, string-pattern fuzzing, `prop::collection::vec`,
//! `prop::sample::select`) over a deterministic splitmix64 RNG. No
//! shrinking: failures report the case number and the assertion message,
//! and every run is reproducible because the RNG is seeded from the test
//! function's name.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (e.g. the test function name) so each
    /// test gets a distinct but stable stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// Next random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property is checked with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// String *pattern* strategies (`input in ".*"`). The shim does not
/// implement regex generation: every pattern produces adversarial fuzz
/// strings (arbitrary lengths, ASCII punctuation, control chars, quotes and
/// non-ASCII), which is strictly broader than `".*"` — the only pattern
/// this workspace uses.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.below(48) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(8) {
                // Mostly printable ASCII: the interesting fuzz plane for a
                // C-like lexer/parser.
                0..=4 => char::from(32 + rng.below(95) as u8),
                5 => ['\n', '\t', '\r', '"', '\'', '\\', '\0'][rng.below(7) as usize],
                6 => char::from(rng.below(32) as u8),
                _ => char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¿'),
            };
            s.push(c);
        }
        s
    }
}

/// `any::<T>()` strategy for types with a full-range distribution.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Builds the [`AnyStrategy`] for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types with a canonical full-range random distribution.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u16
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(strategy, len_range)`: vectors of strategy-generated elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed pool.
    pub struct SelectStrategy<T> {
        pool: Vec<T>,
    }

    /// `select(pool)`: one element of the pool, cloned.
    pub fn select<T: Clone>(pool: Vec<T>) -> SelectStrategy<T> {
        assert!(!pool.is_empty(), "select: empty pool");
        SelectStrategy { pool }
    }

    impl<T: Clone> Strategy for SelectStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.pool[rng.below(self.pool.len() as u64) as usize].clone()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::sample::select`
/// resolve after `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The common import set.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body (fails the case, with
/// context, instead of panicking immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}:\n{}",
                        stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let mut c = crate::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, m in 10u32..=12, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((10..=12).contains(&m));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_select_compose(
            words in prop::collection::vec(prop::sample::select(vec!["a", "b"]), 0..5),
            seed in any::<u64>(),
        ) {
            prop_assert!(words.len() < 5);
            prop_assert!(words.iter().all(|w| *w == "a" || *w == "b"));
            let _ = seed;
        }

        #[test]
        fn string_pattern_generates(s in ".*") {
            prop_assert!(s.chars().count() <= 48);
        }

        #[test]
        fn tuple_strategies_compose(
            pair in (0u16..10, any::<u8>()),
            pairs in prop::collection::vec((any::<u16>(), 1usize..4), 0..6),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!(pairs.iter().all(|(_, n)| (1..4).contains(n)));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
