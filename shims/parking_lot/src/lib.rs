//! Offline shim for `parking_lot`: the subset vulnman uses (`Mutex`,
//! `RwLock`), backed by `std::sync` with parking_lot's no-poisoning API
//! (lock acquisition never returns `Result`; poison is swallowed).

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
