//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API the vulnman
//! bench files use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark warms up
//! briefly, then runs timed batches for a fixed measurement window and
//! reports mean time per iteration (plus throughput when configured).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements (samples, programs, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`group/name` or a bare parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Total measured time across iterations.
    elapsed: Duration,
    /// Number of measured iterations.
    iters: u64,
    /// Measurement window.
    window: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, measuring wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also primes caches/lazy statics).
        black_box(f());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.window {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{label:<40} (no iterations)");
        return;
    }
    let per_iter = b.elapsed / b.iters as u32;
    let mut line =
        format!("{label:<40} time: {:>12}/iter   iters: {}", format_duration(per_iter), b.iters);
    if let Some(tp) = throughput {
        let per_sec =
            |units: u64| -> f64 { units as f64 * b.iters as f64 / b.elapsed.as_secs_f64() };
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:>12.1} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("   thrpt: {:>12.1} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short window: these benches run in CI and tests, not for
        // publication-grade statistics. `--quick` (or, like real criterion,
        // `--bench -- --quick` forwarding) shrinks the window further for
        // smoke runs that only need every bench to execute once.
        let quick = std::env::args().any(|a| a == "--quick");
        let window = if quick { Duration::from_millis(30) } else { Duration::from_millis(300) };
        Criterion { window }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }

    /// Benches a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, window: self.window };
        f(&mut b);
        report(name, &b, None);
    }
}

/// A group of related benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration used for throughput lines.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall-clock
    /// window, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.window = window;
        self
    }

    /// Benches a closure under an id.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, window: self.criterion.window };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    /// Benches a closure that receives a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0, window: self.criterion.window };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group entry point, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut c = Criterion { window: Duration::from_millis(10) };
        let mut group = c.benchmark_group("shim-selftest");
        group.throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("scan", 3).label, "scan/3");
        assert_eq!(BenchmarkId::from_parameter("curated").label, "curated");
    }
}
