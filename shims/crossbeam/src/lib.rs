//! Offline shim for `crossbeam`: the `channel` module subset vulnman uses
//! (bounded channels with iterator-style consumption), backed by
//! `std::sync::mpsc`.

/// Multi-producer channels with crossbeam's API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected and the
    /// channel is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`]: the channel is at capacity
    /// or the receiver is gone. The message is handed back either way.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel buffer is full; the caller can shed or retry.
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (back-pressure) or the
        /// receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send: enqueues if the buffer has room, otherwise
        /// returns the message immediately — the load-shedding primitive
        /// for bounded admission queues.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
            })
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks for the next message.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Iterates until the channel is closed and drained.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_roundtrip_in_order() {
            let (tx, rx) = bounded::<u32>(4);
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..100 {
                        tx.send(i).unwrap();
                    }
                });
                let got: Vec<u32> = rx.into_iter().collect();
                assert_eq!(got, (0..100).collect::<Vec<_>>());
            });
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
