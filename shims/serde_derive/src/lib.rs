//! Offline shim for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` against the local `serde` shim's
//! `Value` model. Implemented with hand-rolled `proc_macro::TokenStream`
//! parsing (the container has no `syn`/`quote`), covering the item shapes
//! this workspace derives on:
//!
//! - structs with named fields → externally untagged JSON objects;
//! - enums with unit variants → JSON strings (`"Variant"`);
//! - enums with single-field tuple variants → one-entry objects
//!   (`{"Variant": payload}`), matching serde_json's externally-tagged
//!   default.
//!
//! Generics and other shapes are rejected with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the derive target.
enum Item {
    /// Struct name + named fields (`(ident, has_serde_default)`), in
    /// declaration order.
    Struct(String, Vec<(String, bool)>),
    /// Enum name + variants (`(name, has_payload)`).
    Enum(String, Vec<(String, bool)>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Whether the leading attributes of a field chunk include
/// `#[serde(default)]`. Other `serde(...)` options are not supported and
/// are ignored here (the derive treats them as absent).
fn has_serde_default(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(attr)) = chunk.get(i + 1) {
            let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    let has_default = args
                        .stream()
                        .into_iter()
                        .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"));
                    if has_default {
                        return true;
                    }
                }
            }
        }
        i += 2;
    }
    false
}

/// Splits a token slice on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments don't split fields.
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses the derive input into an [`Item`], or an error message.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde shim derive does not support generic type `{name}`"));
        }
    }
    // Find the body: the next brace group (skips `where` clauses, which
    // never appear on non-generic items anyway).
    let body = tokens[i..]
        .iter()
        .find_map(|t| match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .ok_or_else(|| format!("`{name}`: tuple/unit items are not supported by the serde shim"))?;
    let body_tokens: Vec<TokenTree> = body.into_iter().collect();

    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            for chunk in split_top_level_commas(&body_tokens) {
                let j = skip_attrs_and_vis(&chunk, 0);
                match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => {
                        fields.push((id.to_string(), has_serde_default(&chunk)));
                    }
                    None => continue,
                    other => return Err(format!("`{name}`: unexpected field token {other:?}")),
                }
            }
            Ok(Item::Struct(name, fields))
        }
        "enum" => {
            let mut variants = Vec::new();
            for chunk in split_top_level_commas(&body_tokens) {
                let j = skip_attrs_and_vis(&chunk, 0);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => continue,
                    other => return Err(format!("`{name}`: unexpected variant token {other:?}")),
                };
                let payload = match chunk.get(j + 1) {
                    Some(TokenTree::Group(g)) => {
                        if g.delimiter() == Delimiter::Brace {
                            return Err(format!(
                                "`{name}::{vname}`: struct variants are not supported by the serde shim"
                            ));
                        }
                        let arity =
                            split_top_level_commas(&g.stream().into_iter().collect::<Vec<_>>())
                                .len();
                        if arity != 1 {
                            return Err(format!(
                                "`{name}::{vname}`: only 1-field tuple variants are supported, got {arity}"
                            ));
                        }
                        true
                    }
                    _ => false,
                };
                variants.push((vname, payload));
            }
            Ok(Item::Enum(name, variants))
        }
        other => Err(format!("cannot derive serde for `{other}` item")),
    }
}

/// Derives `serde::Serialize`. The `serde` helper attribute is accepted so
/// fields can carry `#[serde(default)]` (which only affects deserialization).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Map(::std::vec![{entries}])
                    }}
                }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(x) => ::serde::Value::Map(::std::vec![(
                                ::std::string::String::from({v:?}),
                                ::serde::Serialize::to_value(x),
                            )]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives `serde::Deserialize`. Fields marked `#[serde(default)]` fall
/// back to `Default::default()` when the key is missing or `null`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|(f, has_default)| {
                    if *has_default {
                        format!("{f}: ::serde::field_or_default(v, {f:?})?,")
                    } else {
                        format!("{f}: ::serde::field(v, {f:?})?,")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        if v.as_map().is_none() {{
                            return ::std::result::Result::Err(::serde::DeError(
                                ::std::format!(\"expected object for {name}, got {{}}\", v.kind())
                            ));
                        }}
                        ::std::result::Result::Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::Enum(name, variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(
                            ::serde::Deserialize::from_value(&m[0].1)?
                        )),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
                        match v {{
                            ::serde::Value::Str(s) => match s.as_str() {{
                                {unit_arms}
                                other => ::std::result::Result::Err(::serde::DeError(
                                    ::std::format!(\"unknown {name} variant `{{other}}`\")
                                )),
                            }},
                            ::serde::Value::Map(m) if m.len() == 1 => match m[0].0.as_str() {{
                                {payload_arms}
                                other => ::std::result::Result::Err(::serde::DeError(
                                    ::std::format!(\"unknown {name} variant `{{other}}`\")
                                )),
                            }},
                            other => ::std::result::Result::Err(::serde::DeError(
                                ::std::format!(\"expected {name} variant, got {{}}\", other.kind())
                            )),
                        }}
                    }}
                }}"
            )
        }
    };
    code.parse().unwrap()
}
