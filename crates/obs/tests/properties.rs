//! Property tests for the observability invariants: random sequences of
//! instrument events must never violate the accounting the exporters (and
//! the golden determinism tests) rely on.

use proptest::prelude::*;
use vulnman_obs::{Registry, Snapshot, BUCKET_BOUNDS};

/// One randomly generated instrument event.
#[derive(Debug, Clone, Copy)]
enum Event {
    CounterAdd(u64),
    GaugeAdd(i64),
    Observe(u64),
    Span,
}

fn decode(code: u64) -> Event {
    // Four event kinds, payload derived from the upper bits. Payloads are
    // kept small enough that no u64 accumulator can overflow within a run.
    let payload = code >> 2;
    match code % 4 {
        0 => Event::CounterAdd(payload % 1_000),
        1 => Event::GaugeAdd((payload % 2_000) as i64 - 1_000),
        2 => Event::Observe(payload % 2_000_000),
        _ => Event::Span,
    }
}

fn apply(registry: &Registry, events: &[u64]) {
    let counter = registry.counter("prop.counter");
    let gauge = registry.gauge("prop.gauge");
    let hist = registry.histogram("prop.hist");
    for &code in events {
        match decode(code) {
            Event::CounterAdd(n) => counter.add(n),
            Event::GaugeAdd(n) => gauge.add(n),
            Event::Observe(v) => hist.observe(v),
            Event::Span => registry.span("prop.span").stop(),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Counters are monotone, gauges sum their deltas, histogram bucket
    /// counts always sum to the observation count, and spans are balanced —
    /// for any event sequence.
    #[test]
    fn instrument_accounting_holds(events in proptest::collection::vec(any::<u64>(), 0..200)) {
        let registry = Registry::new();
        let mut expected_counter = 0u64;
        let mut expected_gauge = 0i64;
        let mut expected_obs: Vec<u64> = Vec::new();
        let mut expected_spans = 0u64;
        let mut last_counter = 0u64;
        // Pre-register every instrument (the schema-stability discipline the
        // engine follows) so empty sequences still export all keys.
        let counter = registry.counter("prop.counter");
        let gauge = registry.gauge("prop.gauge");
        let hist = registry.histogram("prop.hist");
        registry.span("prop.span").stop();
        expected_spans += 1;
        for &code in &events {
            match decode(code) {
                Event::CounterAdd(n) => { counter.add(n); expected_counter += n; }
                Event::GaugeAdd(n) => { gauge.add(n); expected_gauge += n; }
                Event::Observe(v) => { hist.observe(v); expected_obs.push(v); }
                Event::Span => { registry.span("prop.span").stop(); expected_spans += 1; }
            }
            // Monotonicity: the counter never decreases between events.
            let now = counter.get();
            prop_assert!(now >= last_counter, "counter went backwards: {last_counter} -> {now}");
            last_counter = now;
        }
        let snap = registry.snapshot();
        prop_assert_eq!(snap.counters["prop.counter"], expected_counter);
        prop_assert_eq!(snap.gauges["prop.gauge"], expected_gauge);
        let h = &snap.histograms["prop.hist"];
        prop_assert_eq!(h.count, expected_obs.len() as u64);
        prop_assert_eq!(h.sum, expected_obs.iter().sum::<u64>());
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), h.count,
            "bucket counts must sum to the observation count");
        // Each observation landed in exactly the right bucket.
        let mut expected_buckets = vec![0u64; BUCKET_BOUNDS.len() + 1];
        for &v in &expected_obs {
            expected_buckets[BUCKET_BOUNDS.partition_point(|&b| b < v)] += 1;
        }
        prop_assert_eq!(&h.buckets, &expected_buckets);
        // Span balance: every started span was stopped (explicitly or by its
        // drop guard), and each stop produced one histogram entry.
        prop_assert_eq!(snap.spans_started, expected_spans);
        prop_assert_eq!(snap.spans_stopped, expected_spans);
        prop_assert_eq!(snap.histograms["span.prop.span"].count, expected_spans);
    }

    /// The same event sequence against a noop registry records nothing and
    /// exports an empty snapshot — the "disabled means free" contract.
    #[test]
    fn noop_registry_stays_empty(events in proptest::collection::vec(any::<u64>(), 0..100)) {
        let registry = Registry::noop();
        apply(&registry, &events);
        let snap = registry.snapshot();
        prop_assert!(snap.counters.is_empty());
        prop_assert!(snap.gauges.is_empty());
        prop_assert!(snap.histograms.is_empty());
        prop_assert_eq!(snap.spans_started, 0);
        prop_assert_eq!(snap.spans_stopped, 0);
    }

    /// Snapshots survive a JSON round-trip exactly, and normalization is
    /// idempotent and schema-preserving.
    #[test]
    fn snapshot_round_trips_through_json(events in proptest::collection::vec(any::<u64>(), 0..150)) {
        let registry = Registry::new();
        apply(&registry, &events);
        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: Snapshot = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(&back, &snap);
        let norm = snap.normalized();
        prop_assert_eq!(&norm.normalized(), &norm, "normalized() must be idempotent");
        prop_assert_eq!(norm.schema(), snap.schema());
        // Prometheus rendering never emits unsanitized instrument names.
        for line in snap.to_prometheus().lines() {
            prop_assert!(line.starts_with('#') || !line.contains('.'), "unsanitized: {}", line);
        }
    }

    /// Cloned handles share state: parallel-looking updates through clones
    /// are all visible in one snapshot.
    #[test]
    fn cloned_handles_share_state(adds in proptest::collection::vec(1u64..100, 1..20)) {
        let registry = Registry::new();
        let a = registry.counter("prop.shared");
        let b = registry.counter("prop.shared");
        let mut total = 0;
        for (i, &n) in adds.iter().enumerate() {
            if i % 2 == 0 { a.add(n) } else { b.add(n) }
            total += n;
        }
        prop_assert_eq!(a.get(), total);
        prop_assert_eq!(b.get(), total);
        prop_assert_eq!(registry.snapshot().counters["prop.shared"], total);
    }
}
