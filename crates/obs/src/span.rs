//! Hierarchical wall-clock spans.

use crate::histogram::Histogram;
use crate::registry::Registry;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// A running wall-clock span.
///
/// Created by [`Registry::span`]; elapsed time is recorded into the
/// histogram `span.<name>` (microseconds) when the span is stopped.
/// Stopping is explicit ([`Span::stop`]) but guaranteed: a span dropped
/// without an explicit stop records itself from its drop guard, so the
/// start/stop balance invariant holds even across early returns and
/// panics. Spans from a noop registry never read the clock.
pub struct Span {
    name: Option<Arc<str>>,
    hist: Histogram,
    inner: Option<Arc<crate::registry::Inner>>,
    started_at: Option<Instant>,
}

/// A pre-resolved span template for hot loops.
///
/// [`Registry::span`] pays for a name allocation and a registry lookup on
/// every call; a `PreparedSpan` resolves the histogram once at setup time,
/// so each [`PreparedSpan::start`] only bumps the span counter and reads the
/// clock. Recording semantics are identical to `Registry::span` with the
/// same name.
#[derive(Clone)]
pub struct PreparedSpan {
    name: Option<Arc<str>>,
    hist: Histogram,
    inner: Option<Arc<crate::registry::Inner>>,
}

impl std::fmt::Debug for PreparedSpan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedSpan").field("name", &self.name).finish()
    }
}

impl PreparedSpan {
    pub(crate) fn resolve(registry: &Registry, name: &str) -> PreparedSpan {
        match registry.inner() {
            None => PreparedSpan { name: None, hist: Histogram::default(), inner: None },
            Some(inner) => PreparedSpan {
                name: Some(Arc::from(name)),
                hist: registry.histogram(&format!("span.{name}")),
                inner: Some(Arc::clone(inner)),
            },
        }
    }

    /// Starts a span recording into the pre-resolved histogram.
    pub fn start(&self) -> Span {
        match &self.inner {
            None => Span { name: None, hist: Histogram::default(), inner: None, started_at: None },
            Some(inner) => {
                inner.spans_started.fetch_add(1, Ordering::Relaxed);
                Span {
                    name: self.name.clone(),
                    hist: self.hist.clone(),
                    inner: Some(Arc::clone(inner)),
                    started_at: Some(Instant::now()),
                }
            }
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Span").field("name", &self.name).finish()
    }
}

impl Span {
    pub(crate) fn start(registry: &Registry, name: &str) -> Span {
        match registry.inner() {
            None => Span { name: None, hist: Histogram::default(), inner: None, started_at: None },
            Some(inner) => {
                inner.spans_started.fetch_add(1, Ordering::Relaxed);
                Span {
                    name: Some(Arc::from(name)),
                    hist: registry.histogram(&format!("span.{name}")),
                    inner: Some(Arc::clone(inner)),
                    started_at: Some(Instant::now()),
                }
            }
        }
    }

    /// The span's name (`None` for noop spans).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Stops the span, recording its elapsed wall-clock time.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some(t0) = self.started_at.take() {
            self.hist.observe_duration(t0.elapsed());
            if let Some(inner) = &self.inner {
                inner.spans_stopped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_stop_records_once() {
        let r = Registry::new();
        let s = r.span("work");
        s.stop();
        assert_eq!(r.spans_started(), 1);
        assert_eq!(r.spans_stopped(), 1);
        assert_eq!(r.histogram("span.work").count(), 1);
    }

    #[test]
    fn drop_guard_balances_unstopped_spans() {
        let r = Registry::new();
        {
            let _s = r.span("scoped");
        }
        assert_eq!(r.spans_started(), r.spans_stopped());
        assert_eq!(r.histogram("span.scoped").count(), 1);
    }

    #[test]
    fn child_spans_nest_by_name() {
        let r = Registry::new();
        let parent = r.span("stage");
        let child = r.child_span(&parent, "parse");
        assert_eq!(child.name(), Some("stage.parse"));
        child.stop();
        parent.stop();
        assert_eq!(r.histogram("span.stage.parse").count(), 1);
        assert_eq!(r.histogram("span.stage").count(), 1);
        assert_eq!(r.spans_started(), 2);
        assert_eq!(r.spans_stopped(), 2);
    }

    #[test]
    fn panic_unwinding_still_stops_spans() {
        let r = Registry::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _s = r.span("doomed");
            panic!("boom");
        }));
        assert!(result.is_err());
        assert_eq!(r.spans_started(), r.spans_stopped());
    }
}
