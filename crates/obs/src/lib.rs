//! # vulnman-obs
//!
//! Pipeline observability for the workflow engine: a lock-cheap metrics
//! registry (monotonic counters, gauges, fixed-bucket latency histograms)
//! plus hierarchical wall-clock spans with explicit start/stop.
//!
//! The paper's Figure-1 pipeline is an *industrial* workflow whose
//! operating costs — review hours, per-stage throughput, cache behaviour —
//! drive every gap observation. This crate makes those costs visible
//! without perturbing them:
//!
//! * **Hot-path cost is a handful of relaxed atomic ops.** Instruments are
//!   resolved to `Arc`'d atomics once (at registration) and then updated
//!   lock-free; the registry's `Mutex` is touched only when a new name is
//!   first registered or a snapshot is taken.
//! * **A [`Registry::noop`] registry compiles instrumentation down to a
//!   branch on a `None`.** Every handle holds `Option<Arc<...>>`; in noop
//!   mode nothing is allocated, no clock is read, and no atomic is touched,
//!   so disabled instrumentation costs near-zero.
//! * **Exports are deterministic.** [`Snapshot`] stores every table as a
//!   `BTreeMap`, serializes to stable JSON via serde, renders Prometheus
//!   text exposition format, and [`Snapshot::normalized`] zeroes all
//!   timing-derived values so two runs of the same corpus can be compared
//!   structurally (schema + deterministic counts) in golden tests.
//!
//! No external dependencies beyond the workspace's vendored `serde` shim.

#![warn(missing_docs)]

mod export;
mod histogram;
mod registry;
mod span;

pub use export::{HistogramSnapshot, Snapshot};
pub use histogram::{Histogram, BUCKET_BOUNDS};
pub use registry::{Counter, Gauge, Registry};
pub use span::{PreparedSpan, Span};
