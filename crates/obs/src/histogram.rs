//! Fixed-bucket latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds (inclusive) of the fixed buckets, in the unit observed —
/// microseconds for every latency histogram in this workspace. Powers of
/// two from 1 µs to 512 ms; values above the last bound land in the
/// implicit overflow bucket.
pub const BUCKET_BOUNDS: [u64; 20] = [
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536,
    131_072, 262_144, 524_288,
];

/// Number of buckets including the overflow bucket.
pub(crate) const BUCKETS: usize = BUCKET_BOUNDS.len() + 1;

/// Lock-free histogram storage: per-bucket counts plus sum and count.
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    pub(crate) fn observe(&self, value: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A clonable handle to one fixed-bucket histogram.
///
/// Handles from a noop registry discard observations.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

impl Histogram {
    pub(crate) fn from_core(core: Option<Arc<HistogramCore>>) -> Self {
        Histogram(core)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.observe(value);
        }
    }

    /// Records a duration in microseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        match &self.0 {
            Some(core) => core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            None => vec![0; BUCKETS],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_bucket() {
        let h = Histogram::from_core(Some(Arc::new(HistogramCore::default())));
        h.observe(1); // bucket 0 (<= 1)
        h.observe(3); // bucket 2 (<= 4)
        h.observe(1_000_000); // overflow
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[BUCKETS - 1], 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_000_004);
    }

    #[test]
    fn bucket_counts_sum_to_count() {
        let h = Histogram::from_core(Some(Arc::new(HistogramCore::default())));
        for v in [0, 1, 2, 5, 77, 512, 513, u64::MAX / 2] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.observe(10);
        assert_eq!(h.mean(), 0.0, "noop handle never records");
    }

    #[test]
    fn duration_is_recorded_in_micros() {
        let h = Histogram::from_core(Some(Arc::new(HistogramCore::default())));
        h.observe_duration(Duration::from_millis(3));
        assert_eq!(h.sum(), 3_000);
    }
}
