//! Deterministic snapshot and export formats (JSON via serde, Prometheus
//! text exposition, human-readable summary table).

use crate::histogram::BUCKET_BOUNDS;
use crate::registry::Registry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts; the last entry is the overflow
    /// bucket above the largest bound in [`BUCKET_BOUNDS`].
    pub buckets: Vec<u64>,
    /// Sum of all observed values (microseconds for latency histograms).
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) of the observed values,
    /// linearly interpolated inside the fixed bucket that contains the
    /// target rank. Observations in the overflow bucket report the largest
    /// bound. Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let below = seen as f64;
            seen += n;
            if (seen as f64) >= rank {
                let hi = BUCKET_BOUNDS.get(i).copied().unwrap_or(BUCKET_BOUNDS[19]) as f64;
                let lo = if i == 0 { 0.0 } else { BUCKET_BOUNDS[i - 1] as f64 };
                let frac = ((rank - below) / n as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        BUCKET_BOUNDS[19] as f64
    }
}

/// A frozen, serializable view of every instrument in a [`Registry`].
///
/// All tables are `BTreeMap`s, so serialization order — and therefore the
/// exported JSON and Prometheus text — is deterministic for a given set of
/// instrument names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name (spans appear as `span.<name>`).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Total spans started.
    pub spans_started: u64,
    /// Total spans stopped.
    pub spans_stopped: u64,
}

impl Snapshot {
    pub(crate) fn capture(registry: &Registry) -> Snapshot {
        let Some(inner) = registry.inner() else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, core)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        buckets: core.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                        sum: core.sum.load(Ordering::Relaxed),
                        count: core.count.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans_started: inner.spans_started.load(Ordering::Relaxed),
            spans_stopped: inner.spans_stopped.load(Ordering::Relaxed),
        }
    }

    /// A copy with every timing-derived value zeroed: histogram sums and
    /// bucket distributions are dropped, observation *counts* are kept.
    /// Two runs of the same deterministic workload produce identical
    /// normalized snapshots regardless of machine speed, which is what the
    /// golden determinism tests compare.
    pub fn normalized(&self) -> Snapshot {
        let mut out = self.clone();
        for h in out.histograms.values_mut() {
            h.sum = 0;
            h.buckets = vec![0; h.buckets.len()];
        }
        out
    }

    /// Every instrument name in the snapshot, sorted: the metrics schema.
    pub fn schema(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .counters
            .keys()
            .map(|k| format!("counter:{k}"))
            .chain(self.gauges.keys().map(|k| format!("gauge:{k}")))
            .chain(self.histograms.keys().map(|k| format!("histogram:{k}")))
            .collect();
        keys.sort();
        keys
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Instrument names are sanitized to `[a-zA-Z0-9_]` (dots and dashes
    /// become underscores) and histograms expose the conventional
    /// `_bucket{le=…}`, `_sum`, `_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (i, count) in h.buckets.iter().enumerate() {
                cumulative += count;
                let le = match BUCKET_BOUNDS.get(i) {
                    Some(bound) => bound.to_string(),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out.push_str(&format!(
            "# TYPE spans_started counter\nspans_started {}\n\
             # TYPE spans_stopped counter\nspans_stopped {}\n",
            self.spans_started, self.spans_stopped
        ));
        out
    }

    /// Renders a compact human-readable summary: per-stage span timings,
    /// then counters and gauges. Printed at the end of workflow runs.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let spans: Vec<(&String, &HistogramSnapshot)> =
            self.histograms.iter().filter(|(k, _)| k.starts_with("span.")).collect();
        if !spans.is_empty() {
            out.push_str(&format!(
                "{:<38} {:>9} {:>12} {:>12}\n",
                "span", "count", "total ms", "mean µs"
            ));
            for (name, h) in spans {
                out.push_str(&format!(
                    "{:<38} {:>9} {:>12.2} {:>12.1}\n",
                    &name["span.".len()..],
                    h.count,
                    h.sum as f64 / 1_000.0,
                    h.mean()
                ));
            }
        }
        let plain: Vec<(&String, &HistogramSnapshot)> =
            self.histograms.iter().filter(|(k, _)| !k.starts_with("span.")).collect();
        if !plain.is_empty() {
            out.push_str(&format!(
                "{:<38} {:>9} {:>12} {:>12}\n",
                "histogram", "count", "sum", "mean"
            ));
            for (name, h) in plain {
                out.push_str(&format!(
                    "{:<38} {:>9} {:>12} {:>12.1}\n",
                    name,
                    h.count,
                    h.sum,
                    h.mean()
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<38} {:>9}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<38} {v:>9}\n"));
            }
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<38} {v:>9} (gauge)\n"));
        }
        out
    }
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("cache.hits").add(7);
        r.counter("cache.misses").add(3);
        r.gauge("cache.bytes").set(1024);
        let h = r.histogram("shard.latency_micros");
        h.observe(5);
        h.observe(300);
        let s = r.span("stage.assess");
        s.stop();
        r
    }

    #[test]
    fn snapshot_captures_everything() {
        let snap = populated().snapshot();
        assert_eq!(snap.counters["cache.hits"], 7);
        assert_eq!(snap.gauges["cache.bytes"], 1024);
        assert_eq!(snap.histograms["shard.latency_micros"].count, 2);
        assert_eq!(snap.histograms["span.stage.assess"].count, 1);
        assert_eq!(snap.spans_started, 1);
        assert_eq!(snap.spans_stopped, 1);
    }

    #[test]
    fn normalized_zeroes_timings_keeps_counts() {
        let snap = populated().snapshot();
        let norm = snap.normalized();
        let h = &norm.histograms["shard.latency_micros"];
        assert_eq!(h.sum, 0);
        assert!(h.buckets.iter().all(|&b| b == 0));
        assert_eq!(h.count, 2);
        assert_eq!(norm.counters, snap.counters);
        assert_eq!(norm.schema(), snap.schema());
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = populated().snapshot().to_prometheus();
        assert!(text.contains("# TYPE cache_hits counter"));
        assert!(text.contains("cache_hits 7"));
        assert!(text.contains("# TYPE span_stage_assess histogram"));
        assert!(text.contains("span_stage_assess_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("span_stage_assess_count 1"));
        // Cumulative buckets: the +Inf bucket equals the count.
        for line in text.lines() {
            assert!(!line.contains('.') || line.starts_with('#'), "sanitized: {line}");
        }
    }

    #[test]
    fn summary_mentions_spans_and_counters() {
        let s = populated().snapshot().render_summary();
        assert!(s.contains("stage.assess"));
        assert!(s.contains("cache.hits"));
    }
}
