//! The metrics registry and its scalar instruments.

use crate::export::Snapshot;
use crate::histogram::{Histogram, HistogramCore};
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event counter.
///
/// Handles are cheap clones of one shared atomic; a handle from a
/// [`Registry::noop`] registry ignores every update.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for noop handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Resets the counter to zero.
    ///
    /// Counters are monotonic during normal operation; reset exists only
    /// for lifecycle boundaries (cache clears between benchmark runs,
    /// test isolation) and is never called on the hot path.
    pub fn reset(&self) {
        if let Some(c) = &self.0 {
            c.store(0, Ordering::Relaxed);
        }
    }
}

/// An instantaneous signed value (queue depth, resident bytes).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Adds to the gauge (negative deltas allowed).
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for noop handles).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Shared storage behind an enabled registry.
#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    pub(crate) gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    pub(crate) histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    /// Span bookkeeping for the balance invariant: every started span is
    /// eventually stopped (explicitly or by its drop guard).
    pub(crate) spans_started: AtomicU64,
    pub(crate) spans_stopped: AtomicU64,
}

/// A clonable handle to one metrics domain.
///
/// All clones share storage, so instruments registered by one component
/// (the analysis cache, the detector registry, the ML pipeline) land in the
/// same snapshot. Instrument names are dot-separated paths; span names form
/// the hierarchy (`stage.assess`, `stage.assess.detect`, …).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Registry {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(Inner::default())) }
    }

    /// Creates the no-op recorder: every instrument it hands out discards
    /// updates without reading the clock or touching memory.
    pub fn noop() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-fetches) a counter by name.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Registers (or re-fetches) a gauge by name.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .gauges
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Registers (or re-fetches) a fixed-bucket histogram by name.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram::from_core(self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .histograms
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(name.to_string())
                    .or_default(),
            )
        }))
    }

    /// Starts a wall-clock span. Stop it explicitly with [`Span::stop`];
    /// an unstopped span records itself when dropped, so start/stop is
    /// always balanced. The elapsed time lands in the histogram
    /// `span.<name>` (microseconds).
    pub fn span(&self, name: &str) -> Span {
        Span::start(self, name)
    }

    /// Resolves a reusable span template: the histogram lookup and name
    /// allocation happen here, once, so starting the span in a hot loop is
    /// nearly free. Records exactly like [`Registry::span`] with `name`.
    pub fn prepared_span(&self, name: &str) -> crate::span::PreparedSpan {
        crate::span::PreparedSpan::resolve(self, name)
    }

    /// Starts a child span `parent.name` under an existing span's name.
    pub fn child_span(&self, parent: &Span, name: &str) -> Span {
        match parent.name() {
            Some(p) => Span::start(self, &format!("{p}.{name}")),
            None => Span::start(self, name),
        }
    }

    pub(crate) fn inner(&self) -> Option<&Arc<Inner>> {
        self.inner.as_ref()
    }

    /// Number of spans started so far.
    pub fn spans_started(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans_started.load(Ordering::Relaxed))
    }

    /// Number of spans stopped so far.
    pub fn spans_stopped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.spans_stopped.load(Ordering::Relaxed))
    }

    /// Captures the current state of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(r.counter("x").get(), 5);
    }

    #[test]
    fn gauges_go_both_ways() {
        let r = Registry::new();
        let g = r.gauge("depth");
        g.add(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn noop_registry_discards_everything() {
        let r = Registry::noop();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = r.gauge("g");
        g.set(5);
        assert_eq!(g.get(), 0);
        let h = r.histogram("h");
        h.observe(1);
        assert_eq!(h.count(), 0);
        let s = r.span("anything");
        s.stop();
        assert_eq!(r.spans_started(), 0);
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("shared").inc();
        assert_eq!(r2.counter("shared").get(), 1);
        assert_eq!(r2.snapshot().counters.get("shared"), Some(&1));
    }

    #[test]
    fn counter_reset_is_explicit_only() {
        let r = Registry::new();
        let c = r.counter("c");
        c.add(9);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
