//! Logistic regression trained by mini-batch SGD.

use crate::model::{sigmoid, validate_fit_input, Classifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// L2-regularized logistic regression.
///
/// # Examples
///
/// ```
/// use vulnman_ml::{linear::LogisticRegression, model::Classifier};
/// let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.1, 0.9], vec![0.9, 0.1]];
/// let y = vec![true, false, true, false];
/// let mut m = LogisticRegression::new(2, 1);
/// m.fit(&x, &y);
/// assert!(m.predict(&[0.0, 1.0]));
/// assert!(!m.predict(&[1.0, 0.0]));
/// ```
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    dim: usize,
    seed: u64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of passes over the data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
}

impl LogisticRegression {
    /// Creates an untrained model for `dim`-dimensional inputs.
    pub fn new(dim: usize, seed: u64) -> Self {
        LogisticRegression {
            weights: vec![0.0; dim],
            bias: 0.0,
            dim,
            seed,
            learning_rate: 0.5,
            epochs: 60,
            l2: 1e-4,
        }
    }

    /// The learned weight vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    fn run_epochs(&mut self, x: &[Vec<f64>], y: &[bool], epochs: usize) {
        let n = x.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..epochs {
            // Fisher–Yates shuffle per epoch.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let lr = self.learning_rate / (1.0 + 0.05 * epoch as f64);
            for &i in &order {
                let row = &x[i];
                let z = self.bias + row.iter().zip(&self.weights).map(|(a, w)| a * w).sum::<f64>();
                let p = sigmoid(z);
                let err = p - if y[i] { 1.0 } else { 0.0 };
                for (w, a) in self.weights.iter_mut().zip(row) {
                    *w -= lr * (err * a + self.l2 * *w);
                }
                self.bias -= lr * err;
            }
        }
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "logreg"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        assert_eq!(x[0].len(), self.dim, "input dimension mismatch");
        self.weights = vec![0.0; self.dim];
        self.bias = 0.0;
        self.run_epochs(x, y, self.epochs);
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        let z = self.bias + x.iter().zip(&self.weights).map(|(a, w)| a * w).sum::<f64>();
        sigmoid(z)
    }

    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        // One pass over the matrix; each row's dot product runs the exact
        // ops of `predict_proba`, so the scores are bit-identical.
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            let z = self.bias + x.iter().zip(&self.weights).map(|(a, w)| a * w).sum::<f64>();
            out.push(sigmoid(z));
        }
        out
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    fn fit_incremental(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        // Warm start: fewer epochs at a reduced rate, keeping prior weights.
        let saved = self.learning_rate;
        self.learning_rate *= 0.5;
        self.run_epochs(x, y, (self.epochs / 2).max(1));
        self.learning_rate = saved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label: bool = rng.gen_bool(0.5);
            let center = if label { 1.0 } else { -1.0 };
            x.push(vec![center + rng.gen_range(-0.5..0.5), -center + rng.gen_range(-0.5..0.5)]);
            y.push(label);
        }
        (x, y)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(200, 3);
        let mut m = LogisticRegression::new(2, 7);
        m.fit(&x, &y);
        let correct = x.iter().zip(&y).filter(|(xi, yi)| m.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "{correct}/200");
    }

    #[test]
    fn deterministic_with_seed() {
        let (x, y) = blobs(100, 4);
        let mut a = LogisticRegression::new(2, 9);
        let mut b = LogisticRegression::new(2, 9);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn incremental_improves_on_shifted_data() {
        let (x, y) = blobs(200, 5);
        let mut m = LogisticRegression::new(2, 1);
        m.fit(&x, &y);
        // New domain: labels flipped along a shifted boundary.
        let mut rng = StdRng::seed_from_u64(6);
        let mut x2 = Vec::new();
        let mut y2 = Vec::new();
        for _ in 0..200 {
            let label: bool = rng.gen_bool(0.5);
            let center = if label { 3.0 } else { 1.0 };
            x2.push(vec![center + rng.gen_range(-0.4..0.4), rng.gen_range(-0.4..0.4)]);
            y2.push(label);
        }
        let before = x2.iter().zip(&y2).filter(|(xi, yi)| m.predict(xi) == **yi).count();
        m.fit_incremental(&x2, &y2);
        let after = x2.iter().zip(&y2).filter(|(xi, yi)| m.predict(xi) == **yi).count();
        assert!(after > before, "fine-tuning should adapt: {before} -> {after}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut m = LogisticRegression::new(3, 1);
        m.fit(&[vec![1.0, 2.0]], &[true]);
    }

    #[test]
    fn proba_in_unit_interval() {
        let (x, y) = blobs(50, 8);
        let mut m = LogisticRegression::new(2, 2);
        m.fit(&x, &y);
        for xi in &x {
            let p = m.predict_proba(xi);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
