//! The classifier abstraction shared by every model family.

/// A trainable binary classifier over dense feature vectors.
///
/// Implementations must be deterministic given their construction seed.
pub trait Classifier: Send + Sync {
    /// Stable model-family name.
    fn name(&self) -> &'static str;

    /// Trains from scratch on the given matrix.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x` and `y` lengths differ or `x` is empty.
    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]);

    /// Probability that `x` is positive (vulnerable), in `[0, 1]`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Scores every row of `xs`, in order: one matrix pass instead of one
    /// dispatch per row. Must be bit-identical to calling
    /// [`Classifier::predict_proba`] on each row — the batch path may share
    /// per-batch setup (scratch buffers, hoisted constants) but never
    /// reorder per-row floating-point operations. The default maps per row.
    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict_proba(x)).collect()
    }

    /// Hard decision at the 0.5 threshold.
    fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Whether [`Classifier::fit_incremental`] continues training rather
    /// than refitting (true for gradient-based models).
    fn supports_incremental(&self) -> bool {
        false
    }

    /// Continues training on additional data (fine-tuning). The default
    /// retrains from scratch on only the new data; gradient-based models
    /// override this to warm-start from current parameters.
    fn fit_incremental(&mut self, x: &[Vec<f64>], y: &[bool]) {
        self.fit(x, y);
    }
}

pub(crate) fn validate_fit_input(x: &[Vec<f64>], y: &[bool]) {
    assert!(!x.is_empty(), "training set must be non-empty");
    assert_eq!(x.len(), y.len(), "features and labels must align");
    let d = x[0].len();
    assert!(x.iter().all(|r| r.len() == d), "all rows must share a dimension");
}

pub(crate) fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        // Numerically stable at extremes.
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(1000.0) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_input_rejected() {
        validate_fit_input(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_labels_rejected() {
        validate_fit_input(&[vec![1.0]], &[true, false]);
    }
}
