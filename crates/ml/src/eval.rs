//! Evaluation metrics and multi-model agreement statistics.

use serde::{Deserialize, Serialize};

/// Binary-classification confusion counts and derived metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Metrics {
    /// Builds metrics from aligned prediction/truth slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    ///
    /// # Examples
    ///
    /// ```
    /// use vulnman_ml::eval::Metrics;
    /// let m = Metrics::from_predictions(&[true, false, true], &[true, false, false]);
    /// assert_eq!(m.tp, 1);
    /// assert_eq!(m.fp, 1);
    /// assert!((m.precision() - 0.5).abs() < 1e-12);
    /// ```
    pub fn from_predictions(pred: &[bool], truth: &[bool]) -> Metrics {
        assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
        let mut m = Metrics::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p, t) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision (`tp / (tp + fp)`); 0 when no positive predictions.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (`tp / (tp + fn)`); 0 when no positive samples.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// False positives per true positive — the triage-burden number the
    /// paper's financial argument turns on ("ten times as many false
    /// positives… unlikely to be adopted"). Infinite when `tp == 0` but
    /// `fp > 0`; 0 when both are 0.
    pub fn fp_per_tp(&self) -> f64 {
        if self.tp == 0 {
            if self.fp == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.fp as f64 / self.tp as f64
        }
    }
}

/// Area under the ROC curve from scores (rank statistic, ties averaged).
///
/// Non-finite policy: a `NaN` score carries no ranking information (it is
/// neither above nor below any threshold), so each `(NaN, label)` pair is
/// **dropped** before ranking — the result is the AUC of the finite-scored
/// subset. `±inf` are legitimate extreme scores and rank above/below every
/// finite value. Returns 0.5 when either class is absent after filtering.
///
/// (Previously NaN scores were kept and silently treated as ties: NaN
/// defeats both the `partial_cmp` sort and the `==` tie grouping, so a
/// single NaN quietly skewed the ranks of every other sample.)
pub fn roc_auc(scores: &[f64], truth: &[bool]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "scores/truth length mismatch");
    let kept: Vec<(f64, bool)> =
        scores.iter().zip(truth).filter(|(s, _)| !s.is_nan()).map(|(&s, &t)| (s, t)).collect();
    let n_pos = kept.iter().filter(|(_, t)| *t).count();
    let n_neg = kept.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank with average ties. `total_cmp` is a total order on the NaN-free
    // slice and agrees with `==` on tie groups (±inf included).
    let mut idx: Vec<usize> = (0..kept.len()).collect();
    idx.sort_by(|&a, &b| kept[a].0.total_cmp(&kept[b].0));
    let mut ranks = vec![0.0; kept.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && kept[idx[j + 1]].0 == kept[idx[i]].0 {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    let sum_pos: f64 = ranks.iter().zip(&kept).filter(|(_, (_, t))| *t).map(|(r, _)| r).sum();
    (sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0) / (n_pos * n_neg) as f64
}

/// Agreement statistics across multiple models' predictions on the same
/// sample set — the measurements behind Gap Observation 1 ("leading AI
/// models only agree 7% of the time").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgreementReport {
    /// Number of models compared.
    pub n_models: usize,
    /// Number of samples compared on.
    pub n_samples: usize,
    /// Fraction of samples where *all* models emit the same prediction.
    pub unanimous_rate: f64,
    /// Mean pairwise agreement rate.
    pub mean_pairwise: f64,
    /// Fleiss' kappa (chance-corrected multi-rater agreement).
    pub fleiss_kappa: f64,
}

/// Computes agreement across `predictions[model][sample]`.
///
/// # Panics
///
/// Panics unless at least two models with equal, non-zero sample counts are
/// given.
pub fn agreement(predictions: &[Vec<bool>]) -> AgreementReport {
    assert!(predictions.len() >= 2, "need at least two models");
    let n = predictions[0].len();
    assert!(n > 0, "need at least one sample");
    assert!(predictions.iter().all(|p| p.len() == n), "sample counts must match");
    let m = predictions.len();

    let mut unanimous = 0usize;
    for s in 0..n {
        let first = predictions[0][s];
        if predictions.iter().all(|p| p[s] == first) {
            unanimous += 1;
        }
    }

    let mut pair_sum = 0.0;
    let mut pairs = 0usize;
    for a in 0..m {
        for b in (a + 1)..m {
            let same = (0..n).filter(|&s| predictions[a][s] == predictions[b][s]).count();
            pair_sum += same as f64 / n as f64;
            pairs += 1;
        }
    }

    // Fleiss' kappa with two categories.
    let mut p_i_sum = 0.0;
    let mut pos_total = 0usize;
    for s in 0..n {
        let pos = predictions.iter().filter(|p| p[s]).count();
        let neg = m - pos;
        pos_total += pos;
        p_i_sum += (pos * pos + neg * neg - m) as f64 / (m * (m - 1)) as f64;
    }
    let p_bar = p_i_sum / n as f64;
    let p_pos = pos_total as f64 / (n * m) as f64;
    let p_e = p_pos * p_pos + (1.0 - p_pos) * (1.0 - p_pos);
    let fleiss_kappa = if (1.0 - p_e).abs() < 1e-12 { 1.0 } else { (p_bar - p_e) / (1.0 - p_e) };

    AgreementReport {
        n_models: m,
        n_samples: n,
        unanimous_rate: unanimous as f64 / n as f64,
        mean_pairwise: pair_sum / pairs as f64,
        fleiss_kappa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_identities() {
        let m = Metrics { tp: 8, fp: 2, tn: 85, fn_: 5 };
        assert_eq!(m.total(), 100);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 8.0 / 13.0).abs() < 1e-12);
        let p = m.precision();
        let r = m.recall();
        assert!((m.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
        assert!((m.accuracy() - 0.93).abs() < 1e-12);
        assert!((m.fp_per_tp() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_metrics_are_zero_not_nan() {
        let m = Metrics::default();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.fp_per_tp(), 0.0);
        let m = Metrics { fp: 3, ..Metrics::default() };
        assert!(m.fp_per_tp().is_infinite());
    }

    #[test]
    fn all_negative_corpus_yields_finite_metrics() {
        // No positive samples at all (a clean codebase): every derived
        // metric must be a finite number or a documented infinity, never
        // NaN.
        let truth = vec![false; 50];
        for flag_rate in [0, 1, 50] {
            let pred: Vec<bool> = (0..50).map(|i| i < flag_rate).collect();
            let m = Metrics::from_predictions(&pred, &truth);
            assert_eq!(m.recall(), 0.0, "no positives to recall");
            assert_eq!(m.f1(), 0.0);
            assert!(!m.precision().is_nan());
            assert!(!m.accuracy().is_nan());
            assert!(!m.fp_per_tp().is_nan());
        }
        assert_eq!(roc_auc(&[0.3; 50], &truth), 0.5);
    }

    #[test]
    fn all_positive_corpus_yields_finite_metrics() {
        // Every sample vulnerable (a worst-case triage queue).
        let truth = vec![true; 50];
        for flag_rate in [0, 1, 50] {
            let pred: Vec<bool> = (0..50).map(|i| i < flag_rate).collect();
            let m = Metrics::from_predictions(&pred, &truth);
            assert!(!m.precision().is_nan());
            assert!(!m.recall().is_nan());
            assert!(!m.f1().is_nan());
            assert!(!m.accuracy().is_nan());
            assert_eq!(m.fp_per_tp(), 0.0, "no negatives, so no false positives");
        }
        assert_eq!(roc_auc(&[0.7; 50], &truth), 0.5);
    }

    #[test]
    fn perfect_predictions() {
        let truth = [true, false, true, false];
        let m = Metrics::from_predictions(&truth, &truth);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truth = [true, true, false, false];
        assert!((roc_auc(&[0.9, 0.8, 0.2, 0.1], &truth) - 1.0).abs() < 1e-12);
        assert!((roc_auc(&[0.1, 0.2, 0.8, 0.9], &truth) - 0.0).abs() < 1e-12);
        assert!((roc_auc(&[0.5, 0.5, 0.5, 0.5], &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn auc_nan_scores_are_dropped_not_tied() {
        // Regression: NaN used to survive into the ranking, where it
        // defeats both the sort comparator and the `==` tie grouping —
        // one NaN quietly shifted every other sample's rank. Policy now:
        // a (NaN, label) pair is dropped, so the AUC equals the AUC of
        // the finite-scored subset.
        let truth = [true, true, true, false, false];
        let with_nan = [f64::NAN, 0.9, 0.8, 0.2, 0.1];
        let finite_subset = roc_auc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert_eq!(roc_auc(&with_nan, &truth), finite_subset);
        assert!((roc_auc(&with_nan, &truth) - 1.0).abs() < 1e-12);
        // NaN position must not matter.
        assert_eq!(
            roc_auc(&[0.9, 0.8, f64::NAN, 0.2, 0.1], &[true, true, true, false, false]),
            finite_subset
        );
    }

    #[test]
    fn auc_all_nan_or_emptied_class_is_half() {
        assert_eq!(roc_auc(&[f64::NAN, f64::NAN], &[true, false]), 0.5);
        // Filtering may empty one class entirely.
        assert_eq!(roc_auc(&[f64::NAN, 0.7], &[true, false]), 0.5);
    }

    #[test]
    fn auc_infinite_scores_rank_at_the_extremes() {
        let truth = [true, true, false, false];
        assert!(
            (roc_auc(&[f64::INFINITY, 0.8, 0.2, f64::NEG_INFINITY], &truth) - 1.0).abs() < 1e-12
        );
        assert!(
            (roc_auc(&[f64::NEG_INFINITY, 0.2, 0.8, f64::INFINITY], &truth) - 0.0).abs() < 1e-12
        );
        // Tied infinities average like any other tie group.
        assert!((roc_auc(&[f64::INFINITY, f64::INFINITY, 0.5, 0.5], &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unanimity_shrinks_with_more_models() {
        // Independent-ish models: each disagrees on a different third.
        let a = vec![true, true, true, false, false, false];
        let b = vec![true, false, true, false, true, false];
        let c = vec![false, true, true, false, false, true];
        let two = agreement(&[a.clone(), b.clone()]);
        let three = agreement(&[a, b, c]);
        assert!(three.unanimous_rate <= two.unanimous_rate);
        assert!(three.mean_pairwise <= 1.0);
    }

    #[test]
    fn identical_models_agree_fully() {
        let p = vec![true, false, true];
        let r = agreement(&[p.clone(), p.clone(), p]);
        assert_eq!(r.unanimous_rate, 1.0);
        assert_eq!(r.mean_pairwise, 1.0);
        assert!((r.fleiss_kappa - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kappa_near_zero_for_random_raters() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let preds: Vec<Vec<bool>> =
            (0..5).map(|_| (0..2000).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let r = agreement(&preds);
        assert!(r.fleiss_kappa.abs() < 0.05, "kappa {}", r.fleiss_kappa);
        assert!((r.mean_pairwise - 0.5).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_model_rejected() {
        let _ = agreement(&[vec![true]]);
    }
}
