//! Dataset splitting: stratified, k-fold, group (cross-project), and
//! clone-aware splits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vulnman_lang::clone::{CloneConfig, CloneIndex};
use vulnman_synth::dataset::Dataset;

/// A train/test split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Test partition.
    pub test: Dataset,
}

/// Stratified split preserving the observed-label ratio.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1`.
///
/// # Examples
///
/// ```
/// use vulnman_ml::split::stratified_split;
/// use vulnman_synth::dataset::DatasetBuilder;
/// let ds = DatasetBuilder::new(1).vulnerable_count(20).vulnerable_fraction(0.2).build();
/// let s = stratified_split(&ds, 0.25, 7);
/// assert_eq!(s.train.len() + s.test.len(), ds.len());
/// let tr = s.train.vulnerable_fraction();
/// let te = s.test.vulnerable_fraction();
/// assert!((tr - te).abs() < 0.05);
/// ```
pub fn stratified_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> Split {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for label in [true, false] {
        let mut group: Vec<_> =
            dataset.iter().filter(|s| s.observed_label == label).cloned().collect();
        for i in (1..group.len()).rev() {
            let j = rng.gen_range(0..=i);
            group.swap(i, j);
        }
        let n_test = (group.len() as f64 * test_fraction).round() as usize;
        for (i, s) in group.into_iter().enumerate() {
            if i < n_test {
                test.push(s);
            } else {
                train.push(s);
            }
        }
    }
    Split { train, test }
}

/// Group split: held-out test projects never appear in training — the
/// cross-project evaluation setting under which academic models lose most of
/// their reported performance (Gap Observation 3).
///
/// `test_projects` selects which project ids go to the test side.
pub fn split_by_project(dataset: &Dataset, test_projects: &[String]) -> Split {
    let (test, train) = dataset.partition(|s| test_projects.contains(&s.project));
    Split { train, test }
}

/// Groups a dataset into verified near-duplicate clone classes (MinHash/LSH
/// candidates confirmed by exact Jaccard — see [`vulnman_lang::clone`]).
/// Every sample appears in exactly one class, singletons included; samples
/// whose source fails to lex are their own singletons. Classes and their
/// members are in dataset order, so the grouping is deterministic.
pub fn clone_classes(dataset: &Dataset, config: &CloneConfig) -> Vec<Vec<usize>> {
    let sources: Vec<(u64, &str)> =
        dataset.iter().enumerate().map(|(i, s)| (i as u64, s.source.as_str())).collect();
    let index = CloneIndex::build(&sources, *config);
    let mut classes: Vec<Vec<usize>> = index
        .classes()
        .into_iter()
        .map(|class| class.iter().map(|&e| index.entries()[e as usize].id as usize).collect())
        .collect();
    // Samples the index skipped (lex failures) become singletons.
    let indexed: std::collections::HashSet<usize> = classes.iter().flatten().copied().collect();
    for i in 0..dataset.len() {
        if !indexed.contains(&i) {
            classes.push(vec![i]);
        }
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

/// Clone-aware train/test split: verified near-duplicate clone classes are
/// assigned to one side *whole*, so no test sample has a near-clone in
/// training — the leakage pathway by which duplication inflates reported
/// accuracy (the paper's "synthetic or duplicated dataset" pathology, at a
/// scale exact-hash dedup cannot reach). Classes are shuffled
/// deterministically by `seed` and assigned to the test side until it holds
/// at least `test_fraction` of the samples.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1`.
pub fn clone_aware_split(
    dataset: &Dataset,
    test_fraction: f64,
    seed: u64,
    config: &CloneConfig,
) -> Split {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    let mut classes = clone_classes(dataset, config);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..classes.len()).rev() {
        let j = rng.gen_range(0..=i);
        classes.swap(i, j);
    }
    let target = (dataset.len() as f64 * test_fraction).round() as usize;
    let samples = dataset.samples();
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    let mut in_test = 0usize;
    for class in classes {
        let side_test = in_test < target;
        for idx in class {
            if side_test {
                test.push(samples[idx].clone());
                in_test += 1;
            } else {
                train.push(samples[idx].clone());
            }
        }
    }
    Split { train, test }
}

/// Clone-leakage score of a split: the fraction of test samples with at
/// least one verified near-clone on the training side. `0.0` for a
/// clone-aware split by construction; grows with the duplication rate for
/// splits that ignore clone structure. Clone classes are computed over the
/// union of both sides, so the score is independent of how the split was
/// produced.
pub fn leakage_score(split: &Split, config: &CloneConfig) -> f64 {
    if split.test.is_empty() {
        return 0.0;
    }
    let mut combined = Dataset::new();
    combined.extend_from(split.train.clone());
    combined.extend_from(split.test.clone());
    let n_train = split.train.len();
    let mut leaked = std::collections::HashSet::new();
    for class in clone_classes(&combined, config) {
        let has_train = class.iter().any(|&i| i < n_train);
        if has_train {
            for &i in &class {
                if i >= n_train {
                    leaked.insert(i);
                }
            }
        }
    }
    leaked.len() as f64 / split.test.len() as f64
}

/// Deterministic k-fold assignment; returns `(train, test)` for `fold`.
///
/// # Panics
///
/// Panics if `k < 2` or `fold >= k`.
pub fn kfold(dataset: &Dataset, k: usize, fold: usize, seed: u64) -> Split {
    assert!(k >= 2, "k must be at least 2");
    assert!(fold < k, "fold out of range");
    let shuffled = dataset.shuffled(seed);
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for (i, s) in shuffled.iter().enumerate() {
        if i % k == fold {
            test.push(s.clone());
        } else {
            train.push(s.clone());
        }
    }
    Split { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::style::StyleProfile;

    fn ds() -> Dataset {
        DatasetBuilder::new(3)
            .teams(StyleProfile::internal_teams())
            .projects_per_team(3)
            .vulnerable_count(40)
            .vulnerable_fraction(0.4)
            .build()
    }

    #[test]
    fn stratified_preserves_ratio() {
        let d = ds();
        let s = stratified_split(&d, 0.3, 1);
        assert!((s.train.vulnerable_fraction() - s.test.vulnerable_fraction()).abs() < 0.08);
        assert_eq!(s.train.len() + s.test.len(), d.len());
    }

    #[test]
    fn stratified_is_deterministic() {
        let d = ds();
        let a = stratified_split(&d, 0.3, 9);
        let b = stratified_split(&d, 0.3, 9);
        let ids = |x: &Dataset| x.iter().map(|s| s.id).collect::<Vec<_>>();
        assert_eq!(ids(&a.test), ids(&b.test));
    }

    #[test]
    fn project_split_is_disjoint() {
        let d = ds();
        let projects = d.projects();
        let held_out = vec![projects[0].clone()];
        let s = split_by_project(&d, &held_out);
        assert!(s.test.iter().all(|x| x.project == held_out[0]));
        assert!(s.train.iter().all(|x| x.project != held_out[0]));
        assert!(!s.test.is_empty());
    }

    #[test]
    fn kfold_partitions_exactly() {
        let d = ds();
        let mut seen = std::collections::HashSet::new();
        for fold in 0..5 {
            let s = kfold(&d, 5, fold, 2);
            for x in &s.test {
                assert!(seen.insert(x.id), "sample in two folds");
            }
            assert_eq!(s.train.len() + s.test.len(), d.len());
        }
        assert_eq!(seen.len(), d.len());
    }

    fn duplicated_ds(factor: usize) -> Dataset {
        DatasetBuilder::new(91)
            .vulnerable_count(30)
            .vulnerable_fraction(0.4)
            .duplication_factor(factor)
            .build()
    }

    #[test]
    fn clone_classes_partition_the_dataset() {
        let d = duplicated_ds(3);
        let classes = clone_classes(&d, &CloneConfig::default());
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            for &i in class {
                assert!(seen.insert(i), "sample {i} in two classes");
            }
        }
        assert_eq!(seen.len(), d.len());
        assert!(
            classes.iter().any(|c| c.len() > 1),
            "duplicated dataset must produce multi-member classes"
        );
    }

    #[test]
    fn clone_aware_split_has_zero_cross_split_pairs() {
        let d = duplicated_ds(3);
        let config = CloneConfig::default();
        let s = clone_aware_split(&d, 0.3, 7, &config);
        assert_eq!(s.train.len() + s.test.len(), d.len());
        assert!(!s.test.is_empty() && !s.train.is_empty());
        assert_eq!(leakage_score(&s, &config), 0.0, "clone classes stay on one side");
    }

    #[test]
    fn leakage_is_monotone_in_duplication_rate() {
        let config = CloneConfig::default();
        let scores: Vec<f64> = [1, 2, 4]
            .into_iter()
            .map(|factor| {
                let d = duplicated_ds(factor);
                leakage_score(&stratified_split(&d, 0.3, 5), &config)
            })
            .collect();
        assert!(
            scores.windows(2).all(|w| w[0] <= w[1]),
            "leakage must grow with duplication: {scores:?}"
        );
        assert!(scores[2] > scores[0] + 0.1, "duplication must move the score: {scores:?}");
    }

    #[test]
    fn clone_leakage_inflates_reported_accuracy() {
        // The paper's duplication pathology, reproduced end-to-end: the
        // same model family evaluated on a clone-oblivious split reports
        // higher accuracy than on a clone-aware split of the same data,
        // because test near-clones of training samples are easy marks.
        let d = duplicated_ds(4);
        let config = CloneConfig::default();
        let leaky = stratified_split(&d, 0.3, 5);
        let clean = clone_aware_split(&d, 0.3, 5, &config);
        assert!(leakage_score(&leaky, &config) > 0.2);
        // The clone/similarity family (normalized-token k-NN) is the
        // memorization-prone archetype: a test sample whose near-clone
        // sits in training gets its label copied outright.
        let accuracy = |split: &Split| {
            let mut model = crate::pipeline::model_zoo(11)
                .into_iter()
                .find(|m| m.name() == "clone-knn")
                .expect("zoo has the clone-knn model");
            model.train(&split.train);
            model.evaluate(&split.test).accuracy()
        };
        let inflated = accuracy(&leaky);
        let honest = accuracy(&clean);
        assert!(
            inflated > honest,
            "leaky split must report inflated accuracy: leaky {inflated:.3} vs clean {honest:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "fold out of range")]
    fn kfold_bounds_checked() {
        let _ = kfold(&ds(), 3, 3, 0);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_rejected() {
        let _ = stratified_split(&ds(), 1.5, 0);
    }
}
