//! Dataset splitting: stratified, k-fold, and group (cross-project) splits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vulnman_synth::dataset::Dataset;

/// A train/test split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Test partition.
    pub test: Dataset,
}

/// Stratified split preserving the observed-label ratio.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1`.
///
/// # Examples
///
/// ```
/// use vulnman_ml::split::stratified_split;
/// use vulnman_synth::dataset::DatasetBuilder;
/// let ds = DatasetBuilder::new(1).vulnerable_count(20).vulnerable_fraction(0.2).build();
/// let s = stratified_split(&ds, 0.25, 7);
/// assert_eq!(s.train.len() + s.test.len(), ds.len());
/// let tr = s.train.vulnerable_fraction();
/// let te = s.test.vulnerable_fraction();
/// assert!((tr - te).abs() < 0.05);
/// ```
pub fn stratified_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> Split {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for label in [true, false] {
        let mut group: Vec<_> =
            dataset.iter().filter(|s| s.observed_label == label).cloned().collect();
        for i in (1..group.len()).rev() {
            let j = rng.gen_range(0..=i);
            group.swap(i, j);
        }
        let n_test = (group.len() as f64 * test_fraction).round() as usize;
        for (i, s) in group.into_iter().enumerate() {
            if i < n_test {
                test.push(s);
            } else {
                train.push(s);
            }
        }
    }
    Split { train, test }
}

/// Group split: held-out test projects never appear in training — the
/// cross-project evaluation setting under which academic models lose most of
/// their reported performance (Gap Observation 3).
///
/// `test_projects` selects which project ids go to the test side.
pub fn split_by_project(dataset: &Dataset, test_projects: &[String]) -> Split {
    let (test, train) = dataset.partition(|s| test_projects.contains(&s.project));
    Split { train, test }
}

/// Deterministic k-fold assignment; returns `(train, test)` for `fold`.
///
/// # Panics
///
/// Panics if `k < 2` or `fold >= k`.
pub fn kfold(dataset: &Dataset, k: usize, fold: usize, seed: u64) -> Split {
    assert!(k >= 2, "k must be at least 2");
    assert!(fold < k, "fold out of range");
    let shuffled = dataset.shuffled(seed);
    let mut train = Dataset::new();
    let mut test = Dataset::new();
    for (i, s) in shuffled.iter().enumerate() {
        if i % k == fold {
            test.push(s.clone());
        } else {
            train.push(s.clone());
        }
    }
    Split { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_synth::dataset::DatasetBuilder;
    use vulnman_synth::style::StyleProfile;

    fn ds() -> Dataset {
        DatasetBuilder::new(3)
            .teams(StyleProfile::internal_teams())
            .projects_per_team(3)
            .vulnerable_count(40)
            .vulnerable_fraction(0.4)
            .build()
    }

    #[test]
    fn stratified_preserves_ratio() {
        let d = ds();
        let s = stratified_split(&d, 0.3, 1);
        assert!((s.train.vulnerable_fraction() - s.test.vulnerable_fraction()).abs() < 0.08);
        assert_eq!(s.train.len() + s.test.len(), d.len());
    }

    #[test]
    fn stratified_is_deterministic() {
        let d = ds();
        let a = stratified_split(&d, 0.3, 9);
        let b = stratified_split(&d, 0.3, 9);
        let ids = |x: &Dataset| x.iter().map(|s| s.id).collect::<Vec<_>>();
        assert_eq!(ids(&a.test), ids(&b.test));
    }

    #[test]
    fn project_split_is_disjoint() {
        let d = ds();
        let projects = d.projects();
        let held_out = vec![projects[0].clone()];
        let s = split_by_project(&d, &held_out);
        assert!(s.test.iter().all(|x| x.project == held_out[0]));
        assert!(s.train.iter().all(|x| x.project != held_out[0]));
        assert!(!s.test.is_empty());
    }

    #[test]
    fn kfold_partitions_exactly() {
        let d = ds();
        let mut seen = std::collections::HashSet::new();
        for fold in 0..5 {
            let s = kfold(&d, 5, fold, 2);
            for x in &s.test {
                assert!(seen.insert(x.id), "sample in two folds");
            }
            assert_eq!(s.train.len() + s.test.len(), d.len());
        }
        assert_eq!(seen.len(), d.len());
    }

    #[test]
    #[should_panic(expected = "fold out of range")]
    fn kfold_bounds_checked() {
        let _ = kfold(&ds(), 3, 3, 0);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_rejected() {
        let _ = stratified_split(&ds(), 1.5, 0);
    }
}
