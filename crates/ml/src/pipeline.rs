//! End-to-end detection models: feature extractor + classifier, plus the
//! heterogeneous "model zoo" used throughout the experiments.

use crate::eval::Metrics;
use crate::features::{
    ArtifactTextFeatures, AstStatFeatures, ComposedFeatures, ExpertFlowFeatures, FeatureExtractor,
    NormalizedTokenFeatures, TokenNgramFeatures,
};
use crate::knn::Knn;
use crate::linear::LogisticRegression;
use crate::mlp::Mlp;
use crate::model::Classifier;
use crate::naive_bayes::GaussianNb;
use crate::tree::RandomForest;
use std::sync::Arc;
use vulnman_faults::{FaultError, FaultInjector, Site};
use vulnman_synth::dataset::Dataset;
use vulnman_synth::sample::Sample;

/// Why a fallible prediction could not produce a usable score.
#[derive(Debug)]
pub enum PredictError {
    /// The attached fault injector exhausted its retry budget (or crashed)
    /// at the `ml_predict` site for this sample.
    Injected(FaultError),
    /// The classifier emitted a non-finite score — treated as a model
    /// failure so callers degrade instead of propagating NaN into reports.
    NonFinite(f64),
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictError::Injected(e) => write!(f, "injected fault: {e}"),
            PredictError::NonFinite(p) => write!(f, "non-finite score {p}"),
        }
    }
}

impl std::error::Error for PredictError {}

/// A trainable vulnerability-detection model.
pub struct DetectionModel {
    name: String,
    features: Box<dyn FeatureExtractor>,
    classifier: Box<dyn Classifier>,
    trained: bool,
    // Replay cache of everything the model has been trained on, so
    // fine-tuning continues training instead of forgetting (see
    // `fine_tune`).
    seen_x: Vec<Vec<f64>>,
    seen_y: Vec<bool>,
    // Observability handles (no-op unless `attach_metrics` was called):
    // train/predict wall-clock and prediction volume under
    // `ml.<name>.{train_micros, predict_micros, predictions}`.
    train_micros: vulnman_obs::Histogram,
    predict_micros: vulnman_obs::Histogram,
    predictions: vulnman_obs::Counter,
    // Fault-injection harness for the `ml_predict` site (chaos testing);
    // `None` means predictions are infallible apart from non-finite scores.
    faults: Option<Arc<FaultInjector>>,
}

impl std::fmt::Debug for DetectionModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectionModel")
            .field("name", &self.name)
            .field("features", &self.features.name())
            .field("classifier", &self.classifier.name())
            .field("trained", &self.trained)
            .finish()
    }
}

impl DetectionModel {
    /// Bundles an extractor and a classifier under a display name.
    pub fn new(
        name: impl Into<String>,
        features: Box<dyn FeatureExtractor>,
        classifier: Box<dyn Classifier>,
    ) -> Self {
        DetectionModel {
            name: name.into(),
            features,
            classifier,
            trained: false,
            seen_x: Vec::new(),
            seen_y: Vec::new(),
            train_micros: vulnman_obs::Histogram::default(),
            predict_micros: vulnman_obs::Histogram::default(),
            predictions: vulnman_obs::Counter::default(),
            faults: None,
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attaches a metrics registry: training and prediction wall-clock land
    /// in `ml.<name>.train_micros` / `ml.<name>.predict_micros` histograms
    /// and prediction volume on the `ml.<name>.predictions` counter.
    pub fn attach_metrics(&mut self, metrics: &vulnman_obs::Registry) {
        self.train_micros = metrics.histogram(&format!("ml.{}.train_micros", self.name));
        self.predict_micros = metrics.histogram(&format!("ml.{}.predict_micros", self.name));
        self.predictions = metrics.counter(&format!("ml.{}.predictions", self.name));
    }

    /// Returns `true` once the model has been trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Trains on a dataset using its *observed* labels (models in the wild
    /// never see ground truth — that is exactly Gap Observation 4).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn train(&mut self, data: &Dataset) {
        let t0 = self.train_micros.is_enabled().then(std::time::Instant::now);
        let (x, y) = self.matrix(data);
        self.classifier.fit(&x, &y);
        self.seen_x = x;
        self.seen_y = y;
        self.trained = true;
        if let Some(t0) = t0 {
            self.train_micros.observe_duration(t0.elapsed());
        }
    }

    /// Continues training on new data (fine-tuning / customization,
    /// Gap Observation 2).
    ///
    /// Fine-tuning uses *replay*: the new samples are appended to everything
    /// the model has already seen and the classifier is retrained on the
    /// union. This keeps the semantics uniform across model families
    /// (gradient models could warm-start, but instance/tree models would
    /// otherwise catastrophically forget the generic corpus).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fine_tune(&mut self, data: &Dataset) {
        let t0 = self.train_micros.is_enabled().then(std::time::Instant::now);
        let (x, y) = self.matrix(data);
        self.seen_x.extend(x);
        self.seen_y.extend(y);
        self.classifier.fit(&self.seen_x.clone(), &self.seen_y.clone());
        self.trained = true;
        if let Some(t0) = t0 {
            self.train_micros.observe_duration(t0.elapsed());
        }
    }

    fn matrix(&self, data: &Dataset) -> (Vec<Vec<f64>>, Vec<bool>) {
        let x: Vec<Vec<f64>> = data.iter().map(|s| self.features.extract(s)).collect();
        let y: Vec<bool> = data.iter().map(|s| s.observed_label).collect();
        (x, y)
    }

    /// Attaches a fault injector: every [`DetectionModel::try_predict_proba`]
    /// call consults it at the `ml_predict` site, keyed by the sample id, so
    /// prediction failures are deterministic per sample regardless of call
    /// order or sharding.
    pub fn attach_faults(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Probability the sample is vulnerable.
    pub fn predict_proba(&self, sample: &Sample) -> f64 {
        self.predictions.inc();
        let t0 = self.predict_micros.is_enabled().then(std::time::Instant::now);
        let p = self.classifier.predict_proba(&self.features.extract(sample));
        if let Some(t0) = t0 {
            self.predict_micros.observe_duration(t0.elapsed());
        }
        p
    }

    /// Fallible probability: routes through the attached fault injector
    /// (when any) and rejects non-finite classifier output.
    ///
    /// Without an injector this only adds the finiteness guard, so the `Ok`
    /// value is always identical to [`DetectionModel::predict_proba`].
    pub fn try_predict_proba(&self, sample: &Sample) -> Result<f64, PredictError> {
        let p = match &self.faults {
            Some(inj) => {
                inj.run(Site::MlPredict, sample.id, || self.predict_proba(sample))
                    .map_err(PredictError::Injected)?
                    .value
            }
            None => self.predict_proba(sample),
        };
        if p.is_finite() {
            Ok(p)
        } else {
            Err(PredictError::NonFinite(p))
        }
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, sample: &Sample) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Predictions over a whole dataset, via one batched scoring pass.
    pub fn predict_all(&self, data: &Dataset) -> Vec<bool> {
        self.scores(data).iter().map(|&p| p >= 0.5).collect()
    }

    /// Scores over a whole dataset in one batch: every sample's features
    /// are extracted first, then the classifier scores the matrix in a
    /// single [`Classifier::predict_proba_batch`] pass. Bit-identical to
    /// mapping [`DetectionModel::predict_proba`] over the dataset.
    pub fn scores(&self, data: &Dataset) -> Vec<f64> {
        self.predictions.add(data.len() as u64);
        let t0 = self.predict_micros.is_enabled().then(std::time::Instant::now);
        let xs: Vec<Vec<f64>> = data.iter().map(|s| self.features.extract(s)).collect();
        let p = self.classifier.predict_proba_batch(&xs);
        if let Some(t0) = t0 {
            self.predict_micros.observe_duration(t0.elapsed());
        }
        p
    }

    /// Evaluates against *ground-truth* labels.
    pub fn evaluate(&self, data: &Dataset) -> Metrics {
        let pred = self.predict_all(data);
        let truth: Vec<bool> = data.iter().map(|s| s.label).collect();
        Metrics::from_predictions(&pred, &truth)
    }
}

/// The five heterogeneous model families used across the experiments,
/// standing in for the DL families the paper surveys:
///
/// | name         | features     | classifier     | stands in for            |
/// |--------------|--------------|----------------|---------------------------|
/// | `token-lr`   | token n-gram | logistic reg.  | transformer (LineVul-ish) |
/// | `token-mlp`  | token n-gram | MLP            | RNN (VulDeePecker-ish)    |
/// | `graph-rf`   | expert flow  | random forest  | GNN (Devign/VulChecker)   |
/// | `stat-nb`    | AST stats    | naive Bayes    | classic shallow models    |
/// | `clone-knn`  | normalized n-gram | k-NN      | clone/similarity methods  |
pub fn model_zoo(seed: u64) -> Vec<DetectionModel> {
    let token_dim = 512;
    vec![
        DetectionModel::new(
            "token-lr",
            Box::new(TokenNgramFeatures::new(token_dim)),
            Box::new(LogisticRegression::new(token_dim, seed ^ 0x11)),
        ),
        DetectionModel::new("token-mlp", Box::new(TokenNgramFeatures::new(token_dim)), {
            // Normalized token vectors carry small per-feature signal; the
            // MLP needs a hotter learning rate than its generic default.
            let mut mlp = Mlp::new(token_dim, 16, seed ^ 0x22);
            mlp.learning_rate = 0.8;
            Box::new(mlp)
        }),
        DetectionModel::new(
            "graph-rf",
            Box::new(ExpertFlowFeatures::new()),
            Box::new(RandomForest::new(15, 6, seed ^ 0x33)),
        ),
        DetectionModel::new("stat-nb", Box::new(AstStatFeatures), Box::new(GaussianNb::new())),
        DetectionModel::new(
            "clone-knn",
            // Clone detectors normalize identifiers before matching.
            Box::new(NormalizedTokenFeatures::new(token_dim)),
            Box::new(Knn::new(5)),
        ),
    ]
}

/// A multimodal variant of the token model: code tokens + artifact text
/// (experiment E11).
pub fn multimodal_model(seed: u64) -> DetectionModel {
    let features = ComposedFeatures::new(vec![
        Box::new(TokenNgramFeatures::new(256)),
        Box::new(ArtifactTextFeatures::new(64)),
    ]);
    let dim = features.dim();
    DetectionModel::new(
        "token+artifacts-lr",
        Box::new(features),
        Box::new(LogisticRegression::new(dim, seed ^ 0x44)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::stratified_split;
    use vulnman_synth::dataset::DatasetBuilder;

    fn corpus(seed: u64) -> Dataset {
        DatasetBuilder::new(seed).vulnerable_count(200).vulnerable_fraction(0.5).build()
    }

    #[test]
    fn every_zoo_model_learns_the_balanced_task() {
        let ds = corpus(1);
        let split = stratified_split(&ds, 0.3, 2);
        for mut model in model_zoo(7) {
            model.train(&split.train);
            let m = model.evaluate(&split.test);
            // Shallow structural stats are the weakest family (the paper
            // cites exactly this: "shallow or deep?"). At this small test
            // size every family clears 0.7; the experiment-scale corpora in
            // `vulnman-bench` reach the high-80s/low-90s the paper reports.
            let floor = if model.name() == "stat-nb" { 0.55 } else { 0.68 };
            assert!(
                m.f1() > floor,
                "{} should learn the curated task, got F1={:.2}",
                model.name(),
                m.f1()
            );
        }
    }

    #[test]
    fn zoo_models_disagree_somewhere() {
        let ds = corpus(3);
        let split = stratified_split(&ds, 0.3, 4);
        let preds: Vec<Vec<bool>> = model_zoo(9)
            .into_iter()
            .map(|mut m| {
                m.train(&split.train);
                m.predict_all(&split.test)
            })
            .collect();
        let n = split.test.len();
        let unanimous = (0..n).filter(|&i| preds.iter().all(|p| p[i] == preds[0][i])).count();
        assert!(unanimous < n, "heterogeneous families should not be identical");
    }

    #[test]
    fn multimodal_model_trains() {
        let ds = corpus(5);
        let split = stratified_split(&ds, 0.3, 6);
        let mut m = multimodal_model(1);
        m.train(&split.train);
        assert!(m.is_trained());
        assert!(m.evaluate(&split.test).f1() > 0.7);
    }

    #[test]
    fn batched_scores_bit_identical_to_per_sample() {
        let ds = corpus(15);
        let split = stratified_split(&ds, 0.3, 8);
        for mut m in model_zoo(17) {
            m.train(&split.train);
            let batched = m.scores(&split.test);
            let single: Vec<f64> = split.test.iter().map(|s| m.predict_proba(s)).collect();
            assert_eq!(batched.len(), single.len());
            for (i, (a, b)) in batched.iter().zip(&single).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{} row {i}: batch {a} vs single {b}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn proba_and_hard_predictions_consistent() {
        let ds = corpus(7);
        let mut m = model_zoo(1).remove(0);
        m.train(&ds);
        for s in ds.iter().take(10) {
            assert_eq!(m.predict(s), m.predict_proba(s) >= 0.5);
        }
    }

    #[test]
    fn attached_metrics_record_training_and_predictions() {
        let ds = corpus(9);
        let metrics = vulnman_obs::Registry::new();
        let mut m = model_zoo(1).remove(0);
        m.attach_metrics(&metrics);
        m.train(&ds);
        let n_pred = 10;
        for s in ds.iter().take(n_pred) {
            m.predict(s);
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.histograms["ml.token-lr.train_micros"].count, 1);
        assert_eq!(snap.histograms["ml.token-lr.predict_micros"].count, n_pred as u64);
        assert_eq!(snap.counters["ml.token-lr.predictions"], n_pred as u64);
        // Fine-tuning lands in the same training histogram.
        m.fine_tune(&ds);
        let snap = metrics.snapshot();
        assert_eq!(snap.histograms["ml.token-lr.train_micros"].count, 2);
    }

    #[test]
    fn try_predict_without_injector_matches_infallible_path() {
        let ds = corpus(11);
        let mut m = model_zoo(1).remove(0);
        m.train(&ds);
        for s in ds.iter().take(10) {
            assert_eq!(m.try_predict_proba(s).unwrap(), m.predict_proba(s));
        }
    }

    #[test]
    fn injected_predict_failures_are_deterministic_per_sample() {
        use vulnman_faults::FaultConfig;
        let ds = corpus(13);
        let mut m = model_zoo(1).remove(0);
        m.train(&ds);
        let cfg = FaultConfig { seed: 5, rate: 0.9, max_retries: 0, ..Default::default() };
        m.attach_faults(Arc::new(FaultInjector::new(&cfg)));
        let first: Vec<bool> = ds.iter().take(40).map(|s| m.try_predict_proba(s).is_ok()).collect();
        let second: Vec<bool> =
            ds.iter().take(40).map(|s| m.try_predict_proba(s).is_ok()).collect();
        assert_eq!(first, second, "per-sample outcomes must not depend on call order");
        assert!(first.iter().any(|ok| !ok), "a 90% rate with no retries must fail somewhere");
        assert!(
            first.iter().any(|ok| *ok),
            "retry-free decisions are per-sample, not all-or-nothing"
        );
    }

    #[test]
    fn debug_format_names_parts() {
        let m = model_zoo(1).remove(2);
        let s = format!("{m:?}");
        assert!(s.contains("graph-rf"));
        assert!(s.contains("expert-flow"));
        assert!(s.contains("random-forest"));
    }
}
