//! k-nearest-neighbours classifier (cosine similarity).
//!
//! Stands in for similarity/clone-detection approaches: its predictions are
//! driven by training-set proximity, which makes it the model family most
//! inflated by dataset near-duplication (experiment E08).

use crate::model::{validate_fit_input, Classifier};

/// k-NN with cosine similarity over dense vectors.
///
/// # Examples
///
/// ```
/// use vulnman_ml::{knn::Knn, model::Classifier};
/// let x = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
/// let y = vec![true, false];
/// let mut m = Knn::new(1);
/// m.fit(&x, &y);
/// assert!(m.predict(&[0.9, 0.1]));
/// ```
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    train_x: Vec<Vec<f64>>,
    train_y: Vec<bool>,
}

impl Knn {
    /// Creates a classifier using the `k` nearest neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Knn { k, train_x: Vec::new(), train_y: Vec::new() }
    }

    /// Number of stored training points.
    pub fn len(&self) -> usize {
        self.train_x.len()
    }

    /// Returns `true` if the model holds no training data.
    pub fn is_empty(&self) -> bool {
        self.train_x.is_empty()
    }

    fn cosine(a: &[f64], b: &[f64]) -> f64 {
        let mut dot = 0.0;
        let mut na = 0.0;
        let mut nb = 0.0;
        for (x, y) in a.iter().zip(b) {
            dot += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        self.train_x = x.to_vec();
        self.train_y = y.to_vec();
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.train_x.is_empty() {
            return 0.5;
        }
        let mut sims: Vec<(f64, bool)> =
            self.train_x.iter().zip(&self.train_y).map(|(t, &l)| (Self::cosine(t, x), l)).collect();
        sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        let k = self.k.min(sims.len());
        let pos = sims[..k].iter().filter(|(_, l)| *l).count();
        pos as f64 / k as f64
    }

    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        if self.train_x.is_empty() {
            return vec![0.5; xs.len()];
        }
        // The similarity scratch is allocated once and refilled per row;
        // the sort and vote run the exact ops of `predict_proba`.
        let mut sims: Vec<(f64, bool)> = Vec::with_capacity(self.train_x.len());
        xs.iter()
            .map(|x| {
                sims.clear();
                sims.extend(
                    self.train_x.iter().zip(&self.train_y).map(|(t, &l)| (Self::cosine(t, x), l)),
                );
                sims.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
                let k = self.k.min(sims.len());
                let pos = sims[..k].iter().filter(|(_, l)| *l).count();
                pos as f64 / k as f64
            })
            .collect()
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    fn fit_incremental(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        self.train_x.extend(x.iter().cloned());
        self.train_y.extend(y.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_wins() {
        let mut m = Knn::new(3);
        m.fit(
            &[vec![1.0, 0.0], vec![0.9, 0.1], vec![0.0, 1.0], vec![0.1, 0.9]],
            &[true, true, false, false],
        );
        assert!(m.predict(&[0.95, 0.05]));
        assert!(!m.predict(&[0.05, 0.95]));
    }

    #[test]
    fn untrained_is_uninformative() {
        let m = Knn::new(3);
        assert_eq!(m.predict_proba(&[1.0]), 0.5);
        assert!(m.is_empty());
    }

    #[test]
    fn incremental_appends() {
        let mut m = Knn::new(1);
        m.fit(&[vec![1.0]], &[true]);
        m.fit_incremental(&[vec![-1.0]], &[false]);
        assert_eq!(m.len(), 2);
        assert!(!m.predict(&[-0.9]));
    }

    #[test]
    fn zero_vector_handled() {
        let mut m = Knn::new(1);
        m.fit(&[vec![0.0, 0.0], vec![1.0, 0.0]], &[false, true]);
        let p = m.predict_proba(&[0.0, 0.0]);
        assert!(p.is_finite());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = Knn::new(0);
    }
}
