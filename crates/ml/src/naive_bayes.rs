//! Gaussian naive Bayes.

use crate::model::{validate_fit_input, Classifier};

/// Gaussian naive Bayes with per-class feature means/variances.
///
/// # Examples
///
/// ```
/// use vulnman_ml::{model::Classifier, naive_bayes::GaussianNb};
/// let x = vec![vec![5.0], vec![5.2], vec![-5.0], vec![-5.1]];
/// let y = vec![true, true, false, false];
/// let mut m = GaussianNb::new();
/// m.fit(&x, &y);
/// assert!(m.predict(&[4.0]));
/// assert!(!m.predict(&[-4.0]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    prior_pos: f64,
    mean_pos: Vec<f64>,
    var_pos: Vec<f64>,
    mean_neg: Vec<f64>,
    var_neg: Vec<f64>,
    trained: bool,
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianNb {
    /// Creates an untrained model.
    pub fn new() -> Self {
        GaussianNb::default()
    }

    fn log_likelihood(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
        x.iter()
            .zip(mean.iter().zip(var))
            .map(|(xi, (m, v))| {
                let v = v.max(VAR_FLOOR);
                let d = xi - m;
                -0.5 * (d * d / v + v.ln() + std::f64::consts::TAU.ln())
            })
            .sum()
    }
}

impl Classifier for GaussianNb {
    fn name(&self) -> &'static str {
        "naive-bayes"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        let d = x[0].len();
        let (mut n_pos, mut n_neg) = (0usize, 0usize);
        let mut sum_pos = vec![0.0; d];
        let mut sum_neg = vec![0.0; d];
        for (row, &label) in x.iter().zip(y) {
            let (n, sum) = if label {
                n_pos += 1;
                (&mut n_pos, &mut sum_pos)
            } else {
                n_neg += 1;
                (&mut n_neg, &mut sum_neg)
            };
            let _ = n;
            for (s, v) in sum.iter_mut().zip(row) {
                *s += v;
            }
        }
        // Laplace-ish prior smoothing so single-class sets stay finite.
        self.prior_pos = (n_pos as f64 + 1.0) / (x.len() as f64 + 2.0);
        self.mean_pos = sum_pos.iter().map(|s| s / (n_pos.max(1) as f64)).collect();
        self.mean_neg = sum_neg.iter().map(|s| s / (n_neg.max(1) as f64)).collect();
        let mut var_pos = vec![VAR_FLOOR; d];
        let mut var_neg = vec![VAR_FLOOR; d];
        for (row, &label) in x.iter().zip(y) {
            let (mean, var) =
                if label { (&self.mean_pos, &mut var_pos) } else { (&self.mean_neg, &mut var_neg) };
            for ((v, m), xi) in var.iter_mut().zip(mean).zip(row) {
                let dlt = xi - m;
                *v += dlt * dlt;
            }
        }
        self.var_pos = var_pos.iter().map(|v| v / (n_pos.max(1) as f64)).collect();
        self.var_neg = var_neg.iter().map(|v| v / (n_neg.max(1) as f64)).collect();
        self.trained = true;
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if !self.trained {
            return 0.5;
        }
        let lp = self.prior_pos.ln() + Self::log_likelihood(x, &self.mean_pos, &self.var_pos);
        let ln =
            (1.0 - self.prior_pos).ln() + Self::log_likelihood(x, &self.mean_neg, &self.var_neg);
        // Softmax over the two log-joint scores.
        let m = lp.max(ln);
        let ep = (lp - m).exp();
        let en = (ln - m).exp();
        ep / (ep + en)
    }

    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        if !self.trained {
            return vec![0.5; xs.len()];
        }
        // The class priors leave the loop (same inputs, same bits); the
        // per-row likelihoods and softmax run the exact ops of
        // `predict_proba`.
        let prior_p = self.prior_pos.ln();
        let prior_n = (1.0 - self.prior_pos).ln();
        xs.iter()
            .map(|x| {
                let lp = prior_p + Self::log_likelihood(x, &self.mean_pos, &self.var_pos);
                let ln = prior_n + Self::log_likelihood(x, &self.mean_neg, &self.var_neg);
                let m = lp.max(ln);
                let ep = (lp - m).exp();
                let en = (ln - m).exp();
                ep / (ep + en)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_is_uninformative() {
        let m = GaussianNb::new();
        assert_eq!(m.predict_proba(&[1.0, 2.0]), 0.5);
    }

    #[test]
    fn learns_axis_aligned_classes() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let t = i as f64 / 50.0;
            x.push(vec![2.0 + t, 0.0]);
            y.push(true);
            x.push(vec![-2.0 - t, 0.0]);
            y.push(false);
        }
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        assert!(m.predict(&[2.5, 0.0]));
        assert!(!m.predict(&[-2.5, 0.0]));
        assert!(m.predict_proba(&[2.5, 0.0]) > 0.9);
    }

    #[test]
    fn prior_shifts_decision_under_imbalance() {
        // 90% negative: ambiguous points lean negative.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..90 {
            x.push(vec![-1.0]);
            y.push(false);
        }
        for _ in 0..10 {
            x.push(vec![1.0]);
            y.push(true);
        }
        let mut m = GaussianNb::new();
        m.fit(&x, &y);
        assert!(m.predict_proba(&[0.0]) < 0.5);
    }

    #[test]
    fn single_class_training_stays_finite() {
        let mut m = GaussianNb::new();
        m.fit(&[vec![1.0], vec![2.0]], &[true, true]);
        let p = m.predict_proba(&[1.5]);
        assert!(p.is_finite());
        assert!(p > 0.5);
    }

    #[test]
    fn constant_feature_no_nan() {
        let mut m = GaussianNb::new();
        m.fit(&[vec![3.0, 0.0], vec![3.0, 1.0]], &[true, false]);
        assert!(m.predict_proba(&[3.0, 0.5]).is_finite());
    }
}
