//! A small multi-layer perceptron (one hidden layer, tanh) trained by SGD.

use crate::model::{sigmoid, validate_fit_input, Classifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One-hidden-layer MLP for binary classification.
///
/// # Examples
///
/// ```
/// use vulnman_ml::{mlp::Mlp, model::Classifier};
/// let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
/// let y = vec![false, true, true, false]; // XOR
/// let mut m = Mlp::new(2, 8, 3);
/// m.epochs = 800;
/// m.fit(&x, &y);
/// assert!(m.predict(&[0.0, 1.0]));
/// assert!(!m.predict(&[1.0, 1.0]));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    w1: Vec<f64>, // hidden × dim
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
    seed: u64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
}

impl Mlp {
    /// Creates an untrained network with the given input and hidden sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `hidden` is zero.
    pub fn new(dim: usize, hidden: usize, seed: u64) -> Self {
        assert!(dim > 0 && hidden > 0, "sizes must be positive");
        let mut m = Mlp {
            dim,
            hidden,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
            seed,
            learning_rate: 0.3,
            epochs: 250,
        };
        m.init_weights();
        m
    }

    fn init_weights(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = (2.0 / self.dim as f64).sqrt();
        self.w1 = (0..self.hidden * self.dim).map(|_| rng.gen_range(-scale..scale)).collect();
        self.b1 = vec![0.0; self.hidden];
        let s2 = (2.0 / self.hidden as f64).sqrt();
        self.w2 = (0..self.hidden).map(|_| rng.gen_range(-s2..s2)).collect();
        self.b2 = 0.0;
    }

    #[allow(clippy::needless_range_loop)] // j indexes three parallel arrays
    fn forward_into(&self, x: &[f64], h: &mut [f64]) -> f64 {
        for j in 0..self.hidden {
            let mut z = self.b1[j];
            let row = &self.w1[j * self.dim..(j + 1) * self.dim];
            for (w, a) in row.iter().zip(x) {
                z += w * a;
            }
            h[j] = z.tanh();
        }
        let z2 = self.b2 + h.iter().zip(&self.w2).map(|(a, w)| a * w).sum::<f64>();
        sigmoid(z2)
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let mut h = vec![0.0; self.hidden];
        let p = self.forward_into(x, &mut h);
        (h, p)
    }

    #[allow(clippy::needless_range_loop)] // j indexes parallel weight arrays
    fn run_epochs(&mut self, x: &[Vec<f64>], y: &[bool], epochs: usize, lr0: f64) {
        let n = x.len();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd);
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..epochs {
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let lr = lr0 / (1.0 + 0.02 * epoch as f64);
            for &i in &order {
                let xi = &x[i];
                let (h, p) = self.forward(xi);
                let err = p - if y[i] { 1.0 } else { 0.0 };
                // Output layer gradients.
                for j in 0..self.hidden {
                    let grad_w2 = err * h[j];
                    // Hidden layer (through tanh: dh/dz = 1 - h^2).
                    let back = err * self.w2[j] * (1.0 - h[j] * h[j]);
                    let row = &mut self.w1[j * self.dim..(j + 1) * self.dim];
                    for (w, a) in row.iter_mut().zip(xi) {
                        *w -= lr * back * a;
                    }
                    self.b1[j] -= lr * back;
                    self.w2[j] -= lr * grad_w2;
                }
                self.b2 -= lr * err;
            }
        }
    }
}

impl Classifier for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        assert_eq!(x[0].len(), self.dim, "input dimension mismatch");
        self.init_weights();
        self.run_epochs(x, y, self.epochs, self.learning_rate);
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.forward(x).1
    }

    fn predict_proba_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        // Hidden activations land in one scratch buffer reused across rows;
        // the per-row op order matches `predict_proba` exactly.
        let mut h = vec![0.0; self.hidden];
        xs.iter().map(|x| self.forward_into(x, &mut h)).collect()
    }

    fn supports_incremental(&self) -> bool {
        true
    }

    fn fit_incremental(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        self.run_epochs(x, y, (self.epochs / 2).max(1), self.learning_rate * 0.5);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_boundary_fast() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let t = i as f64 * 0.1;
            x.push(vec![1.0 + t * 0.01, 0.0]);
            y.push(true);
            x.push(vec![-1.0 - t * 0.01, 0.0]);
            y.push(false);
        }
        let mut m = Mlp::new(2, 4, 5);
        m.fit(&x, &y);
        let acc = x.iter().zip(&y).filter(|(xi, yi)| m.predict(xi) == **yi).count();
        assert!(acc as f64 / x.len() as f64 > 0.95);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let y = vec![true, false];
        let mut a = Mlp::new(2, 4, 3);
        let mut b = Mlp::new(2, 4, 3);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict_proba(&[0.4, 0.3]), b.predict_proba(&[0.4, 0.3]));
    }

    #[test]
    fn different_seeds_differ() {
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.1], vec![0.1, 0.9]];
        let y = vec![true, false, true, false];
        let mut a = Mlp::new(2, 4, 3);
        let mut b = Mlp::new(2, 4, 4);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict_proba(&[0.5, 0.5]), b.predict_proba(&[0.5, 0.5]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let mut m = Mlp::new(3, 4, 0);
        m.fit(&[vec![1.0]], &[true]);
    }
}
