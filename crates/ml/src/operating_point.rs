//! Calibration and cost-aware operating points.
//!
//! Two industry requirements the paper raises that plain accuracy metrics
//! ignore:
//!
//! * Gap 2 — teams must "maintain confidence in [the model's] predictive
//!   outcomes": a score of 0.9 should *mean* ninety percent. Measured here
//!   by expected calibration error and repaired by Platt scaling.
//! * Gap 3 / Proposal 3 — the deployment threshold is an *economic* choice,
//!   not 0.5: [`optimal_threshold`] picks the operating point that maximizes
//!   net dollar value under a `CostParams`-style pricing of the confusion
//!   matrix.

use crate::eval::Metrics;
use crate::model::sigmoid;
use serde::{Deserialize, Serialize};

/// Expected calibration error over `bins` equal-width score bins: the
/// confidence-weighted mean gap between predicted score and empirical
/// positive rate. 0 = perfectly calibrated.
///
/// # Panics
///
/// Panics if inputs are empty, lengths differ, or `bins == 0`.
///
/// # Examples
///
/// ```
/// use vulnman_ml::operating_point::expected_calibration_error;
/// // Scores that match empirical frequency exactly.
/// let scores = vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
/// let truth: Vec<bool> = (0..10).map(|i| i == 0).collect(); // 10% positive
/// let ece = expected_calibration_error(&scores, &truth, 10);
/// assert!(ece < 0.01);
/// ```
pub fn expected_calibration_error(scores: &[f64], truth: &[bool], bins: usize) -> f64 {
    assert!(!scores.is_empty(), "need scores");
    assert_eq!(scores.len(), truth.len(), "scores/truth must align");
    assert!(bins > 0, "need at least one bin");
    let mut bin_n = vec![0usize; bins];
    let mut bin_conf = vec![0.0f64; bins];
    let mut bin_pos = vec![0usize; bins];
    for (&s, &t) in scores.iter().zip(truth) {
        let b = ((s * bins as f64) as usize).min(bins - 1);
        bin_n[b] += 1;
        bin_conf[b] += s;
        bin_pos[b] += t as usize;
    }
    let n = scores.len() as f64;
    (0..bins)
        .filter(|&b| bin_n[b] > 0)
        .map(|b| {
            let conf = bin_conf[b] / bin_n[b] as f64;
            let acc = bin_pos[b] as f64 / bin_n[b] as f64;
            bin_n[b] as f64 / n * (conf - acc).abs()
        })
        .sum()
}

/// Platt scaling: fits `sigmoid(a·s + b)` to map raw scores to calibrated
/// probabilities, by gradient descent on log-loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

impl PlattScaler {
    /// Fits the scaler on held-out validation scores.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths differ.
    pub fn fit(scores: &[f64], truth: &[bool]) -> PlattScaler {
        assert!(!scores.is_empty(), "need scores");
        assert_eq!(scores.len(), truth.len(), "scores/truth must align");
        let (mut a, mut b) = (1.0f64, 0.0f64);
        let n = scores.len() as f64;
        let lr = 0.5;
        for _ in 0..500 {
            let (mut ga, mut gb) = (0.0, 0.0);
            for (&s, &t) in scores.iter().zip(truth) {
                let p = sigmoid(a * s + b);
                let err = p - t as u8 as f64;
                ga += err * s;
                gb += err;
            }
            a -= lr * ga / n;
            b -= lr * gb / n;
        }
        PlattScaler { a, b }
    }

    /// Maps a raw score to a calibrated probability.
    pub fn calibrate(&self, score: f64) -> f64 {
        sigmoid(self.a * score + self.b)
    }
}

/// Dollar weights for the four confusion-matrix cells (per sample).
/// Positive = value gained, negative = cost incurred.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellValues {
    /// Value of a true positive (breach prevented, minus triage + fix).
    pub tp: f64,
    /// Value of a false positive (wasted triage; negative).
    pub fp: f64,
    /// Value of a true negative (usually 0).
    pub tn: f64,
    /// Value of a false negative (expected breach loss; negative).
    pub fn_: f64,
}

impl CellValues {
    /// Total value of a confusion-matrix outcome.
    pub fn value_of(&self, m: &Metrics) -> f64 {
        self.tp * m.tp as f64
            + self.fp * m.fp as f64
            + self.tn * m.tn as f64
            + self.fn_ * m.fn_ as f64
    }
}

/// The chosen operating point and its consequences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Decision threshold on the (calibrated) score.
    pub threshold: f64,
    /// Confusion matrix at that threshold on the tuning set.
    pub metrics: Metrics,
    /// Net value at that threshold on the tuning set.
    pub net_value: f64,
}

/// Why an operating point could not be derived from the tuning set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThresholdError {
    /// No scores were given.
    Empty,
    /// `scores` and `truth` have different lengths.
    LengthMismatch,
    /// A score is NaN or ±infinite — no threshold on such a score is
    /// meaningful, and silently skipping it would tune the operating point
    /// on a different corpus than the caller evaluates on. Clean or clamp
    /// the scores first.
    NonFiniteScore,
}

impl std::fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThresholdError::Empty => f.write_str("no scores to tune a threshold on"),
            ThresholdError::LengthMismatch => f.write_str("scores/truth length mismatch"),
            ThresholdError::NonFiniteScore => {
                f.write_str("scores must be finite to tune a threshold")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

/// Sweeps every achievable threshold and returns the one maximizing net
/// value under `values` (ties broken toward higher thresholds, i.e. fewer
/// flags).
///
/// Candidates are derived from the *observed score range*: the minimum
/// score (flag everything), midpoints between adjacent distinct scores,
/// and the value just above the maximum (flag nothing) — so score domains
/// outside `[0, 1]` (raw margins, distances) keep both degenerate
/// operating points reachable. (Previously the upper candidate was
/// hard-coded to `1.0 + ε`, making "predict nothing" unreachable for such
/// domains, and NaN scores panicked mid-sort.)
///
/// # Errors
///
/// Returns a [`ThresholdError`] on empty input, mismatched lengths, or
/// non-finite scores, instead of panicking.
pub fn optimal_threshold(
    scores: &[f64],
    truth: &[bool],
    values: &CellValues,
) -> Result<OperatingPoint, ThresholdError> {
    if scores.is_empty() {
        return Err(ThresholdError::Empty);
    }
    if scores.len() != truth.len() {
        return Err(ThresholdError::LengthMismatch);
    }
    if scores.iter().any(|s| !s.is_finite()) {
        return Err(ThresholdError::NonFiniteScore);
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    let mut candidates = vec![sorted[0]];
    candidates.extend(sorted.windows(2).map(|w| (w[0] + w[1]) / 2.0));
    candidates.push(sorted[sorted.len() - 1].next_up());

    let mut best: Option<OperatingPoint> = None;
    for &th in &candidates {
        let pred: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        let m = Metrics::from_predictions(&pred, truth);
        let v = values.value_of(&m);
        let better = match &best {
            None => true,
            Some(b) => v > b.net_value || (v == b.net_value && th > b.threshold),
        };
        if better {
            best = Some(OperatingPoint { threshold: th, metrics: m, net_value: v });
        }
    }
    Ok(best.expect("non-empty candidates"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, overlap: f64) -> (Vec<f64>, Vec<bool>) {
        // Deterministic quasi-random scores whose class distributions
        // overlap (no threshold separates them perfectly).
        let mut scores = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for i in 0..n {
            let t = i % 3 == 0;
            let noise = ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0;
            let s = if t {
                0.35 + (0.55 + overlap * 0.1) * noise
            } else {
                0.05 + (0.55 + overlap * 0.1) * noise
            };
            scores.push(s.clamp(0.0, 1.0));
            truth.push(t);
        }
        (scores, truth)
    }

    #[test]
    fn ece_zero_for_perfect_calibration() {
        // Score 0.25 on a population that is 25% positive, etc.
        let mut scores = Vec::new();
        let mut truth = Vec::new();
        for (s, rate) in [(0.25f64, 4usize), (0.75, 4)] {
            for i in 0..40 {
                scores.push(s);
                truth.push(i % rate < (s * rate as f64) as usize);
            }
        }
        assert!(expected_calibration_error(&scores, &truth, 4) < 0.01);
    }

    #[test]
    fn ece_large_for_overconfident_scores() {
        // Claims 0.95 on a 50% population.
        let scores = vec![0.95; 100];
        let truth: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&scores, &truth, 10);
        assert!((ece - 0.45).abs() < 0.01, "{ece}");
    }

    #[test]
    fn platt_reduces_ece() {
        // Systematically overconfident scores.
        let (raw, truth) = synthetic(300, 1.0);
        let inflated: Vec<f64> = raw.iter().map(|s| (s * 1.6 - 0.1).clamp(0.0, 1.0)).collect();
        let before = expected_calibration_error(&inflated, &truth, 10);
        let scaler = PlattScaler::fit(&inflated, &truth);
        let calibrated: Vec<f64> = inflated.iter().map(|&s| scaler.calibrate(s)).collect();
        let after = expected_calibration_error(&calibrated, &truth, 10);
        assert!(after < before, "Platt should reduce ECE: {before} -> {after}");
    }

    #[test]
    fn optimal_threshold_tracks_economics() {
        let (scores, truth) = synthetic(400, 1.0);
        // Expensive false positives => higher threshold than cheap ones.
        let fp_cheap = CellValues { tp: 100.0, fp: -1.0, tn: 0.0, fn_: -100.0 };
        let fp_dear = CellValues { tp: 100.0, fp: -80.0, tn: 0.0, fn_: -10.0 };
        let cheap = optimal_threshold(&scores, &truth, &fp_cheap).unwrap();
        let dear = optimal_threshold(&scores, &truth, &fp_dear).unwrap();
        assert!(
            dear.threshold > cheap.threshold,
            "dear FPs should raise the bar: {} vs {}",
            dear.threshold,
            cheap.threshold
        );
        // Chosen points beat the default 0.5 threshold under their own economics.
        let at_half = |v: &CellValues| {
            let pred: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
            v.value_of(&Metrics::from_predictions(&pred, &truth))
        };
        assert!(cheap.net_value >= at_half(&fp_cheap));
        assert!(dear.net_value >= at_half(&fp_dear));
    }

    #[test]
    fn single_class_corpora_produce_finite_operating_points() {
        let values = CellValues { tp: 100.0, fp: -10.0, tn: 0.0, fn_: -50.0 };
        let scores: Vec<f64> = (0..40).map(|i| i as f64 / 40.0).collect();
        // All-negative corpus: best to flag nothing; numbers stay finite.
        let p = optimal_threshold(&scores, &[false; 40], &values).unwrap();
        assert_eq!(p.metrics.tp + p.metrics.fn_, 0);
        assert!(p.net_value.is_finite());
        assert!(!p.metrics.f1().is_nan());
        assert_eq!(p.metrics.fp, 0, "flagging a clean corpus only costs money");
        // All-positive corpus: best to flag everything.
        let p = optimal_threshold(&scores, &[true; 40], &values).unwrap();
        assert!(p.net_value.is_finite());
        assert!(!p.metrics.precision().is_nan());
        assert_eq!(p.metrics.fn_, 0, "missing a vuln-only corpus only loses value");
        // Calibration error is defined on single-class corpora too.
        assert!(expected_calibration_error(&scores, &[false; 40], 10).is_finite());
        assert!(expected_calibration_error(&scores, &[true; 40], 10).is_finite());
    }

    #[test]
    fn nan_scores_are_rejected_not_a_panic() {
        // Regression: a NaN used to abort the sweep inside the sort
        // comparator (`expect("finite scores")`). It is now a typed error.
        let values = CellValues { tp: 1.0, fp: -1.0, tn: 0.0, fn_: -1.0 };
        assert_eq!(
            optimal_threshold(&[0.2, f64::NAN, 0.8], &[false, true, true], &values),
            Err(ThresholdError::NonFiniteScore)
        );
        assert_eq!(
            optimal_threshold(&[f64::INFINITY, 0.5], &[true, false], &values),
            Err(ThresholdError::NonFiniteScore)
        );
        assert_eq!(optimal_threshold(&[], &[], &values), Err(ThresholdError::Empty));
        assert_eq!(
            optimal_threshold(&[0.5], &[true, false], &values),
            Err(ThresholdError::LengthMismatch)
        );
    }

    #[test]
    fn predict_nothing_is_reachable_outside_unit_scores() {
        // Regression: with raw-margin scores well above 1.0 and economics
        // that make every flag a loss, the best operating point is "flag
        // nothing". The old hard-coded `1.0 + ε` upper candidate sat below
        // every score, so the sweep could never stop flagging.
        let scores = [3.5, 4.0, 7.25, 9.0];
        let truth = [false, false, false, false];
        let values = CellValues { tp: 1.0, fp: -50.0, tn: 0.0, fn_: 0.0 };
        let p = optimal_threshold(&scores, &truth, &values).unwrap();
        assert_eq!(p.metrics.fp, 0, "{p:?}");
        assert_eq!(p.net_value, 0.0);
        assert!(p.threshold > 9.0, "above the max observed score: {p:?}");
        // Symmetrically, "flag everything" stays reachable for negative
        // domains (k-NN distances negated, raw margins).
        let scores = [-8.0, -3.0, -1.5];
        let truth = [true, true, true];
        let values = CellValues { tp: 5.0, fp: 0.0, tn: 0.0, fn_: -50.0 };
        let p = optimal_threshold(&scores, &truth, &values).unwrap();
        assert_eq!(p.metrics.fn_, 0, "{p:?}");
        assert!(p.threshold <= -8.0, "at or below the min score: {p:?}");
    }

    #[test]
    fn extreme_economics_degenerate_sanely() {
        let (scores, truth) = synthetic(100, 1.0);
        // Misses are free, FPs ruinous: tolerate zero false positives
        // (flag at most the score range no negative reaches).
        let never = CellValues { tp: 1.0, fp: -1000.0, tn: 0.0, fn_: 0.0 };
        let p = optimal_threshold(&scores, &truth, &never).unwrap();
        assert_eq!(p.metrics.fp, 0, "{p:?}");
        // FPs free, misses ruinous: miss nothing.
        let always = CellValues { tp: 1.0, fp: 0.0, tn: 0.0, fn_: -1000.0 };
        let p = optimal_threshold(&scores, &truth, &always).unwrap();
        assert_eq!(p.metrics.fn_, 0, "{p:?}");
    }
}
