//! CART decision trees and random forests.

use crate::model::{validate_fit_input, Classifier};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        proba: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,  // feature <= threshold
        right: Box<Node>, // feature > threshold
    },
}

/// A single CART decision tree (Gini impurity).
///
/// # Examples
///
/// ```
/// use vulnman_ml::{model::Classifier, tree::DecisionTree};
/// let x = vec![vec![0.0], vec![1.0], vec![0.1], vec![0.9]];
/// let y = vec![false, true, false, true];
/// let mut t = DecisionTree::new(4, 1);
/// t.fit(&x, &y);
/// assert!(t.predict(&[0.95]));
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Option<Node>,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Number of candidate features per split (`None` = all).
    feature_subsample: Option<usize>,
    seed: u64,
}

impl DecisionTree {
    /// Creates an untrained tree.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        DecisionTree {
            root: None,
            max_depth,
            min_samples_split: min_samples_split.max(2),
            feature_subsample: None,
            seed: 0,
        }
    }

    fn with_subsample(max_depth: usize, min_samples_split: usize, k: usize, seed: u64) -> Self {
        DecisionTree {
            root: None,
            max_depth,
            min_samples_split: min_samples_split.max(2),
            feature_subsample: Some(k.max(1)),
            seed,
        }
    }

    fn build(
        &self,
        x: &[Vec<f64>],
        y: &[bool],
        idx: &[usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> Node {
        let pos = idx.iter().filter(|&&i| y[i]).count();
        let n = idx.len();
        let proba = (pos as f64 + 1.0) / (n as f64 + 2.0);
        if depth >= self.max_depth || n < self.min_samples_split || pos == 0 || pos == n {
            return Node::Leaf { proba };
        }
        let d = x[0].len();
        let features: Vec<usize> = match self.feature_subsample {
            None => (0..d).collect(),
            Some(k) => {
                let mut all: Vec<usize> = (0..d).collect();
                for i in 0..k.min(d) {
                    let j = rng.gen_range(i..d);
                    all.swap(i, j);
                }
                all.truncate(k.min(d));
                all
            }
        };
        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
        for &f in &features {
            let mut vals: Vec<(f64, bool)> = idx.iter().map(|&i| (x[i][f], y[i])).collect();
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let total_pos = vals.iter().filter(|(_, l)| *l).count() as f64;
            let mut left_pos = 0.0f64;
            for (k, w) in vals.windows(2).enumerate() {
                if w[0].1 {
                    left_pos += 1.0;
                }
                if w[0].0 == w[1].0 {
                    continue;
                }
                let nl = (k + 1) as f64;
                let nr = n as f64 - nl;
                let pl = left_pos / nl;
                let pr = (total_pos - left_pos) / nr;
                let gini = nl * 2.0 * pl * (1.0 - pl) + nr * 2.0 * pr * (1.0 - pr);
                if best.is_none_or(|(b, _, _)| gini < b) {
                    best = Some((gini, f, (w[0].0 + w[1].0) / 2.0));
                }
            }
        }
        let Some((_, feature, threshold)) = best else {
            return Node::Leaf { proba };
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf { proba };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_idx, depth + 1, rng)),
            right: Box::new(self.build(x, y, &right_idx, depth + 1, rng)),
        }
    }

    fn eval(node: &Node, x: &[f64]) -> f64 {
        match node {
            Node::Leaf { proba } => *proba,
            Node::Split { feature, threshold, left, right } => {
                if x.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                    Self::eval(left, x)
                } else {
                    Self::eval(right, x)
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "cart"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        let idx: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(self.build(x, y, &idx, 0, &mut rng));
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        match &self.root {
            Some(root) => Self::eval(root, x),
            None => 0.5,
        }
    }
}

/// Bagged ensemble of feature-subsampled CART trees.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Number of trees.
    pub n_trees: usize,
    /// Depth limit per tree.
    pub max_depth: usize,
    seed: u64,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(n_trees: usize, max_depth: usize, seed: u64) -> Self {
        RandomForest { trees: Vec::new(), n_trees: n_trees.max(1), max_depth, seed }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "random-forest"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[bool]) {
        validate_fit_input(x, y);
        let n = x.len();
        let d = x[0].len();
        let k = (d as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.trees.clear();
        for t in 0..self.n_trees {
            // Bootstrap sample.
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.gen_range(0..n);
                bx.push(x[i].clone());
                by.push(y[i]);
            }
            let mut tree = DecisionTree::with_subsample(
                self.max_depth,
                2,
                k,
                self.seed.wrapping_add(t as u64 * 101),
            );
            tree.fit(&bx, &by);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, x: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.predict_proba(x)).sum::<f64>() / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                x.push(vec![a + jitter, b - jitter]);
                y.push((a > 0.5) != (b > 0.5));
            }
        }
        (x, y)
    }

    #[test]
    fn tree_learns_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(4, 2);
        t.fit(&x, &y);
        let acc = x.iter().zip(&y).filter(|(xi, yi)| t.predict(xi) == **yi).count();
        assert!(acc as f64 / x.len() as f64 > 0.95, "{acc}/{}", x.len());
    }

    #[test]
    fn depth_limit_respected() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(1, 2);
        stump.fit(&x, &y);
        // A depth-1 stump cannot solve XOR.
        let acc = x.iter().zip(&y).filter(|(xi, yi)| stump.predict(xi) == **yi).count();
        assert!((acc as f64 / x.len() as f64) < 0.8);
    }

    #[test]
    fn forest_learns_xor_and_is_deterministic() {
        let (x, y) = xor_data();
        let mut f1 = RandomForest::new(11, 5, 42);
        let mut f2 = RandomForest::new(11, 5, 42);
        f1.fit(&x, &y);
        f2.fit(&x, &y);
        let acc = x.iter().zip(&y).filter(|(xi, yi)| f1.predict(xi) == **yi).count();
        assert!(acc as f64 / x.len() as f64 > 0.95);
        for xi in &x {
            assert_eq!(f1.predict_proba(xi), f2.predict_proba(xi));
        }
    }

    #[test]
    fn untrained_is_uninformative() {
        let t = DecisionTree::new(3, 2);
        assert_eq!(t.predict_proba(&[1.0]), 0.5);
        let f = RandomForest::new(3, 3, 1);
        assert_eq!(f.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn pure_class_gives_confident_leaf() {
        let mut t = DecisionTree::new(3, 2);
        t.fit(&[vec![0.0], vec![0.1], vec![1.0], vec![1.1]], &[false, false, true, true]);
        assert!(t.predict_proba(&[1.05]) > 0.7);
        assert!(t.predict_proba(&[0.05]) < 0.3);
    }
}
