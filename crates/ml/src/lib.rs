//! # vulnman-ml
//!
//! From-scratch machine learning for vulnerability detection: feature
//! extraction over mini-C samples, five classifier families, evaluation
//! metrics, agreement statistics, and dataset splitting.
//!
//! The [`pipeline::model_zoo`] assembles five heterogeneous detection models
//! that stand in for the deep-learning families the paper surveys
//! (transformer / RNN / GNN / shallow / clone-similarity), per the
//! substitution policy in `DESIGN.md`: every gap-study claim concerns the
//! *relative* behaviour of heterogeneous models under controlled data
//! pathologies, which these families reproduce at laptop scale.
//!
//! ## Quick start
//!
//! ```
//! use vulnman_ml::{pipeline::model_zoo, split::stratified_split};
//! use vulnman_synth::dataset::DatasetBuilder;
//!
//! let corpus = DatasetBuilder::new(42).vulnerable_count(80).build();
//! let split = stratified_split(&corpus, 0.3, 7);
//! let mut model = model_zoo(1).remove(2); // graph-rf
//! model.train(&split.train);
//! let metrics = model.evaluate(&split.test);
//! assert!(metrics.f1() > 0.6);
//! ```

#![warn(missing_docs)]

pub mod ensemble;
pub mod eval;
pub mod features;
pub mod knn;
pub mod linear;
pub mod mlp;
pub mod model;
pub mod naive_bayes;
pub mod operating_point;
pub mod pipeline;
pub mod split;
pub mod tree;

pub use eval::{agreement, roc_auc, AgreementReport, Metrics};
pub use features::FeatureExtractor;
pub use model::Classifier;
pub use pipeline::{model_zoo, DetectionModel, PredictError};
pub use split::{kfold, split_by_project, stratified_split, Split};
