//! Stacked ensembles: a meta-learner over heterogeneous detection models.
//!
//! E02 shows the model families disagree constantly; [`CombinePolicy`-style
//! voting](https://en.wikipedia.org/wiki/Ensemble_learning) treats every
//! vote equally. A stacker instead *learns* how much to trust each family —
//! "integrate seamlessly with existing tools and … iteratively incorporate
//! and apply knowledge derived from an organization's existing suite"
//! (Gap Observation 2).

use crate::eval::Metrics;
use crate::linear::LogisticRegression;
use crate::model::Classifier;
use crate::pipeline::DetectionModel;
use vulnman_synth::dataset::Dataset;
use vulnman_synth::sample::Sample;

/// A two-level stacked ensemble: base detection models feed a logistic
/// meta-learner trained on out-of-fold predictions.
pub struct StackedEnsemble {
    factory: Box<dyn Fn(u64) -> Vec<DetectionModel> + Send + Sync>,
    bases: Vec<DetectionModel>,
    meta: LogisticRegression,
    trained: bool,
}

impl std::fmt::Debug for StackedEnsemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackedEnsemble")
            .field("bases", &self.bases.iter().map(|b| b.name().to_string()).collect::<Vec<_>>())
            .field("trained", &self.trained)
            .finish()
    }
}

impl StackedEnsemble {
    /// Creates an ensemble from a base-model factory (called with a seed;
    /// must return the same architectures each time).
    ///
    /// # Panics
    ///
    /// Panics if the factory returns no models.
    pub fn new(factory: impl Fn(u64) -> Vec<DetectionModel> + Send + Sync + 'static) -> Self {
        let probe = factory(0);
        assert!(!probe.is_empty(), "factory must produce at least one base model");
        let n = probe.len();
        StackedEnsemble {
            factory: Box::new(factory),
            bases: Vec::new(),
            meta: LogisticRegression::new(n, 0x5ac4),
            trained: false,
        }
    }

    /// Returns `true` once trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Names of the base models.
    pub fn base_names(&self) -> Vec<String> {
        self.bases.iter().map(|b| b.name().to_string()).collect()
    }

    /// Trains with two-fold stacking: each half's meta-features come from
    /// bases trained on the other half; the final bases are retrained on the
    /// full set.
    ///
    /// # Panics
    ///
    /// Panics if `data` has fewer than four samples.
    pub fn train(&mut self, data: &Dataset) {
        assert!(data.len() >= 4, "stacking needs a few samples");
        let shuffled = data.shuffled(0xf01d);
        let half = shuffled.len() / 2;
        let fold_a: Dataset = shuffled.iter().take(half).cloned().collect();
        let fold_b: Dataset = shuffled.iter().skip(half).cloned().collect();

        // Out-of-fold meta features: one batched scoring pass per base over
        // the held-out fold (the old per-sample loop re-dispatched every
        // base — and re-extracted its features — for every sample),
        // transposed into per-sample meta rows. Scores are bit-identical.
        let mut meta_x: Vec<Vec<f64>> = Vec::with_capacity(shuffled.len());
        let mut meta_y: Vec<bool> = Vec::with_capacity(shuffled.len());
        for (train_fold, pred_fold) in [(&fold_a, &fold_b), (&fold_b, &fold_a)] {
            let mut bases = (self.factory)(1);
            for b in &mut bases {
                b.train(train_fold);
            }
            let cols: Vec<Vec<f64>> = bases.iter().map(|b| b.scores(pred_fold)).collect();
            for (i, s) in pred_fold.iter().enumerate() {
                meta_x.push(cols.iter().map(|c| c[i]).collect());
                meta_y.push(s.observed_label);
            }
        }
        self.meta.fit(&meta_x, &meta_y);

        // Final bases on everything.
        let mut bases = (self.factory)(1);
        for b in &mut bases {
            b.train(data);
        }
        self.bases = bases;
        self.trained = true;
    }

    /// Probability the sample is vulnerable.
    ///
    /// # Panics
    ///
    /// Panics if called before [`StackedEnsemble::train`].
    pub fn predict_proba(&self, sample: &Sample) -> f64 {
        assert!(self.trained, "train the ensemble first");
        let features: Vec<f64> = self.bases.iter().map(|b| b.predict_proba(sample)).collect();
        self.meta.predict_proba(&features)
    }

    /// Hard decision at the 0.5 threshold.
    pub fn predict(&self, sample: &Sample) -> bool {
        self.predict_proba(sample) >= 0.5
    }

    /// Scores over a whole dataset: each base scores the set in one batched
    /// pass and the meta-learner scores the transposed matrix in one pass —
    /// the per-sample path scored every base per sample, re-extracting
    /// features each time. Bit-identical to mapping
    /// [`StackedEnsemble::predict_proba`] over the dataset.
    ///
    /// # Panics
    ///
    /// Panics if called before [`StackedEnsemble::train`].
    pub fn scores(&self, data: &Dataset) -> Vec<f64> {
        assert!(self.trained, "train the ensemble first");
        let cols: Vec<Vec<f64>> = self.bases.iter().map(|b| b.scores(data)).collect();
        let meta_x: Vec<Vec<f64>> =
            (0..data.len()).map(|i| cols.iter().map(|c| c[i]).collect()).collect();
        self.meta.predict_proba_batch(&meta_x)
    }

    /// Evaluates against ground truth via one batched scoring pass.
    pub fn evaluate(&self, data: &Dataset) -> Metrics {
        let pred: Vec<bool> = self.scores(data).iter().map(|&p| p >= 0.5).collect();
        let truth: Vec<bool> = data.iter().map(|s| s.label).collect();
        Metrics::from_predictions(&pred, &truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::model_zoo;
    use crate::split::stratified_split;
    use vulnman_synth::dataset::DatasetBuilder;

    #[test]
    fn stacker_is_competitive_with_best_base() {
        let ds = DatasetBuilder::new(23).vulnerable_count(150).vulnerable_fraction(0.5).build();
        let split = stratified_split(&ds, 0.3, 3);

        let mut best_base: f64 = 0.0;
        for mut m in model_zoo(9) {
            m.train(&split.train);
            best_base = best_base.max(m.evaluate(&split.test).f1());
        }

        let mut stack = StackedEnsemble::new(model_zoo);
        stack.train(&split.train);
        let stacked = stack.evaluate(&split.test).f1();
        assert!(
            stacked > best_base - 0.06,
            "stacker ({stacked:.3}) should be competitive with the best base ({best_base:.3})"
        );
        assert_eq!(stack.base_names().len(), 5);
    }

    #[test]
    fn stacker_beats_uniform_vote() {
        let ds = DatasetBuilder::new(29).vulnerable_count(150).vulnerable_fraction(0.4).build();
        let split = stratified_split(&ds, 0.3, 5);
        let mut bases = model_zoo(11);
        for b in &mut bases {
            b.train(&split.train);
        }
        // Uniform majority vote.
        let vote_pred: Vec<bool> = split
            .test
            .iter()
            .map(|s| bases.iter().filter(|b| b.predict(s)).count() * 2 > bases.len())
            .collect();
        let truth: Vec<bool> = split.test.iter().map(|s| s.label).collect();
        let vote_f1 = Metrics::from_predictions(&vote_pred, &truth).f1();

        let mut stack = StackedEnsemble::new(model_zoo);
        stack.train(&split.train);
        let stacked = stack.evaluate(&split.test).f1();
        assert!(
            stacked > vote_f1 - 0.03,
            "learned weighting ({stacked:.3}) should match or beat voting ({vote_f1:.3})"
        );
    }

    #[test]
    fn batched_ensemble_scores_bit_identical_to_per_sample() {
        let ds = DatasetBuilder::new(31).vulnerable_count(60).vulnerable_fraction(0.5).build();
        let split = stratified_split(&ds, 0.3, 7);
        let mut stack = StackedEnsemble::new(model_zoo);
        stack.train(&split.train);
        let batched = stack.scores(&split.test);
        let single: Vec<f64> = split.test.iter().map(|s| stack.predict_proba(s)).collect();
        assert_eq!(batched.len(), single.len());
        for (i, (a, b)) in batched.iter().zip(&single).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}: batch {a} vs single {b}");
        }
    }

    #[test]
    #[should_panic(expected = "train the ensemble first")]
    fn untrained_prediction_panics() {
        let ds = DatasetBuilder::new(1).vulnerable_count(2).build();
        let stack = StackedEnsemble::new(model_zoo);
        let _ = stack.predict_proba(&ds.samples()[0]);
    }
}
