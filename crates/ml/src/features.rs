//! Feature extraction.
//!
//! Four feature families stand in for the DL architecture families the
//! paper surveys (token sequence ≈ transformer/RNN, graph/flow ≈ GNN,
//! structural stats ≈ classic models, artifact text ≈ multimodal), per the
//! substitution rule in `DESIGN.md`. Gap Observation 5's point — expert-
//! crafted representations out-perform raw ones — is directly testable by
//! swapping extractors on the same classifier.

use vulnman_lang::ast::{ExprKind, StmtKind, Type};
use vulnman_lang::lexer::lex;
use vulnman_lang::metrics::FunctionMetrics;
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_lang::token::TokenKind;
use vulnman_synth::sample::Sample;

/// Extracts a fixed-dimension feature vector from a sample.
pub trait FeatureExtractor: Send + Sync {
    /// Stable extractor name.
    fn name(&self) -> &'static str;
    /// Output dimensionality.
    fn dim(&self) -> usize;
    /// Extracts features for one sample.
    fn extract(&self, sample: &Sample) -> Vec<f64>;
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn l2_normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Token text used by n-gram features: identifiers and keywords verbatim,
/// literals partially abstracted (string content kept — real sequence models
/// see it too).
fn token_text(kind: &TokenKind) -> String {
    match kind {
        TokenKind::Ident(s) => s.clone(),
        TokenKind::Int(v) => {
            // Bucket magnitudes so sizes generalize.
            let m = match v.unsigned_abs() {
                0..=1 => "01",
                2..=16 => "small",
                17..=256 => "mid",
                _ => "big",
            };
            format!("<int:{m}>")
        }
        TokenKind::Char(_) => "<char>".to_string(),
        TokenKind::Str(s) => format!("<str:{s}>"),
        other => other.describe().to_string(),
    }
}

/// Hashed token uni+bi-gram presence features over the source text
/// (transformer/RNN-style surface model), L2-normalized.
#[derive(Debug, Clone)]
pub struct TokenNgramFeatures {
    dim: usize,
}

impl TokenNgramFeatures {
    /// Creates an extractor with `dim` hash buckets.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        TokenNgramFeatures { dim }
    }
}

impl Default for TokenNgramFeatures {
    fn default() -> Self {
        TokenNgramFeatures::new(256)
    }
}

impl FeatureExtractor for TokenNgramFeatures {
    fn name(&self) -> &'static str {
        "token-ngram"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        let Ok(out) = lex(&sample.source) else { return v };
        let texts: Vec<String> = out
            .tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| token_text(&t.kind))
            .collect();
        // Binary presence features: the discriminating signal is *whether*
        // a security-relevant token/bigram occurs, not how often padding
        // tokens repeat. Presence + per-sample scaling keeps the signal
        // from being diluted by long real-world functions.
        for t in &texts {
            v[(hash_str(t) % self.dim as u64) as usize] = 1.0;
        }
        for w in texts.windows(2) {
            let bigram = format!("{}\u{1}{}", w[0], w[1]);
            v[(hash_str(&bigram) % self.dim as u64) as usize] = 1.0;
        }
        l2_normalize(&mut v);
        v
    }
}

/// Identifier-normalized token n-grams: like [`TokenNgramFeatures`] but
/// with identifiers erased to `<id>`, the normalization clone-detection
/// systems apply so that alpha-renamed near-duplicates map to near-identical
/// vectors. This is exactly why clone-style models are the family most
/// inflated by synthetic dataset duplication (experiment E08).
#[derive(Debug, Clone)]
pub struct NormalizedTokenFeatures {
    dim: usize,
}

impl NormalizedTokenFeatures {
    /// Creates an extractor with `dim` hash buckets.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        NormalizedTokenFeatures { dim }
    }
}

impl FeatureExtractor for NormalizedTokenFeatures {
    fn name(&self) -> &'static str {
        "normalized-token"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        let Ok(out) = lex(&sample.source) else { return v };
        let Ok(program) = vulnman_lang::parse(&sample.source) else { return v };
        // Library calls are kept (they are the semantic anchors); everything
        // declared locally is erased.
        let mut declared: std::collections::HashSet<vulnman_lang::Symbol> =
            std::collections::HashSet::new();
        for f in &program.functions {
            declared.insert(f.name.clone());
            for p in &f.params {
                declared.insert(p.name.clone());
            }
            f.walk_stmts(&mut |st| {
                if let StmtKind::Decl { name, .. } = &st.kind {
                    declared.insert(name.clone());
                }
            });
        }
        let texts: Vec<String> = out
            .tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Eof)
            .map(|t| match &t.kind {
                TokenKind::Ident(name) if declared.contains(name.as_str()) => "<id>".to_string(),
                other => token_text(other),
            })
            .collect();
        for t in &texts {
            v[(hash_str(t) % self.dim as u64) as usize] = 1.0;
        }
        for w in texts.windows(2) {
            let bigram = format!("{}\u{1}{}", w[0], w[1]);
            v[(hash_str(&bigram) % self.dim as u64) as usize] = 1.0;
        }
        l2_normalize(&mut v);
        v
    }
}

/// Structural AST statistics (shallow-model style): sizes, complexity,
/// type usage, literal counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstStatFeatures;

impl AstStatFeatures {
    /// Number of output dimensions.
    pub const DIM: usize = 20;
}

impl FeatureExtractor for AstStatFeatures {
    fn name(&self) -> &'static str {
        "ast-stats"
    }

    fn dim(&self) -> usize {
        Self::DIM
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        let mut v = vec![0.0; Self::DIM];
        let Ok(program) = vulnman_lang::parse(&sample.source) else { return v };
        let mut agg = FunctionMetrics::default();
        let mut str_lits = 0.0;
        let mut int_lits = 0.0;
        let mut arrays = 0.0;
        let mut ptr_decls = 0.0;
        let mut returns = 0.0;
        for f in &program.functions {
            let m = FunctionMetrics::compute(f);
            agg.statements += m.statements;
            agg.cyclomatic += m.cyclomatic;
            agg.max_nesting = agg.max_nesting.max(m.max_nesting);
            agg.calls += m.calls;
            agg.distinct_callees += m.distinct_callees;
            agg.params += m.params;
            agg.locals += m.locals;
            agg.loops += m.loops;
            agg.branches += m.branches;
            agg.index_exprs += m.index_exprs;
            agg.derefs += m.derefs;
            f.walk_exprs(&mut |e| match &e.kind {
                ExprKind::Str(_) => str_lits += 1.0,
                ExprKind::Int(_) => int_lits += 1.0,
                _ => {}
            });
            f.walk_stmts(&mut |s| match &s.kind {
                StmtKind::Decl { ty, .. } => match ty {
                    Type::Array(_, _) => arrays += 1.0,
                    Type::Ptr(_) => ptr_decls += 1.0,
                    _ => {}
                },
                StmtKind::Return(_) => returns += 1.0,
                _ => {}
            });
        }
        let nf = program.functions.len().max(1) as f64;
        v[0] = program.functions.len() as f64;
        v[1] = agg.statements as f64 / nf;
        v[2] = agg.cyclomatic as f64 / nf;
        v[3] = agg.max_nesting as f64;
        v[4] = agg.calls as f64 / nf;
        v[5] = agg.distinct_callees as f64 / nf;
        v[6] = agg.params as f64 / nf;
        v[7] = agg.locals as f64 / nf;
        v[8] = agg.loops as f64 / nf;
        v[9] = agg.branches as f64 / nf;
        v[10] = agg.index_exprs as f64 / nf;
        v[11] = agg.derefs as f64 / nf;
        v[12] = str_lits / nf;
        v[13] = int_lits / nf;
        v[14] = arrays / nf;
        v[15] = ptr_decls / nf;
        v[16] = returns / nf;
        v[17] = sample.source.len() as f64 / 1000.0;
        v[18] = sample.source.lines().count() as f64 / 100.0;
        v[19] = 1.0; // bias-ish constant
        l2_normalize(&mut v);
        v
    }
}

/// Expert-crafted flow/graph features (GNN-style, Gap Observation 5):
/// security-relevant counts derived from the taint engine, CFG shape, and
/// known-risk syntactic patterns.
#[derive(Debug, Clone)]
pub struct ExpertFlowFeatures {
    config: TaintConfig,
}

impl ExpertFlowFeatures {
    /// Number of output dimensions.
    pub const DIM: usize = 24;

    /// Uses the workspace-default taint vocabulary.
    pub fn new() -> Self {
        ExpertFlowFeatures { config: TaintConfig::default_config() }
    }

    /// Uses a custom taint vocabulary (e.g. a team's source/sink set —
    /// the customization lever of Gap Observation 2).
    pub fn with_config(config: TaintConfig) -> Self {
        ExpertFlowFeatures { config }
    }
}

impl Default for ExpertFlowFeatures {
    fn default() -> Self {
        ExpertFlowFeatures::new()
    }
}

impl FeatureExtractor for ExpertFlowFeatures {
    fn name(&self) -> &'static str {
        "expert-flow"
    }

    fn dim(&self) -> usize {
        Self::DIM
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        let mut v = vec![0.0; Self::DIM];
        let Ok(program) = vulnman_lang::parse(&sample.source) else { return v };
        let analysis = TaintAnalysis::run(&program, &self.config);

        // Flow counts per sink kind.
        let kinds = ["sql", "command", "xss", "path", "format", "memory"];
        for (i, k) in kinds.iter().enumerate() {
            v[i] = analysis.findings_of_kind(k).len() as f64;
        }
        v[6] = analysis.findings.len() as f64;

        // Vocabulary usage counts.
        let mut sources = 0.0;
        let mut sinks = 0.0;
        let mut sanitizers = 0.0;
        let mut free_calls = 0.0;
        let mut maybe_null_lookups = 0.0;
        let mut null_checks = 0.0;
        let mut secret_literals = 0.0;
        let mut exists_checks = 0.0;
        let mut to_int_calls = 0.0;
        let mut mults = 0.0;
        let mut unbounded_loop_writes = 0.0;
        let mut bounded_loop_writes = 0.0;
        let mut allocs = 0.0;
        for f in &program.functions {
            f.walk_exprs(&mut |e| match &e.kind {
                ExprKind::Call(name, _) => {
                    if self.config.is_source(name) {
                        sources += 1.0;
                    }
                    if self.config.sink_positions(name).is_some() {
                        sinks += 1.0;
                    }
                    if self.config.is_sanitizer(name) {
                        sanitizers += 1.0;
                    }
                    match name.as_str() {
                        "free_mem" => free_calls += 1.0,
                        "find_entry" | "lookup_user" | "get_config" | "find_session" => {
                            maybe_null_lookups += 1.0
                        }
                        "file_exists" => exists_checks += 1.0,
                        "to_int" => to_int_calls += 1.0,
                        "alloc_buffer" => allocs += 1.0,
                        _ => {}
                    }
                }
                ExprKind::Str(s)
                    if s.len() >= 10
                        && !s.contains(' ')
                        && !s.contains('/')
                        && s.chars().any(|c| c.is_ascii_digit())
                        && s.chars().any(|c| c.is_ascii_alphabetic()) =>
                {
                    secret_literals += 1.0;
                }
                ExprKind::Binary(vulnman_lang::ast::BinOp::Mul, _, _) => mults += 1.0,
                _ => {}
            });
            f.walk_stmts(&mut |s| match &s.kind {
                StmtKind::If { cond, .. } => {
                    let mut zero_cmp = false;
                    cond.walk(&mut |e| {
                        if let ExprKind::Binary(
                            vulnman_lang::ast::BinOp::Eq | vulnman_lang::ast::BinOp::Ne,
                            l,
                            r,
                        ) = &e.kind
                        {
                            if matches!(l.kind, ExprKind::Int(0))
                                || matches!(r.kind, ExprKind::Int(0))
                            {
                                zero_cmp = true;
                            }
                        }
                    });
                    if zero_cmp {
                        null_checks += 1.0;
                    }
                }
                StmtKind::While { cond, body } => {
                    for inner in body {
                        if let StmtKind::Assign {
                            target: vulnman_lang::ast::LValue::Index(_, idx),
                            ..
                        } = &inner.kind
                        {
                            if let ExprKind::Var(i) = &idx.kind {
                                let mut bounded = false;
                                cond.walk(&mut |e| {
                                    if let ExprKind::Binary(op, l, r) = &e.kind {
                                        use vulnman_lang::ast::BinOp::*;
                                        let li = matches!(&l.kind, ExprKind::Var(v) if v == i);
                                        let ri = matches!(&r.kind, ExprKind::Var(v) if v == i);
                                        if (matches!(op, Lt | Le) && li)
                                            || (matches!(op, Gt | Ge) && ri)
                                        {
                                            bounded = true;
                                        }
                                    }
                                });
                                if bounded {
                                    bounded_loop_writes += 1.0;
                                } else {
                                    unbounded_loop_writes += 1.0;
                                }
                            }
                        }
                    }
                }
                _ => {}
            });
        }
        v[7] = sources;
        v[8] = sinks;
        v[9] = sanitizers;
        v[10] = free_calls;
        v[11] = maybe_null_lookups;
        v[12] = null_checks;
        v[13] = secret_literals;
        v[14] = exists_checks;
        v[15] = to_int_calls;
        v[16] = mults;
        v[17] = unbounded_loop_writes;
        v[18] = bounded_loop_writes;
        v[19] = allocs;
        // Interaction terms experts know matter.
        v[20] = (sources > 0.0 && sinks > 0.0 && sanitizers == 0.0) as u8 as f64;
        v[21] = (maybe_null_lookups > null_checks) as u8 as f64;
        v[22] = (free_calls > 0.0) as u8 as f64;
        v[23] = program.functions.len() as f64 / 10.0;
        l2_normalize(&mut v);
        v
    }
}

/// Outputs of the existing rule-based tool ecosystem as features — the
/// "integration with and learning from existing tool ecosystems" lever of
/// Gap Observation 2 / Future Direction Proposal 2. A model trained over
/// these learns *when to trust each installed tool*, which is exactly how
/// industry composes a new model with its incumbent suite.
pub struct ToolAugmentedFeatures {
    engine: vulnman_analysis_shim::RuleEngineShim,
}

// `vulnman-ml` must not depend on `vulnman-analysis` (it would create a
// cycle once analysis consumes ML detectors); the shim below duplicates the
// minimal scan-call via a trait object injected at construction.
mod vulnman_analysis_shim {
    /// Object-safe adapter over any scanner that can count findings per CWE.
    pub trait ToolSuite: Send + Sync {
        /// Returns `(cwe id, confidence in [0,1])` pairs for the unit.
        fn scan_counts(&self, source: &str) -> Vec<(u32, f64)>;
    }
    pub struct RuleEngineShim(pub Box<dyn ToolSuite>);
}

pub use vulnman_analysis_shim::ToolSuite;

impl ToolAugmentedFeatures {
    /// Number of output dimensions: one slot per catalog CWE plus a total.
    /// Derived from the catalog so a new class widens the vector instead of
    /// indexing past it (the pre-derivation constant lagged the catalog).
    pub const DIM: usize = vulnman_synth::cwe::Cwe::ALL.len() + 1;

    /// Wraps a tool suite (e.g. the rule engine from `vulnman-analysis`,
    /// adapted through [`ToolSuite`]).
    pub fn new(suite: Box<dyn ToolSuite>) -> Self {
        ToolAugmentedFeatures { engine: vulnman_analysis_shim::RuleEngineShim(suite) }
    }
}

impl std::fmt::Debug for ToolAugmentedFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolAugmentedFeatures").finish()
    }
}

impl FeatureExtractor for ToolAugmentedFeatures {
    fn name(&self) -> &'static str {
        "tool-augmented"
    }

    fn dim(&self) -> usize {
        Self::DIM
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        use vulnman_synth::cwe::Cwe;
        let mut v = vec![0.0; Self::DIM];
        for (id, confidence) in self.engine.0.scan_counts(&sample.source) {
            if let Some(pos) = Cwe::ALL.iter().position(|c| c.id() == id) {
                v[pos] += confidence;
            }
            v[Self::DIM - 1] += confidence;
        }
        v
    }
}

/// Hashed bag-of-words over multimodal artifacts (commit messages, review
/// comments, analyst notes) — the industry-only signal of Gap Observation 4.
#[derive(Debug, Clone)]
pub struct ArtifactTextFeatures {
    dim: usize,
}

impl ArtifactTextFeatures {
    /// Creates an extractor with `dim` hash buckets.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        ArtifactTextFeatures { dim }
    }
}

impl Default for ArtifactTextFeatures {
    fn default() -> Self {
        ArtifactTextFeatures::new(64)
    }
}

impl FeatureExtractor for ArtifactTextFeatures {
    fn name(&self) -> &'static str {
        "artifact-text"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        let text = sample.artifacts.combined_text().to_ascii_lowercase();
        for word in text.split(|c: char| !c.is_ascii_alphanumeric()).filter(|w| !w.is_empty()) {
            v[(hash_str(word) % self.dim as u64) as usize] += 1.0;
        }
        l2_normalize(&mut v);
        v
    }
}

/// Concatenation of several extractors.
pub struct ComposedFeatures {
    parts: Vec<Box<dyn FeatureExtractor>>,
    dim: usize,
}

impl std::fmt::Debug for ComposedFeatures {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComposedFeatures")
            .field("parts", &self.parts.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("dim", &self.dim)
            .finish()
    }
}

impl ComposedFeatures {
    /// Concatenates the given extractors in order.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn FeatureExtractor>>) -> Self {
        assert!(!parts.is_empty(), "at least one extractor required");
        let dim = parts.iter().map(|p| p.dim()).sum();
        ComposedFeatures { parts, dim }
    }
}

impl FeatureExtractor for ComposedFeatures {
    fn name(&self) -> &'static str {
        "composed"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn extract(&self, sample: &Sample) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.dim);
        for p in &self.parts {
            v.extend(p.extract(sample));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_synth::cwe::Cwe;
    use vulnman_synth::generator::SampleGenerator;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::tier::Tier;

    fn samples() -> (Sample, Sample) {
        let mut g = SampleGenerator::new(1, StyleProfile::mainstream());
        g.vulnerable_pair(Cwe::SqlInjection, Tier::Curated, "p")
    }

    #[test]
    fn token_features_have_right_dim_and_norm() {
        let (v, _) = samples();
        let fx = TokenNgramFeatures::new(128);
        let x = fx.extract(&v);
        assert_eq!(x.len(), 128);
        let norm: f64 = x.iter().map(|a| a * a).sum();
        assert!((norm - 1.0).abs() < 1e-9, "should be L2-normalized: {norm}");
    }

    #[test]
    fn token_features_distinguish_pair() {
        let (v, f) = samples();
        let fx = TokenNgramFeatures::default();
        assert_ne!(fx.extract(&v), fx.extract(&f), "sanitizer tokens should differ");
    }

    #[test]
    fn ast_stats_reflect_structure() {
        let (v, _) = samples();
        let fx = AstStatFeatures;
        let x = fx.extract(&v);
        assert_eq!(x.len(), AstStatFeatures::DIM);
        assert!(x[0] > 0.0, "function count present");
    }

    #[test]
    fn expert_features_fire_on_flow() {
        let (v, f) = samples();
        let fx = ExpertFlowFeatures::new();
        let xv = fx.extract(&v);
        let xf = fx.extract(&f);
        // Flow-count dims must be nonzero only on the vulnerable variant.
        assert!(xv[6] > 0.0, "vulnerable sample should have flows");
        assert_eq!(xf[6], 0.0, "fixed sample should have none");
    }

    #[test]
    fn artifact_features_capture_fix_language() {
        let (v, f) = samples();
        let fx = ArtifactTextFeatures::default();
        assert_ne!(fx.extract(&v), fx.extract(&f));
    }

    #[test]
    fn composed_concatenates() {
        let (v, _) = samples();
        let fx = ComposedFeatures::new(vec![
            Box::new(TokenNgramFeatures::new(32)),
            Box::new(AstStatFeatures),
        ]);
        assert_eq!(fx.dim(), 32 + AstStatFeatures::DIM);
        assert_eq!(fx.extract(&v).len(), fx.dim());
    }

    #[test]
    fn extraction_is_deterministic() {
        let (v, _) = samples();
        let fx = TokenNgramFeatures::default();
        assert_eq!(fx.extract(&v), fx.extract(&v));
    }

    #[test]
    fn normalized_tokens_collapse_alpha_renames() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let (v, _) = samples();
        let mut rng = StdRng::seed_from_u64(3);
        let dup_src = vulnman_synth::mutate::near_duplicate(&v.source, &mut rng).unwrap();
        let mut dup = v.clone();
        dup.source = dup_src;
        let raw = TokenNgramFeatures::new(256);
        let norm = NormalizedTokenFeatures::new(256);
        let cos = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let raw_sim = cos(&raw.extract(&v), &raw.extract(&dup));
        let norm_sim = cos(&norm.extract(&v), &norm.extract(&dup));
        assert!(
            norm_sim > raw_sim,
            "normalization should bring duplicates closer: {norm_sim} vs {raw_sim}"
        );
        assert!(norm_sim > 0.9, "near-duplicates nearly collide: {norm_sim}");
    }

    #[test]
    fn hashing_is_stable_fnv() {
        // Pin a value so accidental hasher changes show up.
        assert_eq!(super::hash_str("exec_query") % 256, hash_str("exec_query") % 256);
        assert_ne!(hash_str("a"), hash_str("b"));
    }
}
