//! # vulnman-synth
//!
//! Synthetic vulnerable-code corpus generation for the `vulnman` workspace.
//!
//! The paper's gap studies are all statements about *data*: class imbalance,
//! label noise, synthetic duplication, distribution shift across complexity
//! tiers, team-style divergence, and CWE priority mismatch. This crate makes
//! each of those an explicit, reproducible knob on [`dataset::DatasetBuilder`]
//! and provides:
//!
//! * a catalog of twelve CWE classes with severity/exploitability priors and
//!   public-vs-internal frequency distributions ([`cwe`]),
//! * per-CWE vulnerable/fixed template generators ([`templates`]) in mini-C,
//! * team style profiles that change how the same flaw *looks* ([`style`]),
//! * complexity tiers from textbook snippets to real-world-shaped units
//!   ([`tier`]),
//! * slice-preserving near-duplication and structural fingerprinting
//!   ([`mutate`]),
//! * repair-benchmark task generation ([`repair_tasks`]).
//!
//! ## Quick start
//!
//! ```
//! use vulnman_synth::dataset::DatasetBuilder;
//!
//! // A realistic, imbalanced corpus with noisy labels.
//! let corpus = DatasetBuilder::new(42)
//!     .vulnerable_count(50)
//!     .vulnerable_fraction(0.1)
//!     .label_noise(0.05)
//!     .build();
//! assert_eq!(corpus.vulnerable_count(), 50);
//! assert_eq!(corpus.len(), 500);
//! ```

#![warn(missing_docs)]

pub mod cwe;
pub mod dataset;
pub mod emit;
pub mod generator;
pub mod mutate;
pub mod project;
pub mod repair_tasks;
pub mod sample;
pub mod style;
pub mod templates;
pub mod tier;

pub use cwe::{Cwe, CweDistribution};
pub use dataset::{Dataset, DatasetBuilder};
pub use sample::Sample;
pub use style::StyleProfile;
pub use tier::Tier;
