//! Complexity tiers.
//!
//! The paper's Gap Observation 3 rests on the difference between *curated
//! research benchmarks* and *complex real-world code* (">50% performance
//! drop when applying academic models to more complex datasets"; SWE-bench
//! solve rates in the single digits). Tiers make that axis explicit and
//! controllable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How "real" a generated sample looks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Minimal textbook examples: the vulnerability is the whole function.
    Simple,
    /// Curated benchmark style: some context, mild noise (typical academic
    /// dataset shape).
    Curated,
    /// Real-world style: long functions, distractor logic, helper
    /// indirection, dead code, team idioms.
    RealWorld,
}

impl Tier {
    /// All tiers in ascending complexity order.
    pub const ALL: [Tier; 3] = [Tier::Simple, Tier::Curated, Tier::RealWorld];

    /// Inclusive range of benign padding statements inserted around the
    /// vulnerable core.
    pub fn padding_range(&self) -> (usize, usize) {
        match self {
            Tier::Simple => (0, 1),
            Tier::Curated => (2, 5),
            Tier::RealWorld => (6, 14),
        }
    }

    /// Inclusive range of distractor branches (irrelevant `if`s).
    pub fn distractor_range(&self) -> (usize, usize) {
        match self {
            Tier::Simple => (0, 0),
            Tier::Curated => (0, 1),
            Tier::RealWorld => (1, 3),
        }
    }

    /// Maximum helper-wrapping depth for sources/sinks (interprocedural
    /// distance of the flow).
    pub fn max_wrap_depth(&self) -> usize {
        match self {
            Tier::Simple => 0,
            Tier::Curated => 1,
            Tier::RealWorld => 2,
        }
    }

    /// Inclusive range of extra unrelated benign functions in the unit.
    pub fn extra_fn_range(&self) -> (usize, usize) {
        match self {
            Tier::Simple => (0, 0),
            Tier::Curated => (0, 1),
            Tier::RealWorld => (1, 3),
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Tier::Simple => "simple",
            Tier::Curated => "curated",
            Tier::RealWorld => "real-world",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_complexity() {
        assert!(Tier::Simple < Tier::Curated);
        assert!(Tier::Curated < Tier::RealWorld);
    }

    #[test]
    fn knobs_grow_with_tier() {
        let pads: Vec<usize> = Tier::ALL.iter().map(|t| t.padding_range().1).collect();
        assert!(pads.windows(2).all(|w| w[0] < w[1]));
        let wraps: Vec<usize> = Tier::ALL.iter().map(|t| t.max_wrap_depth()).collect();
        assert!(wraps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn display_names() {
        assert_eq!(Tier::RealWorld.to_string(), "real-world");
    }
}
