//! Whole-sample generation: vulnerable units, their patched twins, benign
//! units, and correlated multimodal artifacts.

use crate::cwe::Cwe;
use crate::emit::{EmitCtx, UnitBuilder};
use crate::sample::{Artifacts, Sample};
use crate::style::StyleProfile;
use crate::templates::{self, TemplatePair};
use crate::tier::Tier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates individual samples under a fixed style/tier context.
///
/// # Examples
///
/// ```
/// use vulnman_synth::{cwe::Cwe, generator::SampleGenerator, style::StyleProfile, tier::Tier};
/// let mut g = SampleGenerator::new(42, StyleProfile::mainstream());
/// let (vuln, fixed) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "proj0");
/// assert!(vuln.label);
/// assert!(!fixed.label);
/// assert!(vulnman_lang::parse(&vuln.source).is_ok());
/// ```
#[derive(Debug)]
pub struct SampleGenerator {
    rng: StdRng,
    style: StyleProfile,
    next_id: u64,
}

impl SampleGenerator {
    /// Creates a generator with a deterministic seed and team style.
    pub fn new(seed: u64, style: StyleProfile) -> Self {
        SampleGenerator { rng: StdRng::seed_from_u64(seed), style, next_id: 0 }
    }

    /// The team style this generator emits.
    pub fn style(&self) -> &StyleProfile {
        &self.style
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Generates a matched (vulnerable, fixed) sample pair.
    pub fn vulnerable_pair(&mut self, cwe: Cwe, tier: Tier, project: &str) -> (Sample, Sample) {
        let pair = {
            let mut ctx = EmitCtx::new(&self.style, tier, &mut self.rng);
            templates::generate(cwe, &mut ctx)
        };
        let TemplatePair { cwe, vulnerable, fixed, target_fn } = pair;
        let vuln_artifacts = self.vulnerable_artifacts(cwe);
        let fixed_artifacts = self.fixed_artifacts(cwe);
        let vuln = Sample {
            id: self.fresh_id(),
            source: vulnerable,
            label: true,
            observed_label: true,
            cwe: Some(cwe),
            target_fn: target_fn.clone(),
            team: self.style.team.clone(),
            project: project.to_string(),
            tier,
            duplicate_of: None,
            artifacts: vuln_artifacts,
        };
        let fixed = Sample {
            id: self.fresh_id(),
            source: fixed,
            label: false,
            observed_label: false,
            cwe: Some(cwe),
            target_fn,
            team: self.style.team.clone(),
            project: project.to_string(),
            tier,
            duplicate_of: None,
            artifacts: fixed_artifacts,
        };
        (vuln, fixed)
    }

    /// Generates a benign sample that *looks* risky: it exercises sources,
    /// sinks, and buffers the way production code does — constant queries,
    /// sanitized flows, bounded copies, checked lookups — without any actual
    /// flaw. Real negative populations are full of such code, and it is what
    /// drives false positives at realistic base rates (Gap 3).
    pub fn benign_risky(&mut self, tier: Tier, project: &str) -> Sample {
        let source = {
            let mut ctx = EmitCtx::new(&self.style, tier, &mut self.rng);
            let name = ctx.func("serve");
            let body = match ctx.rng.gen_range(0..6u8) {
                0 => {
                    // Constant query execution.
                    let q = ctx.var("query");
                    format!(
                        "    char* {q} = \"SELECT id FROM jobs WHERE state = 1\";\n    exec_query({q});\n"
                    )
                }
                1 => {
                    // Properly sanitized user flow.
                    let u = ctx.var("user");
                    let (san, _) = ctx.sanitizer("escape_html");
                    format!(
                        "    char* {u} = http_param(\"display\");\n    render_html({san}({u}));\n"
                    )
                }
                2 => {
                    // Bounded copy loop.
                    let b = ctx.var("buf");
                    let s2 = ctx.var("line");
                    let i = ctx.var("i");
                    format!(
                        "    char {b}[32];\n    char* {s2} = read_input();\n    int {i} = 0;\n    while ({s2}[{i}] != '\\0' && {i} < 31) {{\n        {b}[{i}] = {s2}[{i}];\n        {i}++;\n    }}\n    {b}[{i}] = '\\0';\n    consume({b});\n"
                    )
                }
                3 => {
                    // Null-checked lookup use.
                    let e = ctx.var("entry");
                    format!(
                        "    char* {e} = find_entry(7);\n    if ({e} == 0) {{\n        return;\n    }}\n    {e}[0] = 'B';\n"
                    )
                }
                4 => {
                    // Range-checked external index.
                    let tbl = ctx.var("table");
                    let i = ctx.var("slot");
                    format!(
                        "    int {tbl}[16];\n    init_table({tbl}, 16);\n    int {i} = to_int(http_param(\"slot\"));\n    if ({i} < 0 || {i} >= 16) {{\n        return;\n    }}\n    record_metric(\"slot\", {tbl}[{i}]);\n"
                    )
                }
                _ => {
                    // Constant shell command + disciplined alloc/free.
                    let pbuf = ctx.var("scratch");
                    format!(
                        "    system(\"ls /var/spool/exports\");\n    char* {pbuf} = alloc_buffer(64);\n    fill_data({pbuf}, 64);\n    send_data({pbuf}, 64);\n    free_mem({pbuf});\n"
                    )
                }
            };
            let n_pad = ctx.in_range(tier.padding_range()) / 2;
            let pad = ctx.padding(n_pad, 1);
            format!("void {name}() {{\n{pad}{body}}}\n")
        };
        let target_fn = first_fn_name(&source);
        let artifacts = self.benign_artifacts();
        Sample {
            id: self.fresh_id(),
            source,
            label: false,
            observed_label: false,
            cwe: None,
            target_fn,
            team: self.style.team.clone(),
            project: project.to_string(),
            tier,
            duplicate_of: None,
            artifacts,
        }
    }

    /// Generates a purely benign sample (no vulnerability pattern at all).
    pub fn benign(&mut self, tier: Tier, project: &str) -> Sample {
        let source = {
            let mut ctx = EmitCtx::new(&self.style, tier, &mut self.rng);
            let n = 1 + ctx.in_range(tier.extra_fn_range());
            let mut unit = UnitBuilder::new();
            for _ in 0..n {
                unit.push_fn(ctx.benign_fn());
            }
            unit.build()
        };
        let target_fn = first_fn_name(&source);
        let artifacts = self.benign_artifacts();
        Sample {
            id: self.fresh_id(),
            source,
            label: false,
            observed_label: false,
            cwe: None,
            target_fn,
            team: self.style.team.clone(),
            project: project.to_string(),
            tier,
            duplicate_of: None,
            artifacts,
        }
    }

    // ----- artifact synthesis ----------------------------------------------
    //
    // Commit messages / review comments correlate with the label the way
    // real histories do: patched code descends from fix commits, vulnerable
    // code from feature commits (sometimes with an unheeded review warning).
    // This correlation is what gives multimodal features their lift (E11).

    fn vulnerable_artifacts(&mut self, cwe: Cwe) -> Artifacts {
        const FEATURE_MSGS: [&str; 5] = [
            "add handler for new endpoint",
            "implement batch processing path",
            "wire up service integration",
            "initial version of lookup flow",
            "port legacy routine",
        ];
        // Some vulnerable states descend from unrelated fix commits — the
        // label/artifact correlation in real history is noisy.
        const CONFUSER_MSGS: [&str; 2] =
            ["fix: handle empty payload correctly", "fix flaky retry logic"];
        let commit_message = if self.rng.gen_bool(0.25) {
            CONFUSER_MSGS[self.rng.gen_range(0..CONFUSER_MSGS.len())].to_string()
        } else {
            FEATURE_MSGS[self.rng.gen_range(0..FEATURE_MSGS.len())].to_string()
        };
        let review_comment = if self.rng.gen_bool(0.2) {
            Some(
                match cwe {
                    Cwe::SqlInjection => "is this query input escaped anywhere?",
                    Cwe::OutOfBoundsWrite | Cwe::OutOfBoundsRead => {
                        "do we know the index stays in range here?"
                    }
                    Cwe::HardcodedCredentials => "should this constant live in the secret store?",
                    _ => "not sure about the error handling here, please double check",
                }
                .to_string(),
            )
        } else if self.rng.gen_bool(0.5) {
            Some("lgtm".to_string())
        } else {
            None
        };
        let analyst_note =
            if self.rng.gen_bool(0.1) { Some("pending security triage".to_string()) } else { None };
        Artifacts { commit_message, review_comment, analyst_note }
    }

    fn fixed_artifacts(&mut self, cwe: Cwe) -> Artifacts {
        let fix_word = match cwe {
            Cwe::SqlInjection => "escape query parameter before execution",
            Cwe::CommandInjection => "sanitize host argument passed to shell",
            Cwe::CrossSiteScripting => "escape user content in rendered page",
            Cwe::PathTraversal => "normalize path before open",
            Cwe::FormatString => "use constant format string",
            Cwe::OutOfBoundsWrite => "bound copy loop to buffer size",
            Cwe::OutOfBoundsRead => "validate index before table read",
            Cwe::UseAfterFree => "move free after last use",
            Cwe::IntegerOverflow => "range-check count before size multiply",
            Cwe::NullDereference => "handle missing entry before write",
            Cwe::HardcodedCredentials => "load key from secret store",
            Cwe::RaceCondition => "open atomically instead of check-then-open",
            Cwe::UninitializedUse => "initialize status before conditional path",
            Cwe::DivideByZero => "guard divisor against zero stride",
            Cwe::DoubleFree => "return after error-path release",
            Cwe::IntegerTruncation => "clamp value before narrowing store",
            Cwe::Toctou => "drop stale existence check for atomic open",
        };
        // A good fraction of patched states carry mundane messages — the
        // security fix landed earlier or was folded into a refactor.
        if self.rng.gen_bool(0.35) {
            return self.benign_artifacts();
        }
        let prefix = ["fix: ", "security: ", ""][self.rng.gen_range(0..3)];
        Artifacts {
            commit_message: format!("{prefix}{fix_word}"),
            review_comment: match self.rng.gen_range(0..10u8) {
                0 | 1 => Some("thanks, safer now".to_string()),
                2..=5 => Some("lgtm".to_string()),
                _ => None,
            },
            analyst_note: if self.rng.gen_bool(0.4) {
                Some(format!("verified remediation of {cwe}"))
            } else {
                None
            },
        }
    }

    fn benign_artifacts(&mut self) -> Artifacts {
        // Benign code descends from feature commits just as often as
        // vulnerable code does — commit vocabulary overlaps across classes.
        const MSGS: [&str; 12] = [
            "refactor helper naming",
            "add metrics to hot path",
            "simplify loop structure",
            "update logging format",
            "extract utility function",
            "fix: correct off-by-one in pagination copy", // non-security fixes
            "fix typo in error message",
            "add handler for new endpoint",
            "implement batch processing path",
            "wire up service integration",
            "initial version of lookup flow",
            "port legacy routine",
        ];
        Artifacts {
            commit_message: MSGS[self.rng.gen_range(0..MSGS.len())].to_string(),
            review_comment: match self.rng.gen_range(0..10u8) {
                0..=2 => Some("lgtm".to_string()),
                3 => Some("please rename this for clarity".to_string()),
                4 => {
                    Some("not sure about the error handling here, please double check".to_string())
                }
                _ => None,
            },
            analyst_note: None,
        }
    }
}

/// Extracts the first function name from a unit (cheap textual scan used for
/// benign samples, where any function is representative).
fn first_fn_name(source: &str) -> String {
    vulnman_lang::parse(source)
        .ok()
        .and_then(|p| p.functions.first().map(|f| f.name.to_string()))
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_lang::parse;

    #[test]
    fn pair_labels_and_parseability() {
        let mut g = SampleGenerator::new(1, StyleProfile::mainstream());
        for cwe in Cwe::ALL {
            let (v, f) = g.vulnerable_pair(cwe, Tier::Curated, "p0");
            assert!(v.label && !f.label);
            assert_eq!(v.cwe, Some(cwe));
            parse(&v.source).unwrap();
            parse(&f.source).unwrap();
            assert_ne!(v.id, f.id);
        }
    }

    #[test]
    fn benign_samples_parse_and_are_unlabeled() {
        let mut g = SampleGenerator::new(2, StyleProfile::internal_teams()[0].clone());
        for tier in Tier::ALL {
            let b = g.benign(tier, "p1");
            assert!(!b.label);
            assert!(b.cwe.is_none());
            parse(&b.source).unwrap();
            assert_ne!(b.target_fn, "unknown");
        }
    }

    #[test]
    fn fixed_commit_messages_mention_remediation() {
        let mut g = SampleGenerator::new(3, StyleProfile::mainstream());
        let (_, f) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Simple, "p0");
        assert!(f.artifacts.commit_message.contains("escape"));
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut g = SampleGenerator::new(seed, StyleProfile::mainstream());
            let (v, _) = g.vulnerable_pair(Cwe::PathTraversal, Tier::RealWorld, "p0");
            v.source
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn ids_are_unique_across_kinds() {
        let mut g = SampleGenerator::new(4, StyleProfile::mainstream());
        let mut ids = std::collections::HashSet::new();
        for _ in 0..10 {
            let (v, f) = g.vulnerable_pair(Cwe::UseAfterFree, Tier::Simple, "p0");
            let b = g.benign(Tier::Simple, "p0");
            assert!(ids.insert(v.id));
            assert!(ids.insert(f.id));
            assert!(ids.insert(b.id));
        }
    }
}
