//! Labeled samples and their multimodal artifacts.

use crate::cwe::Cwe;
use crate::tier::Tier;
use serde::{Deserialize, Serialize};

/// Side-channel artifacts accompanying a code sample — the "multimodal
/// information" of Gap Observation 4 (commit messages, review comments,
/// analyst notes) that industry datasets have and scraped corpora lack.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Artifacts {
    /// Message of the commit that introduced this code state.
    pub commit_message: String,
    /// A code-review comment left on the change, if any.
    pub review_comment: Option<String>,
    /// Security-analyst triage note, if the sample went through manual
    /// review (industry-only signal).
    pub analyst_note: Option<String>,
}

impl Artifacts {
    /// Concatenated text of all artifacts (for feature extraction).
    pub fn combined_text(&self) -> String {
        let mut s = self.commit_message.clone();
        if let Some(r) = &self.review_comment {
            s.push(' ');
            s.push_str(r);
        }
        if let Some(a) = &self.analyst_note {
            s.push(' ');
            s.push_str(a);
        }
        s
    }
}

/// A labeled code sample: one translation unit focused on one target
/// function, plus provenance and artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Unique id within its corpus.
    pub id: u64,
    /// Source text of the translation unit.
    pub source: String,
    /// Ground-truth label: does the target function contain a vulnerability?
    pub label: bool,
    /// The label as *recorded in the dataset* — may differ from `label`
    /// when label noise is injected (Gap Observation 4: "up to 70% of
    /// labels in OSS repositories are inaccurate").
    pub observed_label: bool,
    /// Vulnerability class, when `label` is true.
    pub cwe: Option<Cwe>,
    /// Name of the function of interest.
    pub target_fn: String,
    /// Owning team (style profile name).
    pub team: String,
    /// Owning project identifier (diversity axis).
    pub project: String,
    /// Complexity tier.
    pub tier: Tier,
    /// If this sample is a synthetic near-duplicate, the id of its original.
    pub duplicate_of: Option<u64>,
    /// Multimodal artifacts.
    pub artifacts: Artifacts,
}

impl Sample {
    /// Returns `true` if the recorded label is wrong.
    pub fn is_mislabeled(&self) -> bool {
        self.label != self.observed_label
    }

    /// Returns `true` if this sample is a synthetic near-duplicate.
    pub fn is_duplicate(&self) -> bool {
        self.duplicate_of.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sample {
        Sample {
            id: 1,
            source: "void f() {\n}\n".into(),
            label: true,
            observed_label: true,
            cwe: Some(Cwe::SqlInjection),
            target_fn: "f".into(),
            team: "t".into(),
            project: "p0".into(),
            tier: Tier::Simple,
            duplicate_of: None,
            artifacts: Artifacts::default(),
        }
    }

    #[test]
    fn mislabeled_detection() {
        let mut s = sample();
        assert!(!s.is_mislabeled());
        s.observed_label = false;
        assert!(s.is_mislabeled());
    }

    #[test]
    fn combined_text_joins_present_parts() {
        let a = Artifacts {
            commit_message: "fix overflow".into(),
            review_comment: Some("add bounds check".into()),
            analyst_note: None,
        };
        assert_eq!(a.combined_text(), "fix overflow add bounds check");
    }

    #[test]
    fn serde_roundtrip() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
