//! Project-scale code generation: multiple translation units with
//! cross-unit call edges.
//!
//! Gap Observation 3 doubts academic models' "untested performance on
//! extensive and diverse industry codebases". Single translation units are
//! the unit of most research datasets; industrial vulnerabilities routinely
//! span files — a source helper in one unit feeding a sink in another.
//! [`generate_project`] builds such projects so analysis strategies can be
//! compared at scale (per-unit scanning vs whole-project analysis, E20).

use crate::cwe::Cwe;
use crate::emit::{EmitCtx, UnitBuilder};
use crate::style::StyleProfile;
use crate::tier::Tier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One translation unit (a "file") of a project.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProjectUnit {
    /// File-like name, e.g. `src/unit_3.c`.
    pub name: String,
    /// Source text.
    pub source: String,
}

/// A multi-unit project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Project name.
    pub name: String,
    /// Units in stable order.
    pub units: Vec<ProjectUnit>,
    /// Ground truth: does the project contain a vulnerability?
    pub vulnerable: bool,
    /// Whether the flaw spans units (source helper and sink in different
    /// files). `false` for intra-unit flaws and clean projects.
    pub cross_unit: bool,
    /// Class of the planted flaw, when vulnerable.
    pub cwe: Option<Cwe>,
}

impl Project {
    /// The whole program: all units concatenated (what a whole-project
    /// analysis parses).
    pub fn whole_source(&self) -> String {
        self.units.iter().map(|u| u.source.as_str()).collect::<Vec<_>>().join("\n")
    }

    /// Total source bytes across units.
    pub fn total_bytes(&self) -> usize {
        self.units.iter().map(|u| u.source.len()).sum()
    }
}

/// What kind of flaw (if any) to plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProjectFlaw {
    /// No flaw: all units benign.
    Clean,
    /// Classic single-unit flaw (plus benign neighbour units).
    IntraUnit(Cwe),
    /// Source helper in one unit, sink call in another: invisible to
    /// per-unit analysis.
    CrossUnit(Cwe),
}

/// Generates a project of `n_units` translation units.
///
/// Cross-unit flaws only support the taint-style classes (the flow is the
/// cross-unit artifact); other classes fall back to intra-unit planting.
///
/// # Panics
///
/// Panics if `n_units == 0`.
pub fn generate_project(
    seed: u64,
    style: &StyleProfile,
    n_units: usize,
    flaw: ProjectFlaw,
) -> Project {
    assert!(n_units > 0, "a project needs at least one unit");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut units: Vec<ProjectUnit> = Vec::with_capacity(n_units);

    // Benign filler units.
    for i in 0..n_units {
        let mut ctx = EmitCtx::new(style, Tier::Curated, &mut rng);
        let mut unit = UnitBuilder::new();
        let fns = 1 + ctx.in_range((0, 2));
        for _ in 0..fns {
            unit.push_fn(ctx.benign_fn());
        }
        units.push(ProjectUnit { name: format!("src/unit_{i}.c"), source: unit.build() });
    }

    // Benign cross-unit wiring: with the team's `cross_file_call_prob`, a
    // unit gains a bridge function calling into a sibling unit, so the
    // corpus graph sees cross-file edges even in clean projects.
    if n_units > 1 {
        let unit_fns: Vec<Vec<String>> = units
            .iter()
            .map(|u| {
                let prog = vulnman_lang::parse(&u.source).expect("generated unit parses");
                prog.functions.iter().map(|f| f.name.to_string()).collect()
            })
            .collect();
        #[allow(clippy::needless_range_loop)] // i names the bridge while units[i] is mutated
        for i in 0..n_units {
            if !rng.gen_bool(style.cross_file_call_prob) {
                continue;
            }
            let mut j = rng.gen_range(0..n_units);
            if j == i {
                j = (j + 1) % n_units;
            }
            let callee = &unit_fns[j][rng.gen_range(0..unit_fns[j].len())];
            units[i]
                .source
                .push_str(&format!("\nvoid bridge_{callee}_u{i}() {{\n    {callee}();\n}}\n"));
        }
    }

    let (vulnerable, cross_unit, cwe) = match flaw {
        ProjectFlaw::Clean => (false, false, None),
        ProjectFlaw::IntraUnit(cwe) => {
            let mut ctx = EmitCtx::new(style, Tier::Curated, &mut rng);
            let pair = crate::templates::generate(cwe, &mut ctx);
            let slot = rng.gen_range(0..n_units);
            units[slot].source.push('\n');
            units[slot].source.push_str(&pair.vulnerable);
            (true, false, Some(cwe))
        }
        ProjectFlaw::CrossUnit(cwe) => {
            let (source_call, sink_fn, kind) = match cwe {
                Cwe::SqlInjection => ("http_param(\"account\")", "exec_query", "query"),
                Cwe::CommandInjection => ("read_input()", "system", "job"),
                Cwe::CrossSiteScripting => ("get_request_field(\"bio\")", "render_html", "page"),
                Cwe::PathTraversal => ("http_param(\"file\")", "open_file", "path"),
                _ => {
                    // Non-taint classes cannot span units; plant intra-unit.
                    return generate_project(
                        seed.wrapping_add(1),
                        style,
                        n_units,
                        ProjectFlaw::IntraUnit(cwe),
                    );
                }
            };
            let helper = format!("project_fetch_{kind}_{seed}");
            let handler = format!("project_handle_{kind}_{seed}");
            let src_slot = rng.gen_range(0..n_units);
            let mut sink_slot = rng.gen_range(0..n_units);
            if n_units > 1 {
                while sink_slot == src_slot {
                    sink_slot = rng.gen_range(0..n_units);
                }
            }
            units[src_slot]
                .source
                .push_str(&format!("\nchar* {helper}() {{\n    return {source_call};\n}}\n"));
            units[sink_slot].source.push_str(&format!(
                "\nvoid {handler}() {{\n    char* v = {helper}();\n    {sink_fn}(v);\n}}\n"
            ));
            (true, n_units > 1, Some(cwe))
        }
    };

    Project { name: format!("proj_{seed}"), units, vulnerable, cross_unit, cwe }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_lang::taint::{TaintAnalysis, TaintConfig};

    #[test]
    fn units_and_whole_program_parse() {
        for flaw in [
            ProjectFlaw::Clean,
            ProjectFlaw::IntraUnit(Cwe::UseAfterFree),
            ProjectFlaw::CrossUnit(Cwe::SqlInjection),
        ] {
            let p = generate_project(3, &StyleProfile::mainstream(), 4, flaw);
            assert_eq!(p.units.len(), 4);
            for u in &p.units {
                vulnman_lang::parse(&u.source)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", u.name, u.source));
            }
            vulnman_lang::parse(&p.whole_source()).expect("whole program parses");
        }
    }

    #[test]
    fn cross_unit_flow_needs_whole_project_analysis() {
        let p = generate_project(
            7,
            &StyleProfile::mainstream(),
            5,
            ProjectFlaw::CrossUnit(Cwe::SqlInjection),
        );
        assert!(p.cross_unit);
        let config = TaintConfig::default_config();
        // Per-unit: no single unit shows the flow.
        let per_unit_hit = p.units.iter().any(|u| {
            let prog = vulnman_lang::parse(&u.source).expect("unit parses");
            !TaintAnalysis::run(&prog, &config).findings.is_empty()
        });
        assert!(!per_unit_hit, "no unit contains the whole flow");
        // Whole project: the flow is visible.
        let whole = vulnman_lang::parse(&p.whole_source()).expect("parses");
        assert!(!TaintAnalysis::run(&whole, &config).findings.is_empty());
    }

    #[test]
    fn clean_projects_are_clean_everywhere() {
        let p = generate_project(9, &StyleProfile::mainstream(), 3, ProjectFlaw::Clean);
        assert!(!p.vulnerable && p.cwe.is_none());
        let config = TaintConfig::default_config();
        let whole = vulnman_lang::parse(&p.whole_source()).expect("parses");
        assert!(TaintAnalysis::run(&whole, &config).findings.is_empty());
    }

    #[test]
    fn non_taint_cross_unit_falls_back_to_intra() {
        let p = generate_project(
            11,
            &StyleProfile::mainstream(),
            3,
            ProjectFlaw::CrossUnit(Cwe::UseAfterFree),
        );
        assert!(p.vulnerable);
        assert!(!p.cross_unit, "UAF cannot span units; planted intra-unit");
    }

    #[test]
    fn single_unit_cross_request_stays_in_unit() {
        let p = generate_project(
            13,
            &StyleProfile::mainstream(),
            1,
            ProjectFlaw::CrossUnit(Cwe::SqlInjection),
        );
        assert!(p.vulnerable);
        assert!(!p.cross_unit, "one unit cannot span units");
    }

    #[test]
    fn deterministic() {
        let a = generate_project(5, &StyleProfile::mainstream(), 4, ProjectFlaw::Clean);
        let b = generate_project(5, &StyleProfile::mainstream(), 4, ProjectFlaw::Clean);
        assert_eq!(a, b);
    }
}
