//! Logic/configuration templates: hard-coded credentials and TOCTOU races.
//!
//! These classes rank low in the public CWE Top-25 yet dominate internal
//! enterprise backlogs (see [`crate::cwe::CweDistribution::internal_backend`]),
//! which is exactly the priority mismatch of Gap Observation 1.

use super::{Scaffold, TemplatePair};
use crate::cwe::Cwe;
use crate::emit::EmitCtx;
use rand::Rng;

const SECRET_LITERALS: [&str; 6] = [
    "sk_live_9aF3xQ81LmZz",
    "AKIA4XP7Q2MEXAMPLE",
    "ghp_Zt8s1WqYv42aa0Bc",
    "hunter2supersecret",
    "pg_pass_Xy77Qa21",
    "tok_9f8e7d6c5b4a",
];

/// CWE-798: a secret embedded as a string literal. The fix loads it from the
/// secret store at runtime.
pub fn hardcoded_credentials<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let secret = SECRET_LITERALS[ctx.rng.gen_range(0..SECRET_LITERALS.len())];
    let key_var = ctx.var("key");
    let conn = ctx.var("conn");
    let target_fn = ctx.func("connect");
    let service = ["billing", "storage", "auth", "search"][ctx.rng.gen_range(0..4)];
    let auth_fns = ["connect_service", "authenticate", "open_session"];
    let auth_fn = auth_fns[ctx.rng.gen_range(0..auth_fns.len())];

    let core_vuln = format!(
        "    char* {key_var} = \"{secret}\";\n    int {conn} = {auth_fn}(\"{service}\", {key_var});\n    if ({conn} < 0) {{\n        log_event(\"auth failed\");\n    }}\n"
    );
    let core_fixed = format!(
        "    char* {key_var} = load_secret(\"{service}_api_key\");\n    int {conn} = {auth_fn}(\"{service}\", {key_var});\n    if ({conn} < 0) {{\n        log_event(\"auth failed\");\n    }}\n"
    );

    let scaffold = Scaffold::sample(ctx, "the service connection");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::HardcodedCredentials, vulnerable, fixed, target_fn }
}

/// CWE-362 (TOCTOU): existence check followed by a separate open. The fix
/// opens atomically and checks the handle instead.
pub fn race_condition<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let path = ctx.var("path");
    let fd = ctx.var("fd");
    let target_fn = ctx.func("probe");
    let dirs = ["/var/spool/jobs/", "/run/locks/", "/srv/queue/"];
    let dir = dirs[ctx.rng.gen_range(0..dirs.len())];
    let file = ["current", "next", "state"][ctx.rng.gen_range(0..3)];

    let core_vuln = format!(
        "    char* {path} = concat(\"{dir}\", \"{file}\");\n    if (file_exists({path})) {{\n        int {fd} = open_file({path});\n        read_all({fd});\n        close_file({fd});\n    }}\n"
    );
    let core_fixed = format!(
        "    char* {path} = concat(\"{dir}\", \"{file}\");\n    int {fd} = open_file_atomic({path});\n    if ({fd} >= 0) {{\n        read_all({fd});\n        close_file({fd});\n    }}\n"
    );

    let scaffold = Scaffold::sample(ctx, "the spool reader");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::RaceCondition, vulnerable, fixed, target_fn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::StyleProfile;
    use crate::tier::Tier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;

    fn pair_for(seed: u64, f: fn(&mut EmitCtx<'_, StdRng>) -> TemplatePair) -> TemplatePair {
        let style = StyleProfile::mainstream();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
        f(&mut ctx)
    }

    #[test]
    fn credentials_vulnerable_embeds_secret_literal() {
        let pair = pair_for(1, hardcoded_credentials);
        parse(&pair.vulnerable).unwrap();
        parse(&pair.fixed).unwrap();
        assert!(SECRET_LITERALS.iter().any(|s| pair.vulnerable.contains(s)));
        assert!(SECRET_LITERALS.iter().all(|s| !pair.fixed.contains(s)));
        assert!(pair.fixed.contains("load_secret"));
    }

    #[test]
    fn race_vulnerable_has_check_then_open() {
        let pair = pair_for(2, race_condition);
        parse(&pair.vulnerable).unwrap();
        parse(&pair.fixed).unwrap();
        assert!(pair.vulnerable.contains("file_exists"));
        assert!(pair.vulnerable.contains("open_file("));
        assert!(!pair.fixed.contains("file_exists"));
        assert!(pair.fixed.contains("open_file_atomic"));
    }

    #[test]
    fn note_toctou_path_is_not_tainted() {
        // The race template must not accidentally create a path-traversal
        // taint flow (its path comes from constants, not attacker data).
        use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
        for seed in 0..10 {
            let pair = pair_for(seed, race_condition);
            let p = parse(&pair.vulnerable).unwrap();
            let t = TaintAnalysis::run(&p, &TaintConfig::default_config());
            assert!(t.findings.is_empty(), "{:?}", t.findings);
        }
    }
}
