//! Taint-style injection templates: SQL injection, command injection, XSS,
//! path traversal, and format string.

use super::{Scaffold, TemplatePair};
use crate::cwe::Cwe;
use crate::emit::EmitCtx;
use rand::Rng;

/// Parameters describing a source→sink injection family.
struct InjectionSpec {
    cwe: Cwe,
    /// Candidate source expressions (attacker-controlled data producers).
    sources: &'static [&'static str],
    /// Candidate sink function names (single `char*` argument).
    sinks: &'static [&'static str],
    /// Canonical sanitizer whose application constitutes the fix.
    sanitizer: &'static str,
    /// Static prefix concatenated before the tainted value (flavor text).
    prefixes: &'static [&'static str],
    /// Doc topic for the target function.
    topic: &'static str,
}

fn generate_injection<R: Rng>(ctx: &mut EmitCtx<'_, R>, spec: &InjectionSpec) -> TemplatePair {
    let source_expr = spec.sources[ctx.rng.gen_range(0..spec.sources.len())];
    let sink_fn = spec.sinks[ctx.rng.gen_range(0..spec.sinks.len())];
    let prefix = spec.prefixes[ctx.rng.gen_range(0..spec.prefixes.len())];

    let (mut helpers, src_call) = ctx.wrap_source(source_expr);
    let (sink_helpers, sink_name) = ctx.wrap_sink(sink_fn);
    helpers.extend(sink_helpers);
    let (san_call, san_def) = ctx.sanitizer(spec.sanitizer);
    let helpers_fixed: Vec<String> = san_def.into_iter().collect();

    let raw = ctx.var("raw");
    let msg = ctx.var("payload");
    let target_fn = ctx.func("handle");
    let use_concat = ctx.rng.gen_bool(0.7);

    let core_vuln = if use_concat {
        format!(
            "    char* {raw} = {src_call};\n    char* {msg} = concat(\"{prefix}\", {raw});\n    {sink_name}({msg});\n"
        )
    } else {
        format!("    char* {raw} = {src_call};\n    {sink_name}({raw});\n")
    };
    let clean = ctx.var("clean");
    let core_fixed = if use_concat {
        format!(
            "    char* {raw} = {src_call};\n    char* {clean} = {san_call}({raw});\n    char* {msg} = concat(\"{prefix}\", {clean});\n    {sink_name}({msg});\n"
        )
    } else {
        format!(
            "    char* {raw} = {src_call};\n    char* {clean} = {san_call}({raw});\n    {sink_name}({clean});\n"
        )
    };

    let scaffold = Scaffold::sample(ctx, spec.topic);
    let (vulnerable, fixed) = scaffold.assemble(
        &helpers,
        &helpers_fixed,
        &format!("void {target_fn}()"),
        &core_vuln,
        &core_fixed,
    );
    TemplatePair { cwe: spec.cwe, vulnerable, fixed, target_fn }
}

/// CWE-89: attacker data concatenated into a query string.
pub fn sql_injection<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    generate_injection(
        ctx,
        &InjectionSpec {
            cwe: Cwe::SqlInjection,
            sources: &["http_param(\"id\")", "get_request_field(\"user\")", "read_input()"],
            sinks: &["exec_query", "sql_execute"],
            sanitizer: "escape_sql",
            prefixes: &[
                "SELECT * FROM users WHERE id = ",
                "DELETE FROM sessions WHERE token = ",
                "UPDATE accounts SET plan = ",
            ],
            topic: "the account lookup query",
        },
    )
}

/// CWE-78: attacker data reaching a shell execution primitive.
pub fn command_injection<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    generate_injection(
        ctx,
        &InjectionSpec {
            cwe: Cwe::CommandInjection,
            sources: &["read_input()", "getenv(\"TARGET_HOST\")", "http_param(\"host\")"],
            sinks: &["system", "exec_shell", "popen"],
            sanitizer: "escape_shell",
            prefixes: &["ping -c 1 ", "convert -resize 80x80 ", "tar -xf "],
            topic: "the diagnostics command",
        },
    )
}

/// CWE-79: attacker data rendered into an HTML response.
pub fn cross_site_scripting<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    generate_injection(
        ctx,
        &InjectionSpec {
            cwe: Cwe::CrossSiteScripting,
            sources: &["http_param(\"name\")", "get_request_field(\"bio\")", "deserialize()"],
            sinks: &["render_html", "write_response"],
            sanitizer: "escape_html",
            prefixes: &["<div class=profile>", "<span>Welcome ", "<td>"],
            topic: "the profile page fragment",
        },
    )
}

/// CWE-22: attacker data used as a filesystem path.
pub fn path_traversal<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    generate_injection(
        ctx,
        &InjectionSpec {
            cwe: Cwe::PathTraversal,
            sources: &["http_param(\"file\")", "get_request_field(\"attachment\")", "read_input()"],
            sinks: &["open_file", "fopen_path"],
            sanitizer: "sanitize_path",
            prefixes: &["/var/data/uploads/", "/srv/static/", "/tmp/export/"],
            topic: "the download handler",
        },
    )
}

/// CWE-134: attacker data used as a format string. The fix passes a constant
/// format and moves the data to an argument position, so no sanitizer is
/// involved — the patched shape itself is the fix.
pub fn format_string<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let sources = ["read_input()", "http_param(\"msg\")", "getenv(\"BANNER\")"];
    let source_expr = sources[ctx.rng.gen_range(0..sources.len())];
    let (helpers, src_call) = ctx.wrap_source(source_expr);

    let raw = ctx.var("text");
    let target_fn = ctx.func("render");
    let core_vuln = format!("    char* {raw} = {src_call};\n    printf_fmt({raw});\n");
    let core_fixed = format!("    char* {raw} = {src_call};\n    printf_fmt(\"%s\", {raw});\n");

    let scaffold = Scaffold::sample(ctx, "the status banner");
    let (vulnerable, fixed) =
        scaffold.assemble(&helpers, &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::FormatString, vulnerable, fixed, target_fn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::StyleProfile;
    use crate::tier::Tier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;
    use vulnman_lang::taint::{TaintAnalysis, TaintConfig};

    fn pair_for(seed: u64, f: fn(&mut EmitCtx<'_, StdRng>) -> TemplatePair) -> TemplatePair {
        let style = StyleProfile::mainstream();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        f(&mut ctx)
    }

    #[test]
    fn sql_injection_has_sql_kind_finding() {
        let pair = pair_for(3, sql_injection);
        let p = parse(&pair.vulnerable).unwrap();
        let t = TaintAnalysis::run(&p, &TaintConfig::default_config());
        assert!(t.findings.iter().any(|f| f.sink_kind == "sql"), "{:?}", t.findings);
    }

    #[test]
    fn command_injection_kind() {
        let pair = pair_for(4, command_injection);
        let p = parse(&pair.vulnerable).unwrap();
        let t = TaintAnalysis::run(&p, &TaintConfig::default_config());
        assert!(t.findings.iter().any(|f| f.sink_kind == "command"));
    }

    #[test]
    fn xss_kind() {
        let pair = pair_for(5, cross_site_scripting);
        let p = parse(&pair.vulnerable).unwrap();
        let t = TaintAnalysis::run(&p, &TaintConfig::default_config());
        assert!(t.findings.iter().any(|f| f.sink_kind == "xss"));
    }

    #[test]
    fn path_traversal_kind() {
        let pair = pair_for(6, path_traversal);
        let p = parse(&pair.vulnerable).unwrap();
        let t = TaintAnalysis::run(&p, &TaintConfig::default_config());
        assert!(t.findings.iter().any(|f| f.sink_kind == "path"));
    }

    #[test]
    fn format_string_fix_moves_data_out_of_position_zero() {
        let pair = pair_for(7, format_string);
        let cfg = TaintConfig::default_config();
        let pv = parse(&pair.vulnerable).unwrap();
        let pf = parse(&pair.fixed).unwrap();
        assert!(TaintAnalysis::run(&pv, &cfg).findings.iter().any(|f| f.sink_kind == "format"));
        assert!(TaintAnalysis::run(&pf, &cfg).findings.is_empty());
        assert!(pair.fixed.contains("\"%s\""));
    }

    #[test]
    fn alias_team_fix_requires_customized_tooling() {
        let style = StyleProfile::internal_teams()[1].clone();
        let mut rng = StdRng::seed_from_u64(11);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        let pair = sql_injection(&mut ctx);
        assert!(pair.fixed.contains("mi_clean_sql"), "{}", pair.fixed);
        assert!(
            !pair.fixed.contains("escape_sql"),
            "canonical sanitizer must not leak into the unit:\n{}",
            pair.fixed
        );
        let p = parse(&pair.fixed).unwrap();
        // A generic (uncustomized) tool false-positives on the team's fix…
        let generic = TaintAnalysis::run(&p, &TaintConfig::default_config());
        assert!(!generic.findings.is_empty(), "generic tooling cannot see the wrapper");
        // …while a team-customized config accepts it (Gap Observation 2).
        let mut team = TaintConfig::default_config();
        team.add_sanitizer("mi_clean_sql");
        let customized = TaintAnalysis::run(&p, &team);
        assert!(customized.findings.is_empty(), "{:?}", customized.findings);
    }
}
