//! Semantic-gap templates: bugs that only a value-flow analysis can see.
//!
//! Every family here is deliberately *invisible* to the rule-based detector
//! suite: no `to_int(...)` external-input wrapper, no unbounded copy loop,
//! no `find_entry`-style maybe-null lookup. The flaw is carried entirely by
//! constant value flow — a provably out-of-range index, a literal null
//! merging into a dereference, a read of a conditionally-assigned variable,
//! a divisor that arithmetic forces to zero — so the abstract-interpretation
//! checkers in `vulnman-analysis` detect them while the pattern rules stay
//! blind. They measure the rule-vs-semantic gap the same way the taint
//! templates measure the source/sink customization gap.

use super::{Scaffold, TemplatePair};
use crate::cwe::Cwe;
use crate::emit::EmitCtx;
use rand::Rng;

/// CWE-787/125: a constant-flow index provably outside a fixed-size local
/// array. `write` picks the store (787) or load (125) variant. The fix
/// clamps the index to the last slot, which interval branch refinement
/// proves safe.
pub fn constant_index_oob<R: Rng>(ctx: &mut EmitCtx<'_, R>, write: bool) -> TemplatePair {
    let len = [4usize, 8, 16][ctx.rng.gen_range(0..3)];
    let buf = ctx.var("slots");
    let idx = ctx.var("pos");
    let out = ctx.var("value");
    let target_fn = ctx.func(if write { "store" } else { "fetch" });
    // pos = base * scale + off with base chosen so the product already
    // clears the array length: provably out of bounds on every path.
    let scale = ctx.rng.gen_range(2..=4) as usize;
    let base = len / scale + 1;
    let off = ctx.rng.gen_range(0..=2) as usize;
    let fill = ctx.rng.gen_range(1..100);

    let access_vuln = if write {
        format!("    {buf}[{idx}] = {fill};\n    consume_table({buf}, {len});\n")
    } else {
        format!("    int {out} = {buf}[{idx}];\n    record_metric(\"slot\", {out});\n")
    };
    let prologue = format!(
        "    int {buf}[{len}];\n    init_table({buf}, {len});\n    int {idx} = {base};\n    {idx} = {idx} * {scale} + {off};\n"
    );
    let clamp = format!("    if ({idx} >= {len}) {{\n        {idx} = {len} - 1;\n    }}\n");

    let core_vuln = format!("{prologue}{access_vuln}");
    let core_fixed = format!("{prologue}{clamp}{access_vuln}");

    let scaffold = Scaffold::sample(ctx, "the stride-mapped slot table");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    let cwe = if write { Cwe::OutOfBoundsWrite } else { Cwe::OutOfBoundsRead };
    TemplatePair { cwe, vulnerable, fixed, target_fn }
}

/// CWE-476: a pointer seeded with the literal null that only one branch
/// replaces with an allocation; the dereference after the join sees the
/// null path. The fix guards the dereference, which nullness branch
/// refinement proves safe.
pub fn literal_null_flow<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let p = ctx.var("scratch");
    let flag = ctx.var("enabled");
    let n = [64usize, 128, 256][ctx.rng.gen_range(0..3)];
    let allocs = ["alloc_buffer", "make_scratch", "reserve_block"];
    let alloc = allocs[ctx.rng.gen_range(0..allocs.len())];
    let target_fn = ctx.func("stage");
    let marker = ['A', 'S', 'H'][ctx.rng.gen_range(0..3)];

    let prologue = format!(
        "    char* {p} = 0;\n    if ({flag} > 0) {{\n        {p} = {alloc}({n});\n    }}\n"
    );
    let deref = format!("    {p}[0] = '{marker}';\n    send_data({p}, {n});\n");
    let guard =
        format!("    if ({p} == 0) {{\n        log_event(\"skipped\");\n        return;\n    }}\n");

    let core_vuln = format!("{prologue}{deref}");
    let core_fixed = format!("{prologue}{guard}{deref}");

    let scaffold = Scaffold::sample(ctx, "the optional staging buffer");
    let (vulnerable, fixed) = scaffold.assemble(
        &[],
        &[],
        &format!("void {target_fn}(int {flag})"),
        &core_vuln,
        &core_fixed,
    );
    TemplatePair { cwe: Cwe::NullDereference, vulnerable, fixed, target_fn }
}

/// CWE-457: a scalar declared without an initializer and read either
/// unconditionally (definitely uninitialized) or after a branch that only
/// sometimes assigns it (maybe uninitialized). The fix initializes the
/// declaration.
pub fn uninitialized_use<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let x = ctx.var("status");
    let target_fn = ctx.func("report");
    let k = ctx.rng.gen_range(1..50);
    let seed = ctx.rng.gen_range(0..10);
    let conditional = ctx.rng.gen_bool(0.5);

    let (sig, core_vuln, core_fixed) = if conditional {
        let mode = ctx.var("mode");
        let t = ctx.rng.gen_range(1..8);
        let body = format!(
            "    if ({mode} > {t}) {{\n        {x} = {mode} + {k};\n    }}\n    record_metric(\"status\", {x});\n"
        );
        (
            format!("void {target_fn}(int {mode})"),
            format!("    int {x};\n{body}"),
            format!("    int {x} = {seed};\n{body}"),
        )
    } else {
        let y = ctx.var("total");
        let tail = format!("    record_metric(\"total\", {y});\n");
        (
            format!("void {target_fn}()"),
            format!("    int {x};\n    int {y} = {x} + {k};\n{tail}"),
            format!("    int {x} = {seed};\n    int {y} = {x} + {k};\n{tail}"),
        )
    };

    let scaffold = Scaffold::sample(ctx, "the status accumulator");
    let (vulnerable, fixed) = scaffold.assemble(&[], &[], &sig, &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::UninitializedUse, vulnerable, fixed, target_fn }
}

/// CWE-369: a divisor that constant arithmetic forces to exactly zero —
/// locally (`d = k; d = d - k;`) or through a callee whose summary the
/// interprocedural pass computes as the constant zero. The fix guards the
/// division, which interval refinement proves safe.
pub fn divide_by_zero<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let d = ctx.var("step");
    let num = ctx.var("budget");
    let q = ctx.var("share");
    let target_fn = ctx.func("split");
    let k = ctx.rng.gen_range(2..30);
    let total = ctx.rng.gen_range(100..5000);
    let interprocedural = ctx.rng.gen_bool(0.5);

    let (helpers, prologue) = if interprocedural {
        let helper = ctx.func("stride");
        let u = ctx.var("unit");
        (
            vec![format!("int {helper}() {{\n    int {u} = {k};\n    return {u} - {k};\n}}\n")],
            format!("    int {num} = {total};\n    int {d} = {helper}();\n"),
        )
    } else {
        (
            Vec::new(),
            format!("    int {num} = {total};\n    int {d} = {k};\n    {d} = {d} - {k};\n"),
        )
    };
    let divide = format!("    int {q} = {num} / {d};\n    record_metric(\"share\", {q});\n");
    let guard = format!("    if ({d} == 0) {{\n        {d} = 1;\n    }}\n");

    let core_vuln = format!("{prologue}{divide}");
    let core_fixed = format!("{prologue}{guard}{divide}");

    let scaffold = Scaffold::sample(ctx, "the quota splitter");
    let (vulnerable, fixed) =
        scaffold.assemble(&helpers, &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::DivideByZero, vulnerable, fixed, target_fn }
}

/// CWE-416 (semantic twin): a handle released through `release_block` and
/// used afterwards. The rule-based lifetime detector hard-codes `free_mem`,
/// so only the ownership domain sees the release. Half the seeds release
/// conditionally, exercising the `MaybeFreed` join (reported at medium
/// confidence). The fix moves the release after the last use.
pub fn stale_handle_use<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let buf = ctx.var("block");
    let n = [64usize, 128, 256][ctx.rng.gen_range(0..3)];
    let target_fn = ctx.func("flush");
    let allocs = ["alloc_buffer", "make_scratch", "reserve_block"];
    let alloc = allocs[ctx.rng.gen_range(0..allocs.len())];
    let conditional = ctx.rng.gen_bool(0.5);

    let prologue = format!("    char* {buf} = {alloc}({n});\n    fill_data({buf}, {n});\n");
    let (sig, core_vuln, core_fixed) = if conditional {
        let flag = ctx.var("early");
        let release = format!("    if ({flag} > 0) {{\n        release_block({buf});\n    }}\n");
        (
            format!("void {target_fn}(int {flag})"),
            format!("{prologue}{release}    send_data({buf}, {n});\n"),
            format!("{prologue}    send_data({buf}, {n});\n    release_block({buf});\n"),
        )
    } else {
        let tail = format!("    log_event(\"released\");\n    send_data({buf}, {n});\n");
        (
            format!("void {target_fn}()"),
            format!("{prologue}    release_block({buf});\n{tail}"),
            format!("{prologue}{tail}    release_block({buf});\n"),
        )
    };

    let scaffold = Scaffold::sample(ctx, "the staged transfer block");
    let (vulnerable, fixed) = scaffold.assemble(&[], &[], &sig, &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::UseAfterFree, vulnerable, fixed, target_fn }
}

/// CWE-415: the same handle released twice — unconditionally, or once more
/// on an error path whose cleanup forgets it already released. Uses
/// `release_block` so the rule suite (which only knows `free_mem`) stays
/// blind; the ownership domain proves the second release sees a `Freed`
/// (or `MaybeFreed`) handle. The fix exits after the error-path release, or
/// drops the duplicate.
pub fn double_release<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let buf = ctx.var("chunk");
    let n = [32usize, 64, 128][ctx.rng.gen_range(0..3)];
    let target_fn = ctx.func("teardown");
    let allocs = ["alloc_buffer", "make_scratch", "reserve_block"];
    let alloc = allocs[ctx.rng.gen_range(0..allocs.len())];
    let error_path = ctx.rng.gen_bool(0.5);

    let prologue = format!("    char* {buf} = {alloc}({n});\n    fill_data({buf}, {n});\n");
    let (core_vuln, core_fixed) = if error_path {
        let rc = ctx.var("rc");
        let probe = format!("    int {rc} = verify_block({buf}, {n});\n");
        (
            format!(
                "{prologue}{probe}    if ({rc} < 0) {{\n        release_block({buf});\n        log_event(\"bad block\");\n    }}\n    release_block({buf});\n"
            ),
            format!(
                "{prologue}{probe}    if ({rc} < 0) {{\n        release_block({buf});\n        return;\n    }}\n    release_block({buf});\n"
            ),
        )
    } else {
        (
            format!(
                "{prologue}    release_block({buf});\n    log_event(\"closed\");\n    release_block({buf});\n"
            ),
            format!("{prologue}    release_block({buf});\n    log_event(\"closed\");\n"),
        )
    };

    let scaffold = Scaffold::sample(ctx, "the pooled chunk teardown");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::DoubleFree, vulnerable, fixed, target_fn }
}

/// CWE-197: constant arithmetic whose range provably exceeds `char` stored
/// into a `char` slot — a truncation on every path, which the width domain
/// proves. The fix clamps first, which width branch refinement proves safe.
pub fn narrowing_store<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let base = ctx.var("base");
    let scaled = ctx.var("scaled");
    let flag = ctx.var("code");
    let target_fn = ctx.func("encode");
    let b = ctx.rng.gen_range(20..=60);
    let k = ctx.rng.gen_range(7..=9);
    let assign_form = ctx.rng.gen_bool(0.5);

    let prologue = format!("    int {base} = {b};\n    int {scaled} = {base} * {k};\n");
    let store = if assign_form {
        format!("    char {flag} = 0;\n    {flag} = {scaled};\n")
    } else {
        format!("    char {flag} = {scaled};\n")
    };
    let tail = format!("    record_metric(\"code\", {flag});\n");
    let clamp = format!("    if ({scaled} > 127) {{\n        {scaled} = 127;\n    }}\n");

    let core_vuln = format!("{prologue}{store}{tail}");
    let core_fixed = format!("{prologue}{clamp}{store}{tail}");

    let scaffold = Scaffold::sample(ctx, "the packed status code");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::IntegerTruncation, vulnerable, fixed, target_fn }
}

/// CWE-367: the existence check's *result* is parked in a flag, so the
/// syntactic race rule (which wants `file_exists` inside the `if` condition)
/// never fires — but every interleaving still has a window between the
/// check and the open, which the trace-interleaving checker enumerates over
/// the CFG. The fix opens atomically and tests the descriptor.
pub fn stale_check_use<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let path = ctx.var("path");
    let ok = ctx.var("present");
    let fd = ctx.var("fd");
    let target_fn = ctx.func("load");
    let use_fn = ["open_file", "fopen_path"][ctx.rng.gen_range(0..2)];
    let early_return = ctx.rng.gen_bool(0.5);

    let core_vuln = if early_return {
        format!(
            "    int {ok} = file_exists({path});\n    if ({ok} <= 0) {{\n        log_event(\"missing\");\n        return;\n    }}\n    int {fd} = {use_fn}({path});\n    read_all({fd});\n    close_file({fd});\n"
        )
    } else {
        format!(
            "    int {ok} = file_exists({path});\n    log_event(\"checked\");\n    if ({ok} > 0) {{\n        int {fd} = {use_fn}({path});\n        read_all({fd});\n        close_file({fd});\n    }}\n"
        )
    };
    let core_fixed = format!(
        "    int {fd} = open_file_atomic({path});\n    if ({fd} >= 0) {{\n        read_all({fd});\n        close_file({fd});\n    }}\n"
    );

    let scaffold = Scaffold::sample(ctx, "the spooled state file");
    let (vulnerable, fixed) = scaffold.assemble(
        &[],
        &[],
        &format!("void {target_fn}(char* {path})"),
        &core_vuln,
        &core_fixed,
    );
    TemplatePair { cwe: Cwe::Toctou, vulnerable, fixed, target_fn }
}

/// Source calls shared by the kind-blind sanitizer families.
const KIND_BLIND_SOURCES: [&str; 3] =
    ["read_input()", "getenv(\"APP_CMD\")", "http_param(\"cmd\")"];

/// CWE-78 (semantic twin): attacker data scrubbed with a *wrong-kind*
/// sanitizer (SQL/HTML/path escaping) before a shell sink. The taint rules
/// treat every sanitizer as kind-blind and drop the taint, so only the
/// provenance domain — which tracks *which* kinds a value is safe for —
/// proves the command injection. The fix swaps in the shell escaper.
pub fn kind_blind_shell<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let raw = ctx.var("req");
    let clean = ctx.var("scrubbed");
    let target_fn = ctx.func("dispatch");
    let source = KIND_BLIND_SOURCES[ctx.rng.gen_range(0..KIND_BLIND_SOURCES.len())];
    let sink = ["system", "exec_shell", "popen"][ctx.rng.gen_range(0..3)];
    let wrong = ["escape_sql", "escape_html", "sanitize_path"][ctx.rng.gen_range(0..3)];

    let body = |sanitizer: &str| {
        format!(
            "    char* {raw} = {source};\n    char* {clean} = {sanitizer}({raw});\n    {sink}({clean});\n    log_event(\"dispatched\");\n"
        )
    };
    let core_vuln = body(wrong);
    let core_fixed = body("escape_shell");

    let scaffold = Scaffold::sample(ctx, "the relayed maintenance command");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::CommandInjection, vulnerable, fixed, target_fn }
}

/// CWE-134 (semantic twin): attacker data scrubbed with a wrong-kind
/// sanitizer lands in the format position of `printf_fmt`. Kind-blind taint
/// rules see "sanitized" and stay quiet; the provenance domain proves the
/// mask never covered `format`. The fix pins a literal `"%s"` format.
pub fn kind_blind_format<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let raw = ctx.var("text");
    let safe = ctx.var("escaped");
    let target_fn = ctx.func("banner");
    let source = KIND_BLIND_SOURCES[ctx.rng.gen_range(0..KIND_BLIND_SOURCES.len())];
    let wrong = ["escape_html", "escape_sql", "sanitize_path"][ctx.rng.gen_range(0..3)];

    let prologue = format!("    char* {raw} = {source};\n    char* {safe} = {wrong}({raw});\n");
    let core_vuln = format!("{prologue}    printf_fmt({safe});\n");
    let core_fixed = format!("{prologue}    printf_fmt(\"%s\", {safe});\n");

    let scaffold = Scaffold::sample(ctx, "the greeting banner");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::FormatString, vulnerable, fixed, target_fn }
}

/// Generates the semantic-gap variant of `cwe`. For the classes that exist
/// *only* in semantic form (457, 369, 415, 197, 367) this is what
/// [`super::generate`] dispatches to; for 787/125/476/416/78/134 it
/// produces the rule-blind twin of the classic template, used by the
/// precision corpus.
pub fn semantic_gap_pair<R: Rng>(cwe: Cwe, ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    match cwe {
        Cwe::OutOfBoundsWrite => constant_index_oob(ctx, true),
        Cwe::OutOfBoundsRead => constant_index_oob(ctx, false),
        Cwe::NullDereference => literal_null_flow(ctx),
        Cwe::UninitializedUse => uninitialized_use(ctx),
        Cwe::DivideByZero => divide_by_zero(ctx),
        Cwe::UseAfterFree => stale_handle_use(ctx),
        Cwe::DoubleFree => double_release(ctx),
        Cwe::IntegerTruncation => narrowing_store(ctx),
        Cwe::Toctou => stale_check_use(ctx),
        Cwe::CommandInjection => kind_blind_shell(ctx),
        Cwe::FormatString => kind_blind_format(ctx),
        other => panic!("{other} has no semantic-gap template"),
    }
}

/// The CWE classes with a semantic-gap template.
pub const GAP_CLASSES: [Cwe; 11] = [
    Cwe::OutOfBoundsWrite,
    Cwe::OutOfBoundsRead,
    Cwe::NullDereference,
    Cwe::UninitializedUse,
    Cwe::DivideByZero,
    Cwe::UseAfterFree,
    Cwe::DoubleFree,
    Cwe::IntegerTruncation,
    Cwe::Toctou,
    Cwe::CommandInjection,
    Cwe::FormatString,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::StyleProfile;
    use crate::tier::Tier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;

    fn pair_for(seed: u64, f: impl Fn(&mut EmitCtx<'_, StdRng>) -> TemplatePair) -> TemplatePair {
        let style = StyleProfile::mainstream();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        f(&mut ctx)
    }

    #[test]
    fn gap_templates_parse_across_styles_tiers_and_seeds() {
        let mut styles = vec![StyleProfile::mainstream()];
        styles.extend(StyleProfile::internal_teams());
        for style in &styles {
            for tier in Tier::ALL {
                for cwe in GAP_CLASSES {
                    for seed in 0..5u64 {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let mut ctx = EmitCtx::new(style, tier, &mut rng);
                        let pair = semantic_gap_pair(cwe, &mut ctx);
                        parse(&pair.vulnerable)
                            .unwrap_or_else(|e| panic!("{cwe} vuln: {e}\n{}", pair.vulnerable));
                        parse(&pair.fixed)
                            .unwrap_or_else(|e| panic!("{cwe} fixed: {e}\n{}", pair.fixed));
                        assert_ne!(pair.vulnerable, pair.fixed);
                        assert!(pair.vulnerable.contains(&pair.target_fn));
                    }
                }
            }
        }
    }

    #[test]
    fn oob_index_is_provably_out_of_range() {
        for seed in 0..10 {
            let pair = pair_for(seed, |ctx| constant_index_oob(ctx, seed % 2 == 0));
            // The fixed twin clamps; the vulnerable one must not.
            assert!(pair.fixed.contains(">="), "clamp missing:\n{}", pair.fixed);
            assert!(!pair.vulnerable.contains(">="));
            // No rule-detector trigger: no external-input index.
            assert!(!pair.vulnerable.contains("to_int"));
        }
    }

    #[test]
    fn null_flow_never_uses_lookup_helpers() {
        for seed in 0..10 {
            let pair = pair_for(seed, literal_null_flow);
            for lookup in ["find_entry", "lookup_user", "get_config", "find_session"] {
                assert!(!pair.vulnerable.contains(lookup), "{lookup} would wake the rule suite");
            }
            assert!(pair.vulnerable.contains("= 0;"), "literal null seed required");
            assert!(pair.fixed.contains("== 0"));
        }
    }

    #[test]
    fn uninit_fixed_initializes_the_declaration() {
        for seed in 0..10 {
            let pair = pair_for(seed, uninitialized_use);
            let decl_vuln = pair
                .vulnerable
                .lines()
                .find(|l| l.trim_start().starts_with("int") && l.trim_end().ends_with(";"))
                .unwrap();
            assert!(!decl_vuln.contains('='), "vulnerable decl must be bare: {decl_vuln}");
            assert_ne!(pair.vulnerable, pair.fixed);
        }
    }

    #[test]
    fn lifetime_gap_templates_avoid_the_rule_suite_vocabulary() {
        for seed in 0..10 {
            let uaf = pair_for(seed, stale_handle_use);
            assert!(uaf.vulnerable.contains("release_block"));
            assert!(!uaf.vulnerable.contains("free_mem"), "free_mem would wake the rule suite");
            let df = pair_for(seed, double_release);
            assert!(
                df.vulnerable.matches("release_block(").count() >= 2,
                "double release required:\n{}",
                df.vulnerable
            );
            assert!(!df.vulnerable.contains("free_mem"));
        }
    }

    #[test]
    fn narrowing_store_truncates_provably_and_fix_clamps() {
        for seed in 0..10 {
            let pair = pair_for(seed, narrowing_store);
            assert!(pair.vulnerable.contains("char "), "narrowing char store required");
            assert!(pair.fixed.contains("> 127"), "clamp missing:\n{}", pair.fixed);
            assert!(!pair.vulnerable.contains("> 127"));
        }
    }

    #[test]
    fn stale_check_parks_the_flag_outside_the_condition() {
        for seed in 0..10 {
            let pair = pair_for(seed, stale_check_use);
            assert!(pair.vulnerable.contains("= file_exists("));
            assert!(
                !pair.vulnerable.contains("if (file_exists"),
                "an in-condition check would wake the syntactic race rule"
            );
            assert!(pair.fixed.contains("open_file_atomic"));
            assert!(!pair.fixed.contains("file_exists"));
        }
    }

    #[test]
    fn kind_blind_sanitizers_mismatch_their_sink() {
        for seed in 0..10 {
            let sh = pair_for(seed, kind_blind_shell);
            assert!(!sh.vulnerable.contains("escape_shell"), "wrong-kind sanitizer required");
            assert!(sh.fixed.contains("escape_shell("));
            let fm = pair_for(seed, kind_blind_format);
            assert!(fm.vulnerable.contains("printf_fmt("));
            assert!(!fm.vulnerable.contains("\"%s\""));
            assert!(fm.fixed.contains("\"%s\""));
        }
    }

    #[test]
    fn div_zero_interprocedural_variant_appears() {
        let mut saw_helper = false;
        let mut saw_local = false;
        for seed in 0..20 {
            let pair = pair_for(seed, divide_by_zero);
            assert!(pair.vulnerable.contains(" / "));
            assert!(pair.fixed.contains("== 0"));
            if pair.vulnerable.contains("();") {
                saw_helper = true;
            } else {
                saw_local = true;
            }
        }
        assert!(saw_helper && saw_local, "both variants must be reachable");
    }
}
