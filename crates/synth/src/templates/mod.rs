//! Per-CWE vulnerable/fixed code-pattern generators.
//!
//! Every generator produces a [`TemplatePair`]: a *vulnerable* translation
//! unit and its *fixed* (patched) twin, sharing the same surrounding
//! structure so the pair differs the way a real security patch differs from
//! its parent commit. All emitted code parses under `vulnman-lang`
//! (property-tested below).

mod injection;
mod logic;
mod memory;
pub mod semantic;

use crate::cwe::Cwe;
use crate::emit::{EmitCtx, UnitBuilder};
use rand::Rng;

/// A matched vulnerable/fixed sample pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplatePair {
    /// The vulnerability class instantiated.
    pub cwe: Cwe,
    /// Source of the vulnerable translation unit.
    pub vulnerable: String,
    /// Source of the patched translation unit.
    pub fixed: String,
    /// Name of the function containing the (potential) flaw.
    pub target_fn: String,
}

/// Generates a vulnerable/fixed pair for `cwe` under the given context.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use vulnman_synth::{cwe::Cwe, emit::EmitCtx, style::StyleProfile, templates, tier::Tier};
///
/// let style = StyleProfile::mainstream();
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
/// let pair = templates::generate(Cwe::SqlInjection, &mut ctx);
/// assert!(vulnman_lang::parse(&pair.vulnerable).is_ok());
/// assert!(vulnman_lang::parse(&pair.fixed).is_ok());
/// ```
pub fn generate<R: Rng>(cwe: Cwe, ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    match cwe {
        Cwe::SqlInjection => injection::sql_injection(ctx),
        Cwe::CommandInjection => injection::command_injection(ctx),
        Cwe::CrossSiteScripting => injection::cross_site_scripting(ctx),
        Cwe::PathTraversal => injection::path_traversal(ctx),
        Cwe::FormatString => injection::format_string(ctx),
        Cwe::OutOfBoundsWrite => memory::out_of_bounds_write(ctx),
        Cwe::OutOfBoundsRead => memory::out_of_bounds_read(ctx),
        Cwe::UseAfterFree => memory::use_after_free(ctx),
        Cwe::IntegerOverflow => memory::integer_overflow(ctx),
        Cwe::NullDereference => memory::null_dereference(ctx),
        Cwe::HardcodedCredentials => logic::hardcoded_credentials(ctx),
        Cwe::RaceCondition => logic::race_condition(ctx),
        Cwe::UninitializedUse => semantic::uninitialized_use(ctx),
        Cwe::DivideByZero => semantic::divide_by_zero(ctx),
        Cwe::DoubleFree => semantic::double_release(ctx),
        Cwe::IntegerTruncation => semantic::narrowing_store(ctx),
        Cwe::Toctou => semantic::stale_check_use(ctx),
    }
}

/// Shared scaffold: padding, distractors, doc comment, and unit assembly.
pub(crate) struct Scaffold {
    pub pre: String,
    pub post: String,
    pub doc: String,
    pub extra_fns: Vec<String>,
}

impl Scaffold {
    pub(crate) fn sample<R: Rng>(ctx: &mut EmitCtx<'_, R>, topic: &str) -> Scaffold {
        let total_pad = ctx.in_range(ctx.tier.padding_range());
        let n_dis = ctx.in_range(ctx.tier.distractor_range());
        let n_extra = ctx.in_range(ctx.tier.extra_fn_range());
        let pre_n = total_pad / 2;
        let post_n = total_pad - pre_n;
        let mut pre = ctx.padding(pre_n, 1);
        for _ in 0..n_dis {
            pre.push_str(&ctx.distractor(1));
        }
        let post = ctx.padding(post_n, 1);
        let doc = ctx.maybe_doc(topic);
        let extra_fns = (0..n_extra).map(|_| ctx.benign_fn()).collect();
        Scaffold { pre, post, doc, extra_fns }
    }

    /// Assembles the vulnerable and fixed units around the two core bodies.
    pub(crate) fn assemble(
        &self,
        helpers_common: &[String],
        helpers_fixed_only: &[String],
        signature: &str,
        core_vuln: &str,
        core_fixed: &str,
    ) -> (String, String) {
        let build = |core: &str, fixed: bool| {
            let mut unit = UnitBuilder::new();
            for h in helpers_common {
                unit.push_fn(h.clone());
            }
            if fixed {
                for h in helpers_fixed_only {
                    unit.push_fn(h.clone());
                }
            }
            for f in &self.extra_fns {
                unit.push_fn(f.clone());
            }
            unit.push_fn(format!(
                "{doc}{sig} {{\n{pre}{core}{post}}}\n",
                doc = self.doc,
                sig = signature,
                pre = self.pre,
                core = core,
                post = self.post,
            ));
            unit.build()
        };
        (build(core_vuln, false), build(core_fixed, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::StyleProfile;
    use crate::tier::Tier;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;
    use vulnman_lang::taint::{TaintAnalysis, TaintConfig};

    fn all_styles() -> Vec<StyleProfile> {
        let mut v = vec![StyleProfile::mainstream()];
        v.extend(StyleProfile::internal_teams());
        v
    }

    #[test]
    fn every_template_parses_across_styles_and_tiers() {
        for style in all_styles() {
            for tier in Tier::ALL {
                for cwe in Cwe::ALL {
                    for seed in 0..5u64 {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let mut ctx = EmitCtx::new(&style, tier, &mut rng);
                        let pair = generate(cwe, &mut ctx);
                        parse(&pair.vulnerable).unwrap_or_else(|e| {
                            panic!(
                                "{cwe} vulnerable ({}, {tier}): {e}\n{}",
                                style.team, pair.vulnerable
                            )
                        });
                        parse(&pair.fixed).unwrap_or_else(|e| {
                            panic!("{cwe} fixed ({}, {tier}): {e}\n{}", style.team, pair.fixed)
                        });
                        assert!(
                            pair.vulnerable.contains(&pair.target_fn),
                            "target fn must appear in unit"
                        );
                        assert_ne!(pair.vulnerable, pair.fixed, "{cwe}: patch must change code");
                    }
                }
            }
        }
    }

    /// Taint config customized to a team: the team's wrapper sanitizers are
    /// registered (what `SecurityStandard::taint_config` does in core).
    fn team_config(style: &StyleProfile) -> TaintConfig {
        let mut config = TaintConfig::default_config();
        for canonical in ["escape_sql", "escape_html", "sanitize_path", "escape_shell"] {
            config.add_sanitizer(style.sanitizer_call_name(canonical));
        }
        config
    }

    #[test]
    fn taint_style_templates_flow_only_when_vulnerable() {
        for style in all_styles() {
            let config = team_config(&style);
            for cwe in Cwe::ALL.into_iter().filter(|c| c.is_taint_style()) {
                let mut vuln_found = 0;
                let mut fixed_found = 0;
                for seed in 0..8u64 {
                    let mut rng = StdRng::seed_from_u64(1000 + seed);
                    let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                    let pair = generate(cwe, &mut ctx);
                    let pv = parse(&pair.vulnerable).unwrap();
                    let pf = parse(&pair.fixed).unwrap();
                    if TaintAnalysis::run(&pv, &config).function_has_finding(&pair.target_fn) {
                        vuln_found += 1;
                    }
                    if TaintAnalysis::run(&pf, &config).function_has_finding(&pair.target_fn) {
                        fixed_found += 1;
                    }
                }
                assert_eq!(
                    vuln_found, 8,
                    "{cwe} ({}) vulnerable variants must all flow",
                    style.team
                );
                assert_eq!(fixed_found, 0, "{cwe} ({}) fixed variants must never flow", style.team);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn any_seed_any_cwe_parses(seed in any::<u64>(), cwe_idx in 0usize..Cwe::ALL.len(), tier_idx in 0usize..3, style_idx in 0usize..4) {
            let styles = all_styles();
            let style = &styles[style_idx];
            let tier = Tier::ALL[tier_idx];
            let cwe = Cwe::ALL[cwe_idx];
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = EmitCtx::new(style, tier, &mut rng);
            let pair = generate(cwe, &mut ctx);
            prop_assert!(parse(&pair.vulnerable).is_ok());
            prop_assert!(parse(&pair.fixed).is_ok());
        }
    }
}
