//! Memory-safety templates: out-of-bounds write/read, use-after-free,
//! integer overflow, and null dereference.
//!
//! These are *structural* vulnerabilities: unlike the injection family they
//! are not simple source→sink taint flows, so they exercise the pattern/
//! bounds detectors and the structural ML features.

use super::{Scaffold, TemplatePair};
use crate::cwe::Cwe;
use crate::emit::EmitCtx;
use rand::Rng;

/// CWE-787: unbounded copy loop (or `strcpy`) into a fixed-size stack buffer.
pub fn out_of_bounds_write<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let size = [16usize, 32, 64, 128][ctx.rng.gen_range(0..4)];
    let buf = ctx.var("buf");
    let src = ctx.var("input");
    let i = ctx.var("i");
    let target_fn = ctx.func("copy");
    let use_strcpy = ctx.rng.gen_bool(0.4);

    let (core_vuln, core_fixed) = if use_strcpy {
        (
            format!(
                "    char {buf}[{size}];\n    char* {src} = read_input();\n    strcpy({buf}, {src});\n    consume({buf});\n"
            ),
            format!(
                "    char {buf}[{size}];\n    char* {src} = read_input();\n    copy_bounded({buf}, {src}, {cap});\n    consume({buf});\n",
                cap = size - 1
            ),
        )
    } else {
        (
            format!(
                "    char {buf}[{size}];\n    char* {src} = read_input();\n    int {i} = 0;\n    while ({src}[{i}] != '\\0') {{\n        {buf}[{i}] = {src}[{i}];\n        {i}++;\n    }}\n    {buf}[{i}] = '\\0';\n    consume({buf});\n"
            ),
            format!(
                "    char {buf}[{size}];\n    char* {src} = read_input();\n    int {i} = 0;\n    while ({src}[{i}] != '\\0' && {i} < {cap}) {{\n        {buf}[{i}] = {src}[{i}];\n        {i}++;\n    }}\n    {buf}[{i}] = '\\0';\n    consume({buf});\n",
                cap = size - 1
            ),
        )
    };

    let scaffold = Scaffold::sample(ctx, "the ingest buffer");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::OutOfBoundsWrite, vulnerable, fixed, target_fn }
}

/// CWE-125: table lookup with an unvalidated index from external input.
pub fn out_of_bounds_read<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let size = [8usize, 16, 32][ctx.rng.gen_range(0..3)];
    let table = ctx.var("table");
    let idx = ctx.var("idx");
    let out = ctx.var("value");
    let target_fn = ctx.func("lookup");

    let core_vuln = format!(
        "    int {table}[{size}];\n    init_table({table}, {size});\n    int {idx} = to_int(http_param(\"slot\"));\n    int {out} = {table}[{idx}];\n    record_metric(\"slot\", {out});\n"
    );
    let core_fixed = format!(
        "    int {table}[{size}];\n    init_table({table}, {size});\n    int {idx} = to_int(http_param(\"slot\"));\n    if ({idx} < 0 || {idx} >= {size}) {{\n        return;\n    }}\n    int {out} = {table}[{idx}];\n    record_metric(\"slot\", {out});\n"
    );

    let scaffold = Scaffold::sample(ctx, "the slot table read");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::OutOfBoundsRead, vulnerable, fixed, target_fn }
}

/// CWE-416: buffer used after `free_mem`. The fix frees after the last use.
pub fn use_after_free<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let p = ctx.var("ptr");
    let n = [64usize, 256, 1024][ctx.rng.gen_range(0..3)];
    let target_fn = ctx.func("flush");

    let core_vuln = format!(
        "    char* {p} = alloc_buffer({n});\n    fill_data({p}, {n});\n    free_mem({p});\n    log_event(\"flushed\");\n    send_data({p}, {n});\n"
    );
    let core_fixed = format!(
        "    char* {p} = alloc_buffer({n});\n    fill_data({p}, {n});\n    send_data({p}, {n});\n    log_event(\"flushed\");\n    free_mem({p});\n"
    );

    let scaffold = Scaffold::sample(ctx, "the transmit path");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::UseAfterFree, vulnerable, fixed, target_fn }
}

/// CWE-190: attacker-influenced multiplication feeding an allocation size.
pub fn integer_overflow<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let count = ctx.var("count");
    let total = ctx.var("total");
    let buf = ctx.var("items");
    let elem = [4usize, 8, 16][ctx.rng.gen_range(0..3)];
    let limit = [1024usize, 4096][ctx.rng.gen_range(0..2)];
    let target_fn = ctx.func("alloc");

    let core_vuln = format!(
        "    int {count} = to_int(read_input());\n    int {total} = {count} * {elem};\n    char* {buf} = alloc_buffer({total});\n    fill_items({buf}, {count});\n    send_data({buf}, {total});\n"
    );
    let core_fixed = format!(
        "    int {count} = to_int(read_input());\n    if ({count} < 0 || {count} > {limit}) {{\n        return;\n    }}\n    int {total} = {count} * {elem};\n    char* {buf} = alloc_buffer({total});\n    fill_items({buf}, {count});\n    send_data({buf}, {total});\n"
    );

    let scaffold = Scaffold::sample(ctx, "the batch allocator");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::IntegerOverflow, vulnerable, fixed, target_fn }
}

/// CWE-476: maybe-null lookup result used without a check.
pub fn null_dereference<R: Rng>(ctx: &mut EmitCtx<'_, R>) -> TemplatePair {
    let rec = ctx.var("entry");
    let key = ctx.var("key");
    let lookups = ["find_entry", "lookup_user", "get_config", "find_session"];
    let lookup = lookups[ctx.rng.gen_range(0..lookups.len())];
    let target_fn = ctx.func("touch");

    let core_vuln = format!(
        "    int {key} = to_int(read_input());\n    char* {rec} = {lookup}({key});\n    {rec}[0] = 'A';\n    record_metric(\"touched\", {key});\n"
    );
    let core_fixed = format!(
        "    int {key} = to_int(read_input());\n    char* {rec} = {lookup}({key});\n    if ({rec} == 0) {{\n        log_event(\"miss\");\n        return;\n    }}\n    {rec}[0] = 'A';\n    record_metric(\"touched\", {key});\n"
    );

    let scaffold = Scaffold::sample(ctx, "the cache entry update");
    let (vulnerable, fixed) =
        scaffold.assemble(&[], &[], &format!("void {target_fn}()"), &core_vuln, &core_fixed);
    TemplatePair { cwe: Cwe::NullDereference, vulnerable, fixed, target_fn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::style::StyleProfile;
    use crate::tier::Tier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parse;

    fn pair_for(seed: u64, f: fn(&mut EmitCtx<'_, StdRng>) -> TemplatePair) -> TemplatePair {
        let style = StyleProfile::mainstream();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        f(&mut ctx)
    }

    #[test]
    fn oob_write_fixed_has_bound() {
        for seed in 0..10 {
            let pair = pair_for(seed, out_of_bounds_write);
            parse(&pair.vulnerable).unwrap();
            parse(&pair.fixed).unwrap();
            assert!(
                pair.fixed.contains("copy_bounded") || pair.fixed.contains("< "),
                "fix must bound the copy: {}",
                pair.fixed
            );
        }
    }

    #[test]
    fn oob_read_fixed_checks_range() {
        let pair = pair_for(2, out_of_bounds_read);
        assert!(pair.fixed.contains(">="));
        assert!(!pair.vulnerable.contains(">="));
    }

    #[test]
    fn uaf_order_differs() {
        let pair = pair_for(3, use_after_free);
        let v_free = pair.vulnerable.find("free_mem").unwrap();
        let v_use = pair.vulnerable.find("send_data").unwrap();
        assert!(v_free < v_use, "vulnerable frees before use");
        let f_free = pair.fixed.find("free_mem").unwrap();
        let f_use = pair.fixed.find("send_data").unwrap();
        assert!(f_use < f_free, "fixed uses before free");
    }

    #[test]
    fn int_overflow_fixed_checks_limit() {
        let pair = pair_for(4, integer_overflow);
        assert!(pair.fixed.contains("if ("));
        assert!(pair.fixed.contains(">"));
    }

    #[test]
    fn null_deref_fixed_checks_null() {
        let pair = pair_for(5, null_dereference);
        assert!(pair.fixed.contains("== 0"));
        assert!(!pair.vulnerable.contains("== 0"));
    }

    #[test]
    fn structural_templates_parse_on_realworld_tier() {
        let style = StyleProfile::internal_teams()[2].clone();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = EmitCtx::new(&style, Tier::RealWorld, &mut rng);
            for f in [
                out_of_bounds_write,
                out_of_bounds_read,
                use_after_free,
                integer_overflow,
                null_dereference,
            ] as [fn(&mut EmitCtx<'_, StdRng>) -> TemplatePair; 5]
            {
                let pair = f(&mut ctx);
                parse(&pair.vulnerable).unwrap_or_else(|e| panic!("{e}\n{}", pair.vulnerable));
                parse(&pair.fixed).unwrap_or_else(|e| panic!("{e}\n{}", pair.fixed));
            }
        }
    }
}
