//! Datasets and the pathology-knob builder.
//!
//! [`DatasetBuilder`] exposes, as explicit knobs, every data pathology the
//! paper blames for the research/practice gap:
//!
//! * class imbalance (`vulnerable_fraction`) — Gap 3,
//! * label noise (`label_noise`) — Gap 4 ("up to 70% of labels inaccurate"),
//! * synthetic near-duplication (`duplication_factor`) — Gap 4,
//! * project and team diversity (`projects_per_team`, `teams`) — Gap 4,
//! * complexity tiers (`tier_mix`) — Gap 3,
//! * CWE distribution (`cwe_distribution`) — Gap 1.

use crate::cwe::{Cwe, CweDistribution};
use crate::generator::SampleGenerator;
use crate::mutate;
use crate::sample::Sample;
use crate::style::StyleProfile;
use crate::tier::Tier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A labeled corpus of code samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset::default()
    }

    /// Wraps an existing sample list.
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// The samples, in insertion order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Number of ground-truth vulnerable samples.
    pub fn vulnerable_count(&self) -> usize {
        self.samples.iter().filter(|s| s.label).count()
    }

    /// Ground-truth vulnerable fraction.
    pub fn vulnerable_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.vulnerable_count() as f64 / self.samples.len() as f64
        }
    }

    /// Fraction of samples whose observed label is wrong.
    pub fn mislabel_rate(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().filter(|s| s.is_mislabeled()).count() as f64
                / self.samples.len() as f64
        }
    }

    /// Ids of samples whose recorded label the noise injection corrupted,
    /// in corpus order — the provenance query the differential oracle uses
    /// to prove a disagreement is a `LabelNoiseArtifact` rather than an
    /// analyzer bug.
    pub fn mislabeled_ids(&self) -> Vec<u64> {
        self.samples.iter().filter(|s| s.is_mislabeled()).map(|s| s.id).collect()
    }

    /// Fraction of samples that share a structural fingerprint with at least
    /// one other sample — the duplication level of Gap Observation 4.
    pub fn duplicate_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        let prints: Vec<u64> =
            self.samples.iter().map(|s| mutate::structural_fingerprint(&s.source)).collect();
        for &p in &prints {
            *counts.entry(p).or_insert(0) += 1;
        }
        let dup = prints.iter().filter(|p| counts[p] > 1).count();
        dup as f64 / self.samples.len() as f64
    }

    /// Histogram of vulnerable samples per CWE class, in stable class order
    /// so printed breakdowns are identical run to run.
    pub fn cwe_histogram(&self) -> std::collections::BTreeMap<Cwe, usize> {
        let mut h = std::collections::BTreeMap::new();
        for s in &self.samples {
            if s.label {
                if let Some(c) = s.cwe {
                    *h.entry(c).or_insert(0) += 1;
                }
            }
        }
        h
    }

    /// Distinct project identifiers present.
    pub fn projects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.samples.iter().map(|s| s.project.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct team identifiers present.
    pub fn teams(&self) -> Vec<String> {
        let mut v: Vec<String> = self.samples.iter().map(|s| s.team.clone()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Samples matching a predicate, as a new dataset.
    pub fn filter(&self, pred: impl Fn(&Sample) -> bool) -> Dataset {
        Dataset { samples: self.samples.iter().filter(|s| pred(s)).cloned().collect() }
    }

    /// Splits into `(matching, rest)` by predicate.
    pub fn partition(&self, pred: impl Fn(&Sample) -> bool) -> (Dataset, Dataset) {
        let (a, b) = self.samples.iter().cloned().partition(|s| pred(s));
        (Dataset { samples: a }, Dataset { samples: b })
    }

    /// Merges another dataset into this one.
    pub fn extend_from(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }

    /// Removes structural near-duplicates, keeping the first occurrence.
    pub fn deduplicated(&self) -> Dataset {
        let mut seen = std::collections::HashSet::new();
        let samples = self
            .samples
            .iter()
            .filter(|s| seen.insert(mutate::structural_fingerprint(&s.source)))
            .cloned()
            .collect();
        Dataset { samples }
    }

    /// Serializes the dataset to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns a serialization error if any sample cannot be encoded
    /// (should not happen for well-formed samples).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.samples)
    }

    /// Deserializes a dataset from JSON produced by [`Dataset::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a deserialization error on malformed input.
    pub fn from_json(json: &str) -> Result<Dataset, serde_json::Error> {
        Ok(Dataset { samples: serde_json::from_str(json)? })
    }

    /// A deterministic shuffled copy.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut samples = self.samples.clone();
        // Fisher–Yates.
        for i in (1..samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            samples.swap(i, j);
        }
        Dataset { samples }
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset { samples: iter.into_iter().collect() }
    }
}

impl Extend<Sample> for Dataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Dataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

/// Builder for corpora with controlled pathologies.
///
/// # Examples
///
/// ```
/// use vulnman_synth::dataset::DatasetBuilder;
/// let ds = DatasetBuilder::new(42).vulnerable_count(20).vulnerable_fraction(0.5).build();
/// assert_eq!(ds.vulnerable_count(), 20);
/// assert!((ds.vulnerable_fraction() - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    seed: u64,
    teams: Vec<StyleProfile>,
    projects_per_team: usize,
    vulnerable_count: usize,
    vulnerable_fraction: f64,
    hard_negative_fraction: f64,
    cwe_distribution: CweDistribution,
    tier_mix: Vec<(Tier, f64)>,
    label_noise: f64,
    duplication_factor: usize,
    risky_benign_fraction: f64,
    cross_file_links: bool,
}

impl DatasetBuilder {
    /// Creates a builder with research-benchmark-style defaults: one
    /// mainstream team, balanced classes, curated tier, no noise.
    pub fn new(seed: u64) -> Self {
        DatasetBuilder {
            seed,
            teams: vec![StyleProfile::mainstream()],
            projects_per_team: 3,
            vulnerable_count: 100,
            vulnerable_fraction: 0.5,
            hard_negative_fraction: 0.5,
            cwe_distribution: CweDistribution::classic(),
            tier_mix: vec![(Tier::Curated, 1.0)],
            label_noise: 0.0,
            duplication_factor: 1,
            risky_benign_fraction: 0.35,
            cross_file_links: false,
        }
    }

    /// Sets the team style profiles contributing samples.
    pub fn teams(mut self, teams: Vec<StyleProfile>) -> Self {
        assert!(!teams.is_empty(), "at least one team required");
        self.teams = teams;
        self
    }

    /// Sets the number of distinct projects per team (diversity knob).
    pub fn projects_per_team(mut self, n: usize) -> Self {
        self.projects_per_team = n.max(1);
        self
    }

    /// Sets the number of ground-truth vulnerable samples.
    pub fn vulnerable_count(mut self, n: usize) -> Self {
        self.vulnerable_count = n;
        self
    }

    /// Sets the target vulnerable fraction (class balance knob).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f <= 1`.
    pub fn vulnerable_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0, "fraction must be in (0, 1]");
        self.vulnerable_fraction = f;
        self
    }

    /// Among negatives, the fraction that are *patched twins* of vulnerable
    /// samples (hard negatives) rather than unrelated benign code.
    pub fn hard_negative_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.hard_negative_fraction = f;
        self
    }

    /// Sets the CWE class distribution.
    pub fn cwe_distribution(mut self, d: CweDistribution) -> Self {
        self.cwe_distribution = d;
        self
    }

    /// Sets the complexity-tier mix as `(tier, weight)` pairs.
    pub fn tier_mix(mut self, mix: Vec<(Tier, f64)>) -> Self {
        assert!(!mix.is_empty(), "tier mix must be non-empty");
        self.tier_mix = mix;
        self
    }

    /// Among *pure benign* fill samples, the fraction that are
    /// "risky-looking" benigns (safe uses of sources/sinks/buffers) rather
    /// than plain utility code. Realistic negative populations are full of
    /// such code; it is what drives false positives at scale (Gap 3).
    pub fn risky_benign_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
        self.risky_benign_fraction = f;
        self
    }

    /// Sets the observed-label flip probability.
    pub fn label_noise(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "noise rate must be in [0, 1]");
        self.label_noise = rate;
        self
    }

    /// Sets the synthetic duplication factor: every generated sample is
    /// expanded into `k` near-duplicates total (1 = no duplication).
    pub fn duplication_factor(mut self, k: usize) -> Self {
        self.duplication_factor = k.max(1);
        self
    }

    /// Treats samples sharing a project as translation units of one program
    /// and wires them together: with the team's `cross_file_call_prob`, a
    /// sample gains a bridge function calling the target function of another
    /// sample in its project, and consecutive bridges chain (each also calls
    /// the previously emitted one), so call depth grows with project size.
    /// The resulting cross-file call edges are what the corpus graph
    /// (`vulnman_analysis::corpusgraph`) links on.
    pub fn cross_file_links(mut self, on: bool) -> Self {
        self.cross_file_links = on;
        self
    }

    /// Generates the dataset.
    pub fn build(self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e3779b97f4a7c15);
        let mut gens: Vec<SampleGenerator> = self
            .teams
            .iter()
            .enumerate()
            .map(|(i, t)| SampleGenerator::new(self.seed.wrapping_add(i as u64 * 7919), t.clone()))
            .collect();
        let mut samples: Vec<Sample> = Vec::new();

        let total_target =
            (self.vulnerable_count as f64 / self.vulnerable_fraction).round() as usize;
        let negatives_target = total_target.saturating_sub(self.vulnerable_count);
        let hard_target = (negatives_target as f64 * self.hard_negative_fraction).round() as usize;

        // Vulnerable samples (+ hard negatives from the same pairs).
        let mut hard_emitted = 0usize;
        for k in 0..self.vulnerable_count {
            let team_idx = k % gens.len();
            let project = format!(
                "{}/proj{}",
                self.teams[team_idx].team,
                rng.gen_range(0..self.projects_per_team)
            );
            let cwe = self.cwe_distribution.sample(&mut rng);
            let tier = sample_tier(&self.tier_mix, &mut rng);
            let (vuln, fixed) = gens[team_idx].vulnerable_pair(cwe, tier, &project);
            samples.push(vuln);
            if hard_emitted < hard_target {
                samples.push(fixed);
                hard_emitted += 1;
            }
        }
        // Pure benign fill.
        let mut benign_needed = negatives_target.saturating_sub(hard_emitted);
        let mut k = 0usize;
        while benign_needed > 0 {
            let team_idx = k % gens.len();
            let project = format!(
                "{}/proj{}",
                self.teams[team_idx].team,
                rng.gen_range(0..self.projects_per_team)
            );
            let tier = sample_tier(&self.tier_mix, &mut rng);
            let sample = if rng.gen_bool(self.risky_benign_fraction) {
                gens[team_idx].benign_risky(tier, &project)
            } else {
                gens[team_idx].benign(tier, &project)
            };
            samples.push(sample);
            benign_needed -= 1;
            k += 1;
        }

        // Re-number ids (generators overlap) before duplication references.
        for (i, s) in samples.iter_mut().enumerate() {
            s.id = i as u64 + 1;
        }

        // Cross-file wiring: samples sharing a project act as translation
        // units of one program. A bridge function in one sample calls the
        // target function defined in a sibling sample — an edge no per-unit
        // analysis can see, but the corpus graph links.
        if self.cross_file_links {
            let styles: std::collections::BTreeMap<&str, f64> =
                self.teams.iter().map(|t| (t.team.as_str(), t.cross_file_call_prob)).collect();
            let mut by_project: std::collections::BTreeMap<String, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (i, s) in samples.iter().enumerate() {
                by_project.entry(s.project.clone()).or_default().push(i);
            }
            for members in by_project.values() {
                if members.len() < 2 {
                    continue;
                }
                // Bridges chain: each bridge calls a sibling's target *and*
                // the previously emitted bridge, so a project's call depth
                // grows with its size — the layered-helper shape that gives
                // early targets a real transitive caller set (blast radius)
                // instead of a flat one-hop star.
                let mut prev_bridge: Option<String> = None;
                for (pos, &i) in members.iter().enumerate() {
                    let prob = styles.get(samples[i].team.as_str()).copied().unwrap_or(0.0);
                    if prob <= 0.0 || !rng.gen_bool(prob) {
                        continue;
                    }
                    let mut pick = members[rng.gen_range(0..members.len())];
                    if pick == i {
                        pick = members[(pos + 1) % members.len()];
                    }
                    let callee = samples[pick].target_fn.clone();
                    if callee.is_empty() {
                        continue;
                    }
                    let caller_id = samples[i].id;
                    let bridge = format!("bridge_{callee}_s{caller_id}");
                    let chain =
                        prev_bridge.take().map(|p| format!("    {p}();\n")).unwrap_or_default();
                    samples[i]
                        .source
                        .push_str(&format!("\nvoid {bridge}() {{\n    {callee}();\n{chain}}}\n"));
                    prev_bridge = Some(bridge);
                }
            }
        }

        // Synthetic duplication.
        if self.duplication_factor > 1 {
            let originals = samples.clone();
            let mut next_id = samples.len() as u64 + 1;
            for orig in &originals {
                for _ in 1..self.duplication_factor {
                    if let Some(dup_src) = mutate::near_duplicate(&orig.source, &mut rng) {
                        let mut dup = orig.clone();
                        dup.id = next_id;
                        next_id += 1;
                        dup.source = dup_src;
                        dup.duplicate_of = Some(orig.id);
                        samples.push(dup);
                    }
                }
            }
        }

        // Label noise.
        if self.label_noise > 0.0 {
            for s in &mut samples {
                if rng.gen_bool(self.label_noise) {
                    s.observed_label = !s.label;
                }
            }
        }

        Dataset { samples }
    }
}

fn sample_tier<R: Rng>(mix: &[(Tier, f64)], rng: &mut R) -> Tier {
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (t, w) in mix {
        if x < *w {
            return *t;
        }
        x -= w;
    }
    mix.last().expect("non-empty mix").0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_hits_counts_and_ratio() {
        let ds = DatasetBuilder::new(1).vulnerable_count(30).vulnerable_fraction(0.25).build();
        assert_eq!(ds.vulnerable_count(), 30);
        assert_eq!(ds.len(), 120);
        assert!((ds.vulnerable_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn cross_file_links_wire_projects_and_stay_parseable() {
        let build = || {
            DatasetBuilder::new(77)
                .vulnerable_count(20)
                .vulnerable_fraction(0.5)
                .projects_per_team(3)
                .cross_file_links(true)
                .build()
        };
        let ds = build();
        let bridged: Vec<&Sample> =
            ds.iter().filter(|s| s.source.contains("\nvoid bridge_")).collect();
        assert!(!bridged.is_empty(), "some samples gain cross-file bridges");
        for s in ds.iter() {
            vulnman_lang::parse(&s.source).unwrap_or_else(|e| panic!("sample {}: {e}", s.id));
        }
        // Every bridge calls a function defined in a *sibling* sample of the
        // same project, not locally.
        for s in &bridged {
            let name = s
                .source
                .rsplit("void bridge_")
                .next()
                .and_then(|rest| rest.split('(').next())
                .expect("bridge name parses");
            let callee = &name[..name.rfind("_s").expect("bridge suffix")];
            let defines_callee = |other: &&Sample| other.target_fn == callee;
            assert!(
                ds.iter()
                    .filter(|o| o.project == s.project && o.id != s.id)
                    .any(|o| defines_callee(&o)),
                "bridge target `{callee}` defined by a sibling"
            );
        }
        // Deterministic for a fixed seed.
        let again = build();
        assert_eq!(ds.samples, again.samples);
    }

    #[test]
    fn imbalanced_ratio() {
        let ds = DatasetBuilder::new(2).vulnerable_count(10).vulnerable_fraction(0.05).build();
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.vulnerable_count(), 10);
    }

    #[test]
    fn label_noise_rate_approximately_respected() {
        let ds = DatasetBuilder::new(3)
            .vulnerable_count(200)
            .vulnerable_fraction(0.5)
            .label_noise(0.3)
            .build();
        let rate = ds.mislabel_rate();
        assert!((0.24..0.36).contains(&rate), "got {rate}");
    }

    #[test]
    fn mislabeled_ids_name_exactly_the_corrupted_samples() {
        let ds = DatasetBuilder::new(11)
            .vulnerable_count(40)
            .vulnerable_fraction(0.5)
            .label_noise(0.25)
            .build();
        let ids = ds.mislabeled_ids();
        assert!(!ids.is_empty(), "a 25% noise rate on 80 samples must corrupt some");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "corpus order: {ids:?}");
        for s in ds.iter() {
            assert_eq!(ids.contains(&s.id), s.is_mislabeled(), "sample {}", s.id);
        }
        // A noise-free corpus has a provably empty provenance set.
        let clean = DatasetBuilder::new(11).vulnerable_count(20).vulnerable_fraction(0.5).build();
        assert!(clean.mislabeled_ids().is_empty());
    }

    #[test]
    fn duplication_expands_and_marks() {
        let base = DatasetBuilder::new(4).vulnerable_count(10).vulnerable_fraction(0.5);
        let plain = base.clone().build();
        let dup = base.duplication_factor(3).build();
        assert_eq!(dup.len(), plain.len() * 3);
        let marked = dup.iter().filter(|s| s.is_duplicate()).count();
        assert_eq!(marked, plain.len() * 2);
        assert!(dup.duplicate_fraction() > 0.9, "{}", dup.duplicate_fraction());
        // Dedup recovers roughly the original size.
        let deduped = dup.deduplicated();
        assert!(deduped.len() <= plain.len() + 2, "{} vs {}", deduped.len(), plain.len());
    }

    #[test]
    fn fresh_corpus_has_low_duplication() {
        let ds = DatasetBuilder::new(5)
            .vulnerable_count(40)
            .vulnerable_fraction(0.5)
            .tier_mix(vec![(Tier::Curated, 1.0), (Tier::RealWorld, 1.0)])
            .build();
        assert!(ds.duplicate_fraction() < 0.35, "{}", ds.duplicate_fraction());
    }

    #[test]
    fn cwe_distribution_respected() {
        use crate::cwe::CweDistribution;
        let ds = DatasetBuilder::new(6)
            .vulnerable_count(300)
            .cwe_distribution(CweDistribution::new(vec![
                (Cwe::SqlInjection, 8.0),
                (Cwe::RaceCondition, 2.0),
            ]))
            .build();
        let h = ds.cwe_histogram();
        let sql = *h.get(&Cwe::SqlInjection).unwrap_or(&0) as f64;
        let race = *h.get(&Cwe::RaceCondition).unwrap_or(&0) as f64;
        assert!(sql > race * 2.0, "sql={sql} race={race}");
        assert!(h.keys().all(|k| matches!(k, Cwe::SqlInjection | Cwe::RaceCondition)));
    }

    #[test]
    fn teams_and_projects_present() {
        let ds = DatasetBuilder::new(7)
            .teams(StyleProfile::internal_teams())
            .projects_per_team(2)
            .vulnerable_count(30)
            .build();
        assert_eq!(ds.teams().len(), 3);
        assert!(ds.projects().len() >= 4, "{:?}", ds.projects());
    }

    #[test]
    fn all_samples_parse() {
        let ds = DatasetBuilder::new(8)
            .teams(StyleProfile::internal_teams())
            .vulnerable_count(24)
            .tier_mix(vec![(Tier::Simple, 1.0), (Tier::Curated, 1.0), (Tier::RealWorld, 1.0)])
            .duplication_factor(2)
            .build();
        for s in &ds {
            vulnman_lang::parse(&s.source)
                .unwrap_or_else(|e| panic!("sample {} must parse: {e}", s.id));
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let mk = || DatasetBuilder::new(9).vulnerable_count(15).build();
        assert_eq!(mk(), mk());
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let ds = DatasetBuilder::new(10).vulnerable_count(20).build();
        let sh = ds.shuffled(1);
        assert_eq!(ds.len(), sh.len());
        assert_eq!(ds.vulnerable_count(), sh.vulnerable_count());
        let mut a: Vec<u64> = ds.iter().map(|s| s.id).collect();
        let mut b: Vec<u64> = sh.iter().map(|s| s.id).collect();
        assert_ne!(a, b, "order should change");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn risky_benigns_present_and_clean() {
        let ds = DatasetBuilder::new(12)
            .vulnerable_count(20)
            .vulnerable_fraction(0.2)
            .hard_negative_fraction(0.0)
            .risky_benign_fraction(1.0)
            .build();
        // All negatives are risky benigns: they reference security APIs but
        // remain ground-truth benign.
        let negatives: Vec<_> = ds.iter().filter(|s| !s.label).collect();
        assert!(!negatives.is_empty());
        let risky = negatives
            .iter()
            .filter(|s| {
                s.source.contains("exec_query")
                    || s.source.contains("http_param")
                    || s.source.contains("read_input")
                    || s.source.contains("system(")
                    || s.source.contains("find_entry")
                    || s.source.contains("alloc_buffer")
            })
            .count();
        assert!(risky * 10 >= negatives.len() * 9, "{risky}/{}", negatives.len());
        for s in &negatives {
            vulnman_lang::parse(&s.source).unwrap();
        }
    }

    #[test]
    fn json_roundtrip() {
        let ds = DatasetBuilder::new(13).vulnerable_count(6).build();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(ds, back);
        assert!(Dataset::from_json("not json").is_err());
    }

    #[test]
    fn partition_and_filter() {
        let ds = DatasetBuilder::new(11).vulnerable_count(10).build();
        let (vuln, rest) = ds.partition(|s| s.label);
        assert_eq!(vuln.len(), 10);
        assert_eq!(vuln.len() + rest.len(), ds.len());
        assert_eq!(ds.filter(|s| s.label).len(), 10);
    }
}
