//! CWE catalog: the vulnerability classes the platform manages.
//!
//! Covers seventeen classes spanning the paper's discussion: memory safety
//! (the classic "specialized research" targets), injection families, the
//! logic/configuration classes that dominate *internal* industry backlogs
//! but rank lower in the public CWE Top-25 — the mismatch behind Gap
//! Observation 1 — and the semantic-only classes (CWE-457, 369, 415, 197,
//! 367) that only the abstract-interpretation checkers can prove. Growth is
//! append-only: [`Cwe::CLASSIC`] pins the original twelve so seeded corpora
//! never reshuffle.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A supported CWE class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Cwe {
    /// CWE-787: Out-of-bounds Write (stack buffer overflow).
    OutOfBoundsWrite,
    /// CWE-125: Out-of-bounds Read.
    OutOfBoundsRead,
    /// CWE-89: SQL Injection.
    SqlInjection,
    /// CWE-78: OS Command Injection.
    CommandInjection,
    /// CWE-79: Cross-site Scripting.
    CrossSiteScripting,
    /// CWE-416: Use After Free.
    UseAfterFree,
    /// CWE-190: Integer Overflow or Wraparound.
    IntegerOverflow,
    /// CWE-476: NULL Pointer Dereference.
    NullDereference,
    /// CWE-22: Path Traversal.
    PathTraversal,
    /// CWE-798: Use of Hard-coded Credentials.
    HardcodedCredentials,
    /// CWE-362: Race Condition (TOCTOU).
    RaceCondition,
    /// CWE-134: Uncontrolled Format String.
    FormatString,
    /// CWE-457: Use of Uninitialized Variable. Only findable with semantic
    /// (definite-initialization) analysis — rule patterns have no syntactic
    /// handle on "no assignment dominates this read".
    UninitializedUse,
    /// CWE-369: Divide By Zero. Only findable with semantic (value-range)
    /// analysis — the zero divisor is the result of constant flow, not a
    /// literal `/ 0` in the source.
    DivideByZero,
    /// CWE-415: Double Free. Only findable with semantic (ownership
    /// lattice) analysis — the second release reaches the deallocator
    /// through ordinary control flow, not a recognizable syntactic shape.
    DoubleFree,
    /// CWE-197: Numeric Truncation. Only findable with semantic (bit-width
    /// interval) analysis — the narrowing store is lossy exactly when the
    /// value range provably exceeds the destination width.
    IntegerTruncation,
    /// CWE-367: Time-of-check Time-of-use. Only findable with semantic
    /// (trace-interleaving) analysis — the stale check/use pair is a CFG
    /// path property, not a `if (check(x)) use(x)` syntax match.
    Toctou,
}

impl Cwe {
    /// All supported classes, in catalog order.
    pub const ALL: [Cwe; 17] = [
        Cwe::OutOfBoundsWrite,
        Cwe::OutOfBoundsRead,
        Cwe::SqlInjection,
        Cwe::CommandInjection,
        Cwe::CrossSiteScripting,
        Cwe::UseAfterFree,
        Cwe::IntegerOverflow,
        Cwe::NullDereference,
        Cwe::PathTraversal,
        Cwe::HardcodedCredentials,
        Cwe::RaceCondition,
        Cwe::FormatString,
        Cwe::UninitializedUse,
        Cwe::DivideByZero,
        Cwe::DoubleFree,
        Cwe::IntegerTruncation,
        Cwe::Toctou,
    ];

    /// The original twelve-class catalog, exactly as it stood before the
    /// semantic-analysis classes landed. Seeded corpora are pinned to this
    /// set (see [`CweDistribution::classic`]) so growing the catalog never
    /// silently reshuffles previously generated datasets.
    pub const CLASSIC: [Cwe; 12] = [
        Cwe::OutOfBoundsWrite,
        Cwe::OutOfBoundsRead,
        Cwe::SqlInjection,
        Cwe::CommandInjection,
        Cwe::CrossSiteScripting,
        Cwe::UseAfterFree,
        Cwe::IntegerOverflow,
        Cwe::NullDereference,
        Cwe::PathTraversal,
        Cwe::HardcodedCredentials,
        Cwe::RaceCondition,
        Cwe::FormatString,
    ];

    /// The numeric CWE identifier.
    pub fn id(&self) -> u32 {
        match self {
            Cwe::OutOfBoundsWrite => 787,
            Cwe::OutOfBoundsRead => 125,
            Cwe::SqlInjection => 89,
            Cwe::CommandInjection => 78,
            Cwe::CrossSiteScripting => 79,
            Cwe::UseAfterFree => 416,
            Cwe::IntegerOverflow => 190,
            Cwe::NullDereference => 476,
            Cwe::PathTraversal => 22,
            Cwe::HardcodedCredentials => 798,
            Cwe::RaceCondition => 362,
            Cwe::FormatString => 134,
            Cwe::UninitializedUse => 457,
            Cwe::DivideByZero => 369,
            Cwe::DoubleFree => 415,
            Cwe::IntegerTruncation => 197,
            Cwe::Toctou => 367,
        }
    }

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Cwe::OutOfBoundsWrite => "out-of-bounds write",
            Cwe::OutOfBoundsRead => "out-of-bounds read",
            Cwe::SqlInjection => "SQL injection",
            Cwe::CommandInjection => "command injection",
            Cwe::CrossSiteScripting => "cross-site scripting",
            Cwe::UseAfterFree => "use after free",
            Cwe::IntegerOverflow => "integer overflow",
            Cwe::NullDereference => "null dereference",
            Cwe::PathTraversal => "path traversal",
            Cwe::HardcodedCredentials => "hard-coded credentials",
            Cwe::RaceCondition => "race condition",
            Cwe::FormatString => "format string",
            Cwe::UninitializedUse => "uninitialized use",
            Cwe::DivideByZero => "divide by zero",
            Cwe::DoubleFree => "double free",
            Cwe::IntegerTruncation => "integer truncation",
            Cwe::Toctou => "time-of-check time-of-use",
        }
    }

    /// Base severity on a 0–10 CVSS-like scale (impact component).
    pub fn base_severity(&self) -> f64 {
        match self {
            Cwe::OutOfBoundsWrite => 9.0,
            Cwe::OutOfBoundsRead => 6.5,
            Cwe::SqlInjection => 9.5,
            Cwe::CommandInjection => 9.8,
            Cwe::CrossSiteScripting => 6.1,
            Cwe::UseAfterFree => 8.8,
            Cwe::IntegerOverflow => 7.5,
            Cwe::NullDereference => 5.5,
            Cwe::PathTraversal => 7.5,
            Cwe::HardcodedCredentials => 7.8,
            Cwe::RaceCondition => 6.4,
            Cwe::FormatString => 8.1,
            Cwe::UninitializedUse => 5.9,
            Cwe::DivideByZero => 5.3,
            Cwe::DoubleFree => 8.4,
            Cwe::IntegerTruncation => 5.6,
            Cwe::Toctou => 6.3,
        }
    }

    /// Exploitability prior in `[0, 1]` (how often a latent instance is
    /// practically exploitable; drives prioritization and the cost model).
    pub fn exploitability(&self) -> f64 {
        match self {
            Cwe::OutOfBoundsWrite => 0.55,
            Cwe::OutOfBoundsRead => 0.35,
            Cwe::SqlInjection => 0.80,
            Cwe::CommandInjection => 0.85,
            Cwe::CrossSiteScripting => 0.70,
            Cwe::UseAfterFree => 0.40,
            Cwe::IntegerOverflow => 0.30,
            Cwe::NullDereference => 0.20,
            Cwe::PathTraversal => 0.65,
            Cwe::HardcodedCredentials => 0.60,
            Cwe::RaceCondition => 0.15,
            Cwe::FormatString => 0.45,
            Cwe::UninitializedUse => 0.25,
            Cwe::DivideByZero => 0.10,
            Cwe::DoubleFree => 0.35,
            Cwe::IntegerTruncation => 0.15,
            Cwe::Toctou => 0.12,
        }
    }

    /// Whether the class is in the (public) CWE Top-25-style priority list
    /// the paper says academic work over-fits to.
    pub fn in_public_top25(&self) -> bool {
        !matches!(
            self,
            Cwe::RaceCondition
                | Cwe::FormatString
                | Cwe::HardcodedCredentials
                | Cwe::UninitializedUse
                | Cwe::DivideByZero
                | Cwe::IntegerTruncation
                | Cwe::Toctou
        )
    }

    /// Whether the class is detectable primarily through taint flows (as
    /// opposed to structural patterns like missing bounds checks).
    pub fn is_taint_style(&self) -> bool {
        matches!(
            self,
            Cwe::SqlInjection
                | Cwe::CommandInjection
                | Cwe::CrossSiteScripting
                | Cwe::PathTraversal
                | Cwe::FormatString
        )
    }

    /// Whether detecting the class requires semantic (abstract
    /// interpretation) reasoning — value ranges, nullness, definite
    /// initialization — rather than syntactic rule patterns or taint flows.
    /// These classes are the measurable rule-vs-semantic gap: the rule suite
    /// is not expected to catch them, the `vulnman_analysis` semantic
    /// checkers are.
    pub fn requires_semantic_analysis(&self) -> bool {
        matches!(
            self,
            Cwe::UninitializedUse
                | Cwe::DivideByZero
                | Cwe::DoubleFree
                | Cwe::IntegerTruncation
                | Cwe::Toctou
        )
    }
}

impl fmt::Display for Cwe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CWE-{} ({})", self.id(), self.name())
    }
}

/// A frequency distribution over CWE classes, used to model both the public
/// (NVD-derived, Top-25-style) priority ranking and divergent internal team
/// distributions (Gap Observation 1: "may be far from the vulnerability
/// distribution or fixing priority within specific industrial projects").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CweDistribution {
    weights: Vec<(Cwe, f64)>,
}

impl CweDistribution {
    /// Builds a distribution from `(class, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is negative or the total
    /// weight is zero.
    pub fn new(weights: Vec<(Cwe, f64)>) -> Self {
        assert!(!weights.is_empty(), "distribution needs at least one class");
        assert!(weights.iter().all(|(_, w)| *w >= 0.0), "weights must be non-negative");
        let total: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "total weight must be positive");
        CweDistribution { weights }
    }

    /// Uniform distribution over all supported classes.
    pub fn uniform() -> Self {
        CweDistribution::new(Cwe::ALL.iter().map(|&c| (c, 1.0)).collect())
    }

    /// Uniform distribution over the original twelve-class catalog
    /// ([`Cwe::CLASSIC`]). This is the default for seeded corpus builders:
    /// it is byte-for-byte the distribution `uniform()` produced before the
    /// semantic classes (CWE-457, CWE-369) joined the catalog, so every
    /// pinned dataset, golden corpus, and experiment baseline keeps its
    /// exact sample stream.
    pub fn classic() -> Self {
        CweDistribution::new(Cwe::CLASSIC.iter().map(|&c| (c, 1.0)).collect())
    }

    /// A public, NVD/Top-25-flavoured distribution: injection and memory
    /// corruption dominate; "unfashionable" classes barely register.
    pub fn public_top25() -> Self {
        CweDistribution::new(vec![
            (Cwe::OutOfBoundsWrite, 20.0),
            (Cwe::CrossSiteScripting, 18.0),
            (Cwe::SqlInjection, 14.0),
            (Cwe::OutOfBoundsRead, 10.0),
            (Cwe::CommandInjection, 9.0),
            (Cwe::UseAfterFree, 9.0),
            (Cwe::PathTraversal, 7.0),
            (Cwe::NullDereference, 5.0),
            (Cwe::IntegerOverflow, 4.0),
            (Cwe::HardcodedCredentials, 2.0),
            (Cwe::RaceCondition, 1.0),
            (Cwe::FormatString, 1.0),
        ])
    }

    /// An internal enterprise-backend distribution: credentials, races, and
    /// path handling dominate; classic memory corruption is rare (managed
    /// runtimes), illustrating the priority mismatch of Gap Observation 1.
    pub fn internal_backend() -> Self {
        CweDistribution::new(vec![
            (Cwe::HardcodedCredentials, 22.0),
            (Cwe::PathTraversal, 16.0),
            (Cwe::RaceCondition, 14.0),
            (Cwe::SqlInjection, 13.0),
            (Cwe::NullDereference, 11.0),
            (Cwe::CrossSiteScripting, 9.0),
            (Cwe::CommandInjection, 7.0),
            (Cwe::IntegerOverflow, 4.0),
            (Cwe::OutOfBoundsRead, 2.0),
            (Cwe::OutOfBoundsWrite, 1.0),
            (Cwe::UseAfterFree, 0.5),
            (Cwe::FormatString, 0.5),
        ])
    }

    /// An internal systems/C++-team distribution: memory safety dominates.
    pub fn internal_systems() -> Self {
        CweDistribution::new(vec![
            (Cwe::OutOfBoundsWrite, 24.0),
            (Cwe::UseAfterFree, 20.0),
            (Cwe::OutOfBoundsRead, 16.0),
            (Cwe::IntegerOverflow, 12.0),
            (Cwe::NullDereference, 10.0),
            (Cwe::FormatString, 8.0),
            (Cwe::RaceCondition, 6.0),
            (Cwe::CommandInjection, 2.0),
            (Cwe::PathTraversal, 1.0),
            (Cwe::SqlInjection, 0.5),
            (Cwe::CrossSiteScripting, 0.25),
            (Cwe::HardcodedCredentials, 0.25),
        ])
    }

    /// Samples a class using `rng`.
    pub fn sample<R: rand::Rng>(&self, rng: &mut R) -> Cwe {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut x = rng.gen_range(0.0..total);
        for (c, w) in &self.weights {
            if x < *w {
                return *c;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty").0
    }

    /// Normalized probability of `cwe` under this distribution.
    pub fn probability(&self, cwe: Cwe) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        self.weights.iter().find(|(c, _)| *c == cwe).map_or(0.0, |(_, w)| w / total)
    }

    /// Classes ranked by descending weight.
    pub fn ranking(&self) -> Vec<Cwe> {
        let mut v = self.weights.clone();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        v.into_iter().map(|(c, _)| c).collect()
    }

    /// Total-variation distance to another distribution (in `[0, 1]`).
    pub fn tv_distance(&self, other: &CweDistribution) -> f64 {
        Cwe::ALL.iter().map(|&c| (self.probability(c) - other.probability(c)).abs()).sum::<f64>()
            / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_match_catalog() {
        assert_eq!(Cwe::SqlInjection.id(), 89);
        assert_eq!(Cwe::OutOfBoundsWrite.id(), 787);
        assert_eq!(Cwe::ALL.len(), 17);
        // All ids distinct.
        let mut ids: Vec<u32> = Cwe::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 17);
        assert_eq!(Cwe::UninitializedUse.id(), 457);
        assert_eq!(Cwe::DivideByZero.id(), 369);
        assert_eq!(Cwe::DoubleFree.id(), 415);
        assert_eq!(Cwe::IntegerTruncation.id(), 197);
        assert_eq!(Cwe::Toctou.id(), 367);
        // CLASSIC is a strict prefix of ALL: catalog growth is append-only.
        assert_eq!(&Cwe::ALL[..12], &Cwe::CLASSIC[..]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Cwe::SqlInjection.to_string(), "CWE-89 (SQL injection)");
    }

    #[test]
    fn severity_and_exploitability_in_range() {
        for c in Cwe::ALL {
            assert!((0.0..=10.0).contains(&c.base_severity()), "{c}");
            assert!((0.0..=1.0).contains(&c.exploitability()), "{c}");
        }
    }

    #[test]
    fn sampling_respects_weights() {
        let d = CweDistribution::new(vec![(Cwe::SqlInjection, 9.0), (Cwe::RaceCondition, 1.0)]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 5000;
        let sql = (0..n).filter(|_| d.sample(&mut rng) == Cwe::SqlInjection).count();
        let frac = sql as f64 / n as f64;
        assert!((0.85..0.95).contains(&frac), "got {frac}");
    }

    #[test]
    fn probability_normalizes() {
        let d = CweDistribution::public_top25();
        let total: f64 = Cwe::ALL.iter().map(|&c| d.probability(c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rankings_differ_between_public_and_internal() {
        let public = CweDistribution::public_top25();
        let internal = CweDistribution::internal_backend();
        assert_ne!(public.ranking()[0], internal.ranking()[0]);
        assert!(public.tv_distance(&internal) > 0.3, "distributions should diverge sharply");
    }

    #[test]
    fn tv_distance_identity_and_symmetry() {
        let a = CweDistribution::public_top25();
        let b = CweDistribution::internal_systems();
        assert!(a.tv_distance(&a) < 1e-12);
        assert!((a.tv_distance(&b) - b.tv_distance(&a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_distribution_panics() {
        let _ = CweDistribution::new(vec![]);
    }

    #[test]
    fn uniform_covers_all() {
        let d = CweDistribution::uniform();
        for c in Cwe::ALL {
            assert!((d.probability(c) - 1.0 / 17.0).abs() < 1e-9);
        }
    }

    #[test]
    fn classic_covers_exactly_the_original_twelve() {
        let d = CweDistribution::classic();
        for c in Cwe::CLASSIC {
            assert!((d.probability(c) - 1.0 / 12.0).abs() < 1e-9);
        }
        assert_eq!(d.probability(Cwe::UninitializedUse), 0.0);
        assert_eq!(d.probability(Cwe::DivideByZero), 0.0);
        assert_eq!(d.probability(Cwe::DoubleFree), 0.0);
        assert_eq!(d.probability(Cwe::IntegerTruncation), 0.0);
        assert_eq!(d.probability(Cwe::Toctou), 0.0);
    }

    #[test]
    fn semantic_classes_are_flagged() {
        let semantic: Vec<Cwe> =
            Cwe::ALL.into_iter().filter(|c| c.requires_semantic_analysis()).collect();
        assert_eq!(
            semantic,
            vec![
                Cwe::UninitializedUse,
                Cwe::DivideByZero,
                Cwe::DoubleFree,
                Cwe::IntegerTruncation,
                Cwe::Toctou,
            ]
        );
    }
}
