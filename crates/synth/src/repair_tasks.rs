//! Repair-benchmark task generation (the SWE-bench-style experiment, E15).
//!
//! A [`RepairTask`] is a vulnerable unit a repair engine must patch. Tasks
//! come in the same complexity tiers as detection samples; the paper's
//! point (Gap 3) is that solve rates collapse from toy benchmarks to
//! real-world issues (Claude-2: 4.8%, GPT-4: 1.7% on SWE-bench).

use crate::cwe::{Cwe, CweDistribution};
use crate::generator::SampleGenerator;
use crate::style::StyleProfile;
use crate::tier::Tier;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One program-repair task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairTask {
    /// Task id.
    pub id: u64,
    /// Vulnerability class to remediate.
    pub cwe: Cwe,
    /// The vulnerable unit the engine receives.
    pub broken: String,
    /// Function containing the flaw.
    pub target_fn: String,
    /// Complexity tier (difficulty axis).
    pub tier: Tier,
    /// The ground-truth patched unit (held out; used only for evaluation
    /// diagnostics, never shown to engines).
    pub reference_fix: String,
    /// Team whose style the unit follows.
    pub team: String,
}

/// Generates a suite of repair tasks for one tier.
///
/// # Examples
///
/// ```
/// use vulnman_synth::{repair_tasks::generate_tasks, tier::Tier};
/// let tasks = generate_tasks(7, Tier::Simple, 5);
/// assert_eq!(tasks.len(), 5);
/// assert!(tasks.iter().all(|t| t.tier == Tier::Simple));
/// ```
pub fn generate_tasks(seed: u64, tier: Tier, count: usize) -> Vec<RepairTask> {
    let styles: Vec<StyleProfile> = match tier {
        // Toy benchmarks use mainstream style; harder tiers mix real teams.
        Tier::Simple => vec![StyleProfile::mainstream()],
        Tier::Curated => {
            vec![StyleProfile::mainstream(), StyleProfile::internal_teams()[0].clone()]
        }
        Tier::RealWorld => StyleProfile::internal_teams(),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = CweDistribution::classic();
    let mut gens: Vec<SampleGenerator> = styles
        .iter()
        .enumerate()
        .map(|(i, s)| SampleGenerator::new(seed.wrapping_add(1000 + i as u64), s.clone()))
        .collect();
    let mut tasks = Vec::with_capacity(count);
    for i in 0..count {
        let cwe = dist.sample(&mut rng);
        let g = &mut gens[i % styles.len()];
        let team = g.style().team.clone();
        let (vuln, fixed) = g.vulnerable_pair(cwe, tier, "repair");
        tasks.push(RepairTask {
            id: i as u64 + 1,
            cwe,
            broken: vuln.source,
            target_fn: vuln.target_fn,
            tier,
            reference_fix: fixed.source,
            team,
        });
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_parse_and_cover_classes() {
        let tasks = generate_tasks(1, Tier::Curated, 36);
        assert_eq!(tasks.len(), 36);
        let mut classes = std::collections::HashSet::new();
        for t in &tasks {
            vulnman_lang::parse(&t.broken).unwrap();
            vulnman_lang::parse(&t.reference_fix).unwrap();
            classes.insert(t.cwe);
        }
        assert!(classes.len() >= 6, "should span many classes: {}", classes.len());
    }

    #[test]
    fn realworld_tasks_use_internal_teams() {
        let tasks = generate_tasks(2, Tier::RealWorld, 9);
        let teams: std::collections::HashSet<_> = tasks.iter().map(|t| t.team.clone()).collect();
        assert!(teams.len() >= 2);
        assert!(!teams.contains("oss-mainstream"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_tasks(3, Tier::Simple, 4), generate_tasks(3, Tier::Simple, 4));
    }
}
