//! Shared code-emission helpers for the vulnerability templates.
//!
//! Everything here emits *source text* that is guaranteed to parse under
//! `vulnman-lang` (property-tested in the templates module).

use crate::style::{NameGen, StyleProfile};
use crate::tier::Tier;
use rand::Rng;

/// Accumulates function definitions into a translation unit.
#[derive(Debug, Default, Clone)]
pub struct UnitBuilder {
    functions: Vec<String>,
}

impl UnitBuilder {
    /// Creates an empty unit.
    pub fn new() -> Self {
        UnitBuilder::default()
    }

    /// Appends a complete function definition (source text).
    pub fn push_fn(&mut self, source: impl Into<String>) -> &mut Self {
        self.functions.push(source.into());
        self
    }

    /// Renders the unit: functions separated by blank lines.
    pub fn build(&self) -> String {
        self.functions.join("\n")
    }

    /// Number of functions collected so far.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Returns `true` if no functions were added.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Context threaded through every template generator.
pub struct EmitCtx<'a, R: Rng> {
    /// Team style for naming/idioms.
    pub style: &'a StyleProfile,
    /// Complexity tier controlling padding/indirection.
    pub tier: Tier,
    /// Randomness source.
    pub rng: &'a mut R,
    counter: u32,
}

impl<'a, R: Rng> EmitCtx<'a, R> {
    /// Creates a context.
    pub fn new(style: &'a StyleProfile, tier: Tier, rng: &'a mut R) -> Self {
        EmitCtx { style, tier, rng, counter: 0 }
    }

    /// A fresh unique suffix for identifiers local to this unit.
    pub fn fresh(&mut self) -> u32 {
        self.counter += 1;
        self.counter
    }

    /// A fresh themed variable name.
    pub fn var(&mut self, hint: &str) -> String {
        let n = self.fresh();
        let mut g = NameGen::new(self.style, self.rng);
        let base = g.var_hint(hint);
        format!("{base}_{n}")
    }

    /// A fresh themed function name.
    pub fn func(&mut self, verb: &str) -> String {
        let n = self.fresh();
        let mut g = NameGen::new(self.style, self.rng);
        let base = g.func_hint(verb);
        format!("{base}_{n}")
    }

    /// Samples from an inclusive range.
    pub fn in_range(&mut self, (lo, hi): (usize, usize)) -> usize {
        if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    /// Benign, self-contained padding statements at `indent` levels.
    ///
    /// Each line declares what it uses, so injecting padding anywhere in a
    /// function body keeps the unit parseable.
    pub fn padding(&mut self, n: usize, indent: usize) -> String {
        let mut out = String::new();
        let pad = "    ".repeat(indent);
        for _ in 0..n {
            let v = self.var("tmp");
            let stmt = match self.rng.gen_range(0..5u8) {
                0 => {
                    let a = self.rng.gen_range(1..100);
                    let b = self.rng.gen_range(1..10);
                    format!("int {v} = {a} * {b} + 1;")
                }
                1 => {
                    let msg = self.log_message();
                    format!("log_event(\"{msg}\");")
                }
                2 => {
                    let a = self.rng.gen_range(1..50);
                    format!("int {v} = {a};\n{pad}record_metric(\"{}\", {v});", self.metric_name())
                }
                3 => {
                    let hi = self.rng.gen_range(2..6);
                    let i = self.var("i");
                    format!("for (int {i} = 0; {i} < {hi}; {i}++) {{ tick_counter({i}); }}")
                }
                _ => {
                    let a = self.rng.gen_range(0..2);
                    format!("int {v} = {a};\n{pad}if ({v} > 0) {{ log_event(\"flag\"); }}")
                }
            };
            out.push_str(&pad);
            out.push_str(&stmt);
            out.push('\n');
        }
        out
    }

    /// A distractor branch: declared condition variable plus a harmless body.
    pub fn distractor(&mut self, indent: usize) -> String {
        let pad = "    ".repeat(indent);
        let v = self.var("mode");
        let t = self.rng.gen_range(1..8);
        let msg = self.log_message();
        format!(
            "{pad}int {v} = config_flag({t});\n{pad}if ({v} > {t}) {{\n{pad}    log_event(\"{msg}\");\n{pad}    record_metric(\"branch\", {v});\n{pad}}}\n"
        )
    }

    /// A benign unrelated function definition.
    pub fn benign_fn(&mut self) -> String {
        let name = self.func("handle");
        let p = self.var("n");
        match self.rng.gen_range(0..4u8) {
            0 => {
                let acc = self.var("acc");
                let i = self.var("i");
                format!(
                    "int {name}(int {p}) {{\n    int {acc} = 0;\n    for (int {i} = 0; {i} < {p}; {i}++) {{\n        {acc} += {i} * 2;\n    }}\n    return {acc};\n}}\n"
                )
            }
            1 => {
                format!(
                    "int {name}(int {p}) {{\n    if ({p} < 0) {{\n        return 0 - {p};\n    }}\n    return {p};\n}}\n"
                )
            }
            2 => {
                let s = self.var("buf");
                let i = self.var("i");
                format!(
                    "int {name}(char* {s}) {{\n    int {i} = 0;\n    while ({s}[{i}] != '\\0') {{\n        {i}++;\n    }}\n    return {i};\n}}\n"
                )
            }
            _ => {
                let msg = self.log_message();
                format!(
                    "void {name}(int {p}) {{\n    log_event(\"{msg}\");\n    record_metric(\"calls\", {p});\n}}\n"
                )
            }
        }
    }

    /// Optional doc comment for the target function, per style density.
    pub fn maybe_doc(&mut self, topic: &str) -> String {
        if self.rng.gen_bool(self.style.comment_density) {
            format!("// {} {}.\n", self.doc_verb(), topic)
        } else {
            String::new()
        }
    }

    fn doc_verb(&mut self) -> &'static str {
        const VERBS: [&str; 5] =
            ["Handles", "Processes", "Validates and forwards", "Implements", "Manages"];
        VERBS[self.rng.gen_range(0..VERBS.len())]
    }

    fn log_message(&mut self) -> String {
        const MSGS: [&str; 6] = ["enter", "checkpoint", "state ok", "cache warm", "retry", "done"];
        MSGS[self.rng.gen_range(0..MSGS.len())].to_string()
    }

    fn metric_name(&mut self) -> String {
        const NAMES: [&str; 4] = ["latency", "hits", "depth", "size"];
        NAMES[self.rng.gen_range(0..NAMES.len())].to_string()
    }

    /// The call-name for a canonical sanitizer under the current style.
    ///
    /// Teams with an alias prefix call their *team-library* wrappers (e.g.
    /// `mi_clean_sql`); the wrapper definitions live in the shared team
    /// library (see [`StyleProfile::team_library_source`]), **not** in the
    /// generated unit. Generic tools and models that have never seen the
    /// team library therefore cannot tell the wrapper is a sanitizer — the
    /// customization gap of Gap Observation 2.
    pub fn sanitizer(&mut self, canonical: &str) -> (String, Option<String>) {
        let call = self.style.sanitizer_call_name(canonical);
        (call, None)
    }

    /// Wraps a *source expression* in 0..=depth helper functions according to
    /// the tier and style. Returns `(helper_defs, call_expr)` where
    /// `call_expr` evaluates to the (tainted) value.
    pub fn wrap_source(&mut self, source_expr: &str) -> (Vec<String>, String) {
        let mut depth = 0;
        let max = self.tier.max_wrap_depth();
        while depth < max && self.rng.gen_bool(self.style.helper_wrap_prob) {
            depth += 1;
        }
        let mut defs = Vec::new();
        let mut expr = source_expr.to_string();
        for _ in 0..depth {
            let name = self.func("fetch");
            defs.push(format!("char* {name}() {{\n    return {expr};\n}}\n"));
            expr = format!("{name}()");
        }
        (defs, expr)
    }

    /// Wraps a *sink call* in 0..=depth helper functions. Returns
    /// `(helper_defs, sink_fn_name)`; the returned name accepts one `char*`
    /// argument and eventually reaches `sink_call` (a function of one arg).
    pub fn wrap_sink(&mut self, sink_fn: &str) -> (Vec<String>, String) {
        let mut depth = 0;
        let max = self.tier.max_wrap_depth();
        while depth < max && self.rng.gen_bool(self.style.helper_wrap_prob) {
            depth += 1;
        }
        let mut defs = Vec::new();
        let mut current = sink_fn.to_string();
        for _ in 0..depth {
            let name = self.func("run");
            defs.push(format!("void {name}(char* v) {{\n    {current}(v);\n}}\n"));
            current = name;
        }
        (defs, current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::parser::parse;

    fn ctx_parse_fn(body: &str) {
        let unit = format!("void probe(int a, char* s) {{\n{body}}}\n");
        parse(&unit).unwrap_or_else(|e| panic!("padding must parse: {e}\n{unit}"));
    }

    #[test]
    fn padding_parses() {
        let style = StyleProfile::mainstream();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = EmitCtx::new(&style, Tier::RealWorld, &mut rng);
            let body = ctx.padding(10, 1);
            ctx_parse_fn(&body);
        }
    }

    #[test]
    fn distractor_parses() {
        let style = StyleProfile::internal_teams()[2].clone();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut ctx = EmitCtx::new(&style, Tier::RealWorld, &mut rng);
            let body = ctx.distractor(1);
            ctx_parse_fn(&body);
        }
    }

    #[test]
    fn benign_fn_parses() {
        for (ti, style) in StyleProfile::internal_teams().into_iter().enumerate() {
            for seed in 0..20 {
                let mut rng = StdRng::seed_from_u64(seed + ti as u64 * 1000);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let f = ctx.benign_fn();
                parse(&f).unwrap_or_else(|e| panic!("benign fn must parse: {e}\n{f}"));
            }
        }
    }

    #[test]
    fn sanitizer_alias_resolves_via_team_library() {
        let style = StyleProfile::internal_teams()[1].clone(); // has prefix
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        let (call, def) = ctx.sanitizer("escape_sql");
        assert_eq!(call, "mi_clean_sql");
        assert!(def.is_none(), "wrapper lives in the team library, not the unit");
        let lib = style.team_library_source();
        parse(&lib).unwrap();
        assert!(lib.contains("mi_clean_sql"));
        assert!(lib.contains("escape_sql"));
    }

    #[test]
    fn mainstream_sanitizer_is_direct() {
        let style = StyleProfile::mainstream();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ctx = EmitCtx::new(&style, Tier::Simple, &mut rng);
        let (call, def) = ctx.sanitizer("escape_html");
        assert_eq!(call, "escape_html");
        assert!(def.is_none());
    }

    #[test]
    fn wrapped_source_and_sink_parse_and_flow() {
        use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
        let style =
            StyleProfile { helper_wrap_prob: 1.0, ..StyleProfile::internal_teams()[2].clone() };
        let mut rng = StdRng::seed_from_u64(9);
        let mut ctx = EmitCtx::new(&style, Tier::RealWorld, &mut rng);
        let (sdefs, sexpr) = ctx.wrap_source("read_input()");
        let (kdefs, kname) = ctx.wrap_sink("exec_query");
        assert!(!sdefs.is_empty());
        assert!(!kdefs.is_empty());
        let mut unit = UnitBuilder::new();
        for d in sdefs.iter().chain(kdefs.iter()) {
            unit.push_fn(d.clone());
        }
        unit.push_fn(format!("void target() {{\n    char* v = {sexpr};\n    {kname}(v);\n}}\n"));
        let src = unit.build();
        let prog = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let t = TaintAnalysis::run(&prog, &TaintConfig::default_config());
        assert!(t.function_has_finding("target"), "wrapped flow must be found\n{src}");
    }

    #[test]
    fn unit_builder_joins() {
        let mut u = UnitBuilder::new();
        assert!(u.is_empty());
        u.push_fn("void a() {\n}\n").push_fn("void b() {\n}\n");
        assert_eq!(u.len(), 2);
        let text = u.build();
        assert!(text.contains("void a()"));
        assert!(text.contains("void b()"));
        parse(&text).unwrap();
    }
}
