//! Team style profiles.
//!
//! Industrial codebases differ in naming conventions, helper idioms, and
//! security-wrapper vocabularies (Gap Observation 2: "various codebases
//! present unique requirements due to different coding styles…"). The corpus
//! generator threads a [`StyleProfile`] through every template so that the
//! same vulnerability class *looks* different across teams — which is what
//! makes the customization/fine-tuning experiment (E04) meaningful.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier naming convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamingStyle {
    /// `snake_case` multi-word names.
    Snake,
    /// `camelCase` multi-word names.
    Camel,
    /// Hungarian-ish prefixes: `pszUserName`.
    Hungarian,
    /// Terse single-word or abbreviated names: `un`, `buf2`.
    Short,
}

impl NamingStyle {
    /// Joins word parts according to the convention.
    pub fn join(&self, parts: &[&str]) -> String {
        match self {
            NamingStyle::Snake => parts.join("_"),
            NamingStyle::Camel => {
                let mut out = String::new();
                for (i, p) in parts.iter().enumerate() {
                    if i == 0 {
                        out.push_str(p);
                    } else {
                        let mut cs = p.chars();
                        if let Some(c) = cs.next() {
                            out.push(c.to_ascii_uppercase());
                        }
                        out.push_str(cs.as_str());
                    }
                }
                out
            }
            NamingStyle::Hungarian => {
                let mut out = String::from("p");
                for p in parts {
                    let mut cs = p.chars();
                    if let Some(c) = cs.next() {
                        out.push(c.to_ascii_uppercase());
                    }
                    out.push_str(cs.as_str());
                }
                out
            }
            NamingStyle::Short => {
                let mut out = String::new();
                for p in parts {
                    out.push_str(&p[..p.len().min(3)]);
                }
                out
            }
        }
    }
}

/// Domain vocabulary the team's identifiers draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainVocab {
    /// Web/API service words.
    Web,
    /// Database/storage words.
    Database,
    /// Media-processing words.
    Media,
    /// Systems/kernel words.
    Systems,
}

impl DomainVocab {
    /// Nouns characteristic of the domain.
    pub fn nouns(&self) -> &'static [&'static str] {
        match self {
            DomainVocab::Web => {
                &["user", "session", "request", "cookie", "route", "token", "page", "form"]
            }
            DomainVocab::Database => {
                &["record", "row", "table", "index", "cursor", "schema", "shard", "txn"]
            }
            DomainVocab::Media => {
                &["frame", "pixel", "codec", "stream", "sample", "track", "chunk", "packet"]
            }
            DomainVocab::Systems => {
                &["page", "inode", "slab", "queue", "lock", "node", "block", "cache"]
            }
        }
    }

    /// Verbs characteristic of the domain.
    pub fn verbs(&self) -> &'static [&'static str] {
        match self {
            DomainVocab::Web => &["handle", "serve", "render", "route", "submit", "fetch"],
            DomainVocab::Database => &["query", "scan", "insert", "commit", "lookup", "migrate"],
            DomainVocab::Media => &["decode", "encode", "resample", "mux", "filter", "seek"],
            DomainVocab::Systems => &["map", "flush", "pin", "evict", "probe", "alloc"],
        }
    }
}

/// A team's coding-style profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StyleProfile {
    /// Team identifier (stable across a corpus).
    pub team: String,
    /// Naming convention for identifiers.
    pub naming: NamingStyle,
    /// Domain vocabulary.
    pub vocab: DomainVocab,
    /// Probability that a generated function carries a doc comment.
    pub comment_density: f64,
    /// If set, sanitizers are called through team-named wrapper functions
    /// with this prefix (e.g. `acme_clean_sql`), hiding the canonical
    /// sanitizer names from shallow token models.
    pub sanitizer_alias_prefix: Option<String>,
    /// Probability that sources/sinks are wrapped in team helper functions
    /// (increases interprocedural distance).
    pub helper_wrap_prob: f64,
    /// Probability that a project unit gains a bridge function calling into
    /// a sibling unit (cross-file call edges; drives the corpus graph).
    pub cross_file_call_prob: f64,
}

impl StyleProfile {
    /// The neutral "open-source mainstream" style most research corpora
    /// resemble; generic models are trained on this.
    pub fn mainstream() -> Self {
        StyleProfile {
            team: "oss-mainstream".into(),
            naming: NamingStyle::Snake,
            vocab: DomainVocab::Web,
            comment_density: 0.4,
            sanitizer_alias_prefix: None,
            helper_wrap_prob: 0.15,
            cross_file_call_prob: 0.35,
        }
    }

    /// A set of divergent internal team profiles, ordered by increasing
    /// style distance from [`StyleProfile::mainstream`].
    pub fn internal_teams() -> Vec<StyleProfile> {
        vec![
            StyleProfile {
                team: "payments".into(),
                naming: NamingStyle::Snake,
                vocab: DomainVocab::Database,
                comment_density: 0.6,
                sanitizer_alias_prefix: None,
                helper_wrap_prob: 0.3,
                cross_file_call_prob: 0.4,
            },
            StyleProfile {
                team: "media-infra".into(),
                naming: NamingStyle::Camel,
                vocab: DomainVocab::Media,
                comment_density: 0.2,
                sanitizer_alias_prefix: Some("mi".into()),
                helper_wrap_prob: 0.5,
                cross_file_call_prob: 0.5,
            },
            StyleProfile {
                team: "kernel".into(),
                naming: NamingStyle::Short,
                vocab: DomainVocab::Systems,
                comment_density: 0.1,
                sanitizer_alias_prefix: Some("k".into()),
                helper_wrap_prob: 0.7,
                cross_file_call_prob: 0.6,
            },
        ]
    }

    /// Rough style distance from another profile in `[0, 1]`: fraction of
    /// divergent dimensions. Used to order teams in the E04 experiment.
    pub fn distance(&self, other: &StyleProfile) -> f64 {
        let mut d = 0.0;
        if self.naming != other.naming {
            d += 0.25;
        }
        if self.vocab != other.vocab {
            d += 0.25;
        }
        if self.sanitizer_alias_prefix != other.sanitizer_alias_prefix {
            d += 0.3;
        }
        d += 0.2 * (self.helper_wrap_prob - other.helper_wrap_prob).abs();
        d.min(1.0)
    }

    /// Source of the team's shared security library: wrapper definitions
    /// for every aliased sanitizer. Kept outside generated units; analyses
    /// that want to resolve team wrappers interprocedurally can prepend it,
    /// or register the wrapper names as sanitizers directly (see
    /// `SecurityStandard::taint_config` in `vulnman-core`).
    pub fn team_library_source(&self) -> String {
        const CANONICAL: [&str; 5] =
            ["escape_sql", "escape_html", "sanitize_path", "escape_shell", "validate_input"];
        let mut out = String::new();
        if self.sanitizer_alias_prefix.is_some() {
            for canonical in CANONICAL {
                let call = self.sanitizer_call_name(canonical);
                out.push_str(&format!(
                    "char* {call}(char* s) {{\n    return {canonical}(s);\n}}\n"
                ));
            }
        }
        out
    }

    /// The name a sanitizer is invoked by under this profile. Teams with an
    /// alias prefix call wrappers (`<prefix>_clean_<tail>`); others call the
    /// canonical function directly.
    pub fn sanitizer_call_name(&self, canonical: &str) -> String {
        match &self.sanitizer_alias_prefix {
            Some(prefix) => {
                let tail = canonical.rsplit('_').next().unwrap_or(canonical);
                format!("{prefix}_clean_{tail}")
            }
            None => canonical.to_string(),
        }
    }
}

/// Deterministic identifier generator over a style profile.
#[derive(Debug)]
pub struct NameGen<'a, R: Rng> {
    style: &'a StyleProfile,
    rng: &'a mut R,
    counter: u32,
}

impl<'a, R: Rng> NameGen<'a, R> {
    /// Creates a generator drawing randomness from `rng`.
    pub fn new(style: &'a StyleProfile, rng: &'a mut R) -> Self {
        NameGen { style, rng, counter: 0 }
    }

    /// A fresh variable name themed on the team vocabulary.
    pub fn var(&mut self) -> String {
        let noun = self.pick(self.style.vocab.nouns());
        self.unique(&[noun])
    }

    /// A fresh variable name with a semantic hint word (e.g. "len", "buf").
    pub fn var_hint(&mut self, hint: &str) -> String {
        let noun = self.pick(self.style.vocab.nouns());
        self.unique(&[noun, hint])
    }

    /// A fresh function name themed on the team vocabulary.
    pub fn func(&mut self) -> String {
        let verb = self.pick(self.style.vocab.verbs());
        let noun = self.pick(self.style.vocab.nouns());
        self.unique(&[verb, noun])
    }

    /// A fresh function name with a fixed verb (e.g. "fetch", "check").
    pub fn func_hint(&mut self, verb: &str) -> String {
        let noun = self.pick(self.style.vocab.nouns());
        self.unique(&[verb, noun])
    }

    fn pick(&mut self, pool: &'static [&'static str]) -> &'static str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn unique(&mut self, parts: &[&str]) -> String {
        self.counter += 1;
        let base = self.style.naming.join(parts);
        // Suffix a counter so names never collide within a unit.
        format!("{base}{}", self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn naming_styles_join() {
        assert_eq!(NamingStyle::Snake.join(&["user", "name"]), "user_name");
        assert_eq!(NamingStyle::Camel.join(&["user", "name"]), "userName");
        assert_eq!(NamingStyle::Hungarian.join(&["user", "name"]), "pUserName");
        assert_eq!(NamingStyle::Short.join(&["user", "name"]), "usenam");
    }

    #[test]
    fn sanitizer_alias() {
        let mut p = StyleProfile::mainstream();
        assert_eq!(p.sanitizer_call_name("escape_sql"), "escape_sql");
        p.sanitizer_alias_prefix = Some("acme".into());
        assert_eq!(p.sanitizer_call_name("escape_sql"), "acme_clean_sql");
        assert_eq!(p.sanitizer_call_name("sanitize_path"), "acme_clean_path");
    }

    #[test]
    fn distance_orders_teams() {
        let main = StyleProfile::mainstream();
        let teams = StyleProfile::internal_teams();
        let dists: Vec<f64> = teams.iter().map(|t| main.distance(t)).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]), "teams should be ordered: {dists:?}");
        assert!(main.distance(&main) < 1e-9);
    }

    #[test]
    fn names_are_unique_and_valid_identifiers() {
        let style = StyleProfile::mainstream();
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = NameGen::new(&style, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = gen.var();
            let f = gen.func();
            for name in [&v, &f] {
                assert!(seen.insert(name.clone()), "duplicate {name}");
                assert!(name.chars().next().unwrap().is_ascii_alphabetic());
                assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let style = StyleProfile::internal_teams()[1].clone();
        let gen_seq = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = NameGen::new(&style, &mut rng);
            (0..10).map(|_| g.func()).collect::<Vec<_>>()
        };
        assert_eq!(gen_seq(42), gen_seq(42));
        assert_ne!(gen_seq(42), gen_seq(43));
    }
}
