//! Slice-preserving mutation for synthetic dataset duplication.
//!
//! Models the common synthetic-augmentation practice the paper criticizes
//! (Gap Observation 4, citing Allamanis): "keeping vulnerable code unchanged
//! and adding variations to unrelated neighboring code", which floods
//! corpora with near-duplicate slices and inflates benchmark scores.
//!
//! A mutation alpha-renames local variables and parameters, optionally
//! prepends inert declarations, and reorders function definitions — the
//! vulnerable *slice structure* is untouched.

use rand::Rng;
use vulnman_lang::ast::{Expr, ExprKind, Function, LValue, Stmt, StmtKind, Type};
use vulnman_lang::{parse, print_program};

/// Produces a near-duplicate of `source`: same semantic skeleton, fresh
/// local names, shuffled function order, optional inert padding.
///
/// Returns `None` if `source` does not parse (callers generate sources from
/// templates, so this indicates a bug upstream).
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let src = "int f(int alpha) { int beta = alpha + 1; return beta; }";
/// let mut rng = StdRng::seed_from_u64(1);
/// let dup = vulnman_synth::mutate::near_duplicate(src, &mut rng).unwrap();
/// assert_ne!(dup, src);
/// assert!(vulnman_lang::parse(&dup).is_ok());
/// ```
pub fn near_duplicate<R: Rng>(source: &str, rng: &mut R) -> Option<String> {
    let mut program = parse(source).ok()?;
    let salt: u32 = rng.gen_range(1..=9999);
    for func in &mut program.functions {
        rename_function_locals(func, salt);
        if rng.gen_bool(0.5) {
            prepend_inert_decl(func, rng);
        }
    }
    // Shuffle function order (stable labels: function *names* are preserved).
    if program.functions.len() > 1 && rng.gen_bool(0.7) {
        let k = rng.gen_range(0..program.functions.len());
        program.functions.rotate_left(k);
    }
    Some(print_program(&program))
}

/// Metamorphic transform: deterministic alpha-rename of every parameter and
/// local in every function (`salt` picks the fresh name family). Function
/// names, statement structure, and literals are untouched, so any detector
/// verdict that changes under this transform is a detector bug.
///
/// Returns `None` if `source` does not parse.
pub fn alpha_rename(source: &str, salt: u32) -> Option<String> {
    let mut program = parse(source).ok()?;
    for func in &mut program.functions {
        rename_function_locals(func, salt);
    }
    Some(print_program(&program))
}

/// Metamorphic transform: inserts whole-line `//` comments between source
/// lines. Purely lexical — the token stream is unchanged and only line
/// numbers shift, so detector *verdicts* (not spans) must be invariant.
pub fn insert_comments<R: Rng>(source: &str, rng: &mut R) -> String {
    let mut out = String::new();
    for line in source.lines() {
        if rng.gen_bool(0.4) {
            out.push_str(&format!("// audit note {}\n", rng.gen_range(0..100000u32)));
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Metamorphic transform: prepends one inert (never-read) declaration to
/// every function body. Dead straight-line code reaches no sink and frees
/// no pointer, so detector verdicts must be invariant.
///
/// Returns `None` if `source` does not parse.
pub fn insert_dead_statements<R: Rng>(source: &str, rng: &mut R) -> Option<String> {
    let mut program = parse(source).ok()?;
    for func in &mut program.functions {
        prepend_inert_decl(func, rng);
    }
    Some(print_program(&program))
}

fn rename_function_locals(func: &mut Function, salt: u32) {
    let mut map = std::collections::HashMap::new();
    for (i, p) in func.params.iter_mut().enumerate() {
        let fresh = format!("p{salt}_{i}");
        map.insert(p.name.to_string(), fresh.clone());
        p.name = fresh.into();
    }
    // Collect declared locals first (pre-pass) so uses before the walk order
    // still rename consistently.
    let mut counter = 0usize;
    collect_decls(&mut func.body, &mut map, salt, &mut counter);
    for s in &mut func.body {
        rename_stmt(s, &map);
    }
}

fn collect_decls(
    stmts: &mut [Stmt],
    map: &mut std::collections::HashMap<String, String>,
    salt: u32,
    counter: &mut usize,
) {
    for s in stmts {
        match &mut s.kind {
            StmtKind::Decl { name, .. } => {
                *counter += 1;
                let fresh = format!("v{salt}_{counter}");
                map.insert(name.to_string(), fresh.clone());
                *name = fresh.into();
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                collect_decls(then_branch, map, salt, counter);
                if let Some(e) = else_branch {
                    collect_decls(e, map, salt, counter);
                }
            }
            StmtKind::While { body, .. } => collect_decls(body, map, salt, counter),
            StmtKind::For { init, body, step, .. } => {
                if let Some(i) = init {
                    collect_decls(std::slice::from_mut(i.as_mut()), map, salt, counter);
                }
                if let Some(st) = step {
                    collect_decls(std::slice::from_mut(st.as_mut()), map, salt, counter);
                }
                collect_decls(body, map, salt, counter);
            }
            _ => {}
        }
    }
}

fn rename_stmt(s: &mut Stmt, map: &std::collections::HashMap<String, String>) {
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                rename_expr(e, map);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                LValue::Var(name) => rename_name(name, map),
                LValue::Deref(e) => rename_expr(e, map),
                LValue::Index(b, i) => {
                    rename_expr(b, map);
                    rename_expr(i, map);
                }
            }
            rename_expr(value, map);
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            rename_expr(cond, map);
            for t in then_branch {
                rename_stmt(t, map);
            }
            if let Some(e) = else_branch {
                for t in e {
                    rename_stmt(t, map);
                }
            }
        }
        StmtKind::While { cond, body } => {
            rename_expr(cond, map);
            for t in body {
                rename_stmt(t, map);
            }
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                rename_stmt(i, map);
            }
            if let Some(c) = cond {
                rename_expr(c, map);
            }
            if let Some(st) = step {
                rename_stmt(st, map);
            }
            for t in body {
                rename_stmt(t, map);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                rename_expr(e, map);
            }
        }
        StmtKind::Expr(e) => rename_expr(e, map),
        StmtKind::Break | StmtKind::Continue => {}
    }
}

fn rename_expr(e: &mut Expr, map: &std::collections::HashMap<String, String>) {
    match &mut e.kind {
        ExprKind::Var(name) => rename_name(name, map),
        ExprKind::Unary(_, inner) => rename_expr(inner, map),
        ExprKind::Binary(_, l, r) => {
            rename_expr(l, map);
            rename_expr(r, map);
        }
        ExprKind::Call(_, args) => {
            // Function names are global and deliberately preserved.
            for a in args {
                rename_expr(a, map);
            }
        }
        ExprKind::Index(b, i) => {
            rename_expr(b, map);
            rename_expr(i, map);
        }
        ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) => {}
    }
}

fn rename_name(name: &mut vulnman_lang::Symbol, map: &std::collections::HashMap<String, String>) {
    if let Some(fresh) = map.get(name.as_str()) {
        *name = fresh.as_str().into();
    }
}

fn prepend_inert_decl<R: Rng>(func: &mut Function, rng: &mut R) {
    let v = format!("inert_{}", rng.gen_range(0..100000u32));
    let value: i64 = rng.gen_range(0..256);
    func.body.insert(
        0,
        Stmt::new(
            StmtKind::Decl { name: v.into(), ty: Type::Int, init: Some(Expr::int(value)) },
            vulnman_lang::Span::dummy(),
        ),
    );
}

/// A structural fingerprint of a unit that ignores identifier names and
/// literal values: near-duplicates produced by [`near_duplicate`] collide
/// under this fingerprint while independently generated units do not
/// (almost surely). Used to *measure* duplication rates in datasets (E08).
pub fn structural_fingerprint(source: &str) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    match parse(source) {
        Ok(p) => {
            // Order-insensitive: hash the sorted multiset of per-function
            // shape hashes, so function reordering does not defeat dedup.
            let mut fn_hashes: Vec<u64> = p.functions.iter().map(function_shape_hash).collect();
            fn_hashes.sort_unstable();
            fn_hashes.hash(&mut hasher);
        }
        Err(_) => source.hash(&mut hasher),
    }
    hasher.finish()
}

/// Shape hash of one function: statement/expression structure with names and
/// literal values erased. Declarations initialized to integer literals are
/// skipped entirely, so inert-padding insertion does not defeat dedup either.
fn function_shape_hash(f: &Function) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    f.params.len().hash(&mut hasher);
    f.walk_stmts(&mut |s| {
        if let StmtKind::Decl { init, .. } = &s.kind {
            let literal_init = matches!(init, None | Some(Expr { kind: ExprKind::Int(_), .. }));
            if literal_init {
                return;
            }
        }
        std::mem::discriminant(&s.kind).hash(&mut hasher);
        for e in s.exprs() {
            e.walk(&mut |sub| {
                match &sub.kind {
                    // Call targets are part of the slice shape.
                    ExprKind::Call(name, args) => {
                        0u8.hash(&mut hasher);
                        name.hash(&mut hasher);
                        args.len().hash(&mut hasher);
                    }
                    other => std::mem::discriminant(other).hash(&mut hasher),
                }
            });
        }
    });
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cwe::Cwe;
    use crate::generator::SampleGenerator;
    use crate::style::StyleProfile;
    use crate::tier::Tier;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::taint::{TaintAnalysis, TaintConfig};

    #[test]
    fn duplicate_parses_and_differs_textually() {
        let mut g = SampleGenerator::new(1, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Curated, "p");
        let mut rng = StdRng::seed_from_u64(2);
        let dup = near_duplicate(&v.source, &mut rng).unwrap();
        assert_ne!(dup, v.source);
        parse(&dup).unwrap();
    }

    #[test]
    fn duplicate_preserves_vulnerability() {
        let cfg = TaintConfig::default_config();
        let mut g = SampleGenerator::new(3, StyleProfile::mainstream());
        for cwe in [Cwe::SqlInjection, Cwe::CommandInjection, Cwe::PathTraversal] {
            let (v, f) = g.vulnerable_pair(cwe, Tier::Curated, "p");
            let mut rng = StdRng::seed_from_u64(7);
            let dup_v = near_duplicate(&v.source, &mut rng).unwrap();
            let dup_f = near_duplicate(&f.source, &mut rng).unwrap();
            let pv = parse(&dup_v).unwrap();
            let pf = parse(&dup_f).unwrap();
            assert!(
                !TaintAnalysis::run(&pv, &cfg).findings.is_empty(),
                "{cwe}: duplicate must keep the flow\n{dup_v}"
            );
            assert!(
                TaintAnalysis::run(&pf, &cfg).findings.is_empty(),
                "{cwe}: fixed duplicate must stay clean"
            );
        }
    }

    #[test]
    fn fingerprint_collides_for_rename_only_duplicates() {
        // A pure alpha-rename (no inert padding, no rotation) must collide.
        let src = "int f(int alpha) { int beta = alpha * 2; if (beta > 3) { return beta; } return alpha; }";
        let mut p = parse(src).unwrap();
        rename_function_locals(&mut p.functions[0], 77);
        let renamed = print_program(&p);
        assert_ne!(renamed, src);
        assert_eq!(structural_fingerprint(src), structural_fingerprint(&renamed));
    }

    #[test]
    fn fingerprint_separates_independent_units() {
        let mut g = SampleGenerator::new(5, StyleProfile::mainstream());
        let (a, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::RealWorld, "p");
        let (b, _) = g.vulnerable_pair(Cwe::UseAfterFree, Tier::RealWorld, "p");
        assert_ne!(structural_fingerprint(&a.source), structural_fingerprint(&b.source));
    }

    #[test]
    fn metamorphic_transforms_parse_and_differ() {
        let mut g = SampleGenerator::new(11, StyleProfile::mainstream());
        let (v, _) = g.vulnerable_pair(Cwe::SqlInjection, Tier::Curated, "p");
        let renamed = alpha_rename(&v.source, 42).unwrap();
        assert_ne!(renamed, v.source);
        parse(&renamed).unwrap();
        // Alpha-renaming is salt-deterministic.
        assert_eq!(renamed, alpha_rename(&v.source, 42).unwrap());

        let mut rng = StdRng::seed_from_u64(13);
        let commented = insert_comments(&v.source, &mut rng);
        assert!(commented.contains("// audit note"));
        parse(&commented).unwrap();

        let mut rng = StdRng::seed_from_u64(17);
        let padded = insert_dead_statements(&v.source, &mut rng).unwrap();
        assert!(padded.contains("inert_"));
        parse(&padded).unwrap();
    }

    #[test]
    fn rename_keeps_function_names() {
        let src = "int helper(int x) { return x; }\nint f(int y) { return helper(y); }";
        let mut rng = StdRng::seed_from_u64(9);
        let dup = near_duplicate(src, &mut rng).unwrap();
        assert!(dup.contains("helper"));
        assert!(dup.contains("int f("));
        assert!(!dup.contains(" y)"), "param should be renamed: {dup}");
    }
}
