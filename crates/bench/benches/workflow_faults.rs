//! Criterion bench: workflow throughput under seeded fault injection.
//!
//! Retries and quarantine bookkeeping run on a virtual clock (backoff is
//! charged to a histogram, never slept), so resilience must be close to
//! free: the budget is that a 5% transient-only rate at jobs=4 stays
//! within 25% of the fault-free `faulted_workflow/rate/0` throughput on
//! the same corpus. The sweep at 0 / 1% / 5% / 10% makes the cost curve
//! visible in the criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_faults::{FaultConfig, FaultMix};
use vulnman_synth::dataset::{Dataset, DatasetBuilder};

fn corpus() -> Dataset {
    DatasetBuilder::new(11).vulnerable_count(60).vulnerable_fraction(0.3).build()
}

fn mk_fault_engine(jobs: usize, rate: f64) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let fault_config =
        FaultConfig { seed: 11, rate, mix: FaultMix::transient_only(), ..Default::default() };
    WorkflowEngine::with_fault_config(
        registry,
        WorkflowConfig { jobs, cache: false, ..Default::default() },
        fault_config,
    )
}

/// Throughput of the sharded workflow as the transient-injection rate
/// rises. `rate/0` is the plan-bearing-but-silent baseline — it measures
/// the pure overhead of carrying an injector (one hash per guarded call);
/// the non-zero rates add deterministic retries on top.
fn bench_faulted_workflow(c: &mut Criterion) {
    let ds = corpus();
    let mut group = c.benchmark_group("faulted_workflow");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.len() as u64));
    for rate_pct in [0u32, 1, 5, 10] {
        let engine = mk_fault_engine(4, f64::from(rate_pct) / 100.0);
        group.bench_with_input(BenchmarkId::new("rate", rate_pct), &ds, |b, ds| {
            b.iter(|| engine.process(ds.samples()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faulted_workflow);
criterion_main!(benches);
