//! Criterion benches: scan throughput of the detection stack.
//!
//! Backs the scalability dimension of Gap Observation 3: industry needs to
//! know what a detector costs per thousand samples (the `compute_usd`
//! term of the cost model) for rule-based tools vs each ML family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vulnman_analysis::detectors::RuleEngine;
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::{Dataset, DatasetBuilder};
use vulnman_synth::tier::Tier;

fn corpus(tier: Tier, n: usize, seed: u64) -> Dataset {
    DatasetBuilder::new(seed)
        .vulnerable_count(n)
        .vulnerable_fraction(0.5)
        .tier_mix(vec![(tier, 1.0)])
        .build()
}

fn bench_rule_engine(c: &mut Criterion) {
    let engine = RuleEngine::default_suite();
    let mut group = c.benchmark_group("rule_engine_scan");
    for tier in Tier::ALL {
        let ds = corpus(tier, 20, 42);
        group.throughput(Throughput::Elements(ds.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tier), &ds, |b, ds| {
            b.iter(|| {
                let mut findings = 0usize;
                for s in ds {
                    findings += engine.scan_source(&s.source).map(|f| f.len()).unwrap_or(0);
                }
                findings
            })
        });
    }
    group.finish();
}

fn bench_ml_inference(c: &mut Criterion) {
    let train = DatasetBuilder::new(7).vulnerable_count(100).build();
    let split = stratified_split(&train, 0.2, 1);
    let eval = corpus(Tier::Curated, 20, 43);
    let mut group = c.benchmark_group("ml_inference");
    group.throughput(Throughput::Elements(eval.len() as u64));
    for mut model in model_zoo(3) {
        model.train(&split.train);
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name().to_string()),
            &eval,
            |b, eval| b.iter(|| model.predict_all(eval)),
        );
    }
    group.finish();
}

fn bench_ml_training(c: &mut Criterion) {
    let ds = DatasetBuilder::new(9).vulnerable_count(60).build();
    let mut group = c.benchmark_group("ml_training");
    group.sample_size(10);
    for template in ["token-lr", "graph-rf", "stat-nb"] {
        group.bench_function(template, |b| {
            b.iter(|| {
                let mut model =
                    model_zoo(5).into_iter().find(|m| m.name() == template).expect("model present");
                model.train(&ds);
                model
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rule_engine, bench_ml_inference, bench_ml_training);
criterion_main!(benches);
