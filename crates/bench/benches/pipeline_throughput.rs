//! Criterion benches: workflow-engine, generator, taint, and anonymizer
//! throughput — the compute-cost side of the paper's financial argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vulnman_core::anonymize::{Anonymizer, Strength};
use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_synth::dataset::{Dataset, DatasetBuilder};
use vulnman_synth::emit::EmitCtx;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::templates;
use vulnman_synth::tier::Tier;

fn corpus(n: usize) -> Dataset {
    DatasetBuilder::new(11).vulnerable_count(n).vulnerable_fraction(0.3).build()
}

fn mk_engine(jobs: usize, cache: bool) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    WorkflowEngine::new(registry, WorkflowConfig { jobs, cache, ..Default::default() })
}

fn mk_engine_noop_metrics(jobs: usize, cache: bool) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    WorkflowEngine::with_metrics(
        registry,
        WorkflowConfig { jobs, cache, ..Default::default() },
        vulnman_obs::Registry::noop(),
    )
}

fn bench_workflow(c: &mut Criterion) {
    let ds = corpus(12);
    let engine = mk_engine(1, true);
    let mut group = c.benchmark_group("workflow");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("sequential", |b| b.iter(|| engine.process(ds.samples())));
    group.bench_function("pipelined_crossbeam", |b| {
        b.iter(|| engine.process_pipelined(ds.samples()))
    });
    group.finish();
}

/// Shard-scaling of the Figure-1 pipeline: the same corpus at jobs ∈ {1, 2,
/// 4} with caching off, so every iteration measures the full analysis cost
/// (thread scaling tracks available cores), plus the full parallel+cached
/// pipeline at jobs=4 — the configuration that must clear ≥2× the jobs=1
/// baseline's throughput.
fn bench_workflow_scaling(c: &mut Criterion) {
    let ds = corpus(60);
    let mut group = c.benchmark_group("workflow_scaling");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for jobs in [1usize, 2, 4] {
        let engine = mk_engine(jobs, false);
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &ds, |b, ds| {
            b.iter(|| engine.process(ds.samples()))
        });
    }
    let full = mk_engine(4, true);
    full.process(ds.samples()); // prime the cache
    group.bench_function("jobs4_cached", |b| b.iter(|| full.process(ds.samples())));
    // Observability overhead on the jobs=1 uncached workload: `jobs/1`
    // above runs the default *recording* registry (budget: within 15% of
    // pre-instrumentation throughput); the Noop recorder below must be
    // within 5% — every instrument is a predicted branch and spans never
    // read the clock.
    let noop = mk_engine_noop_metrics(1, false);
    group.bench_function("jobs1_noop_metrics", |b| b.iter(|| noop.process(ds.samples())));
    group.finish();
}

/// Value of the content-addressed cache on a duplicate-heavy corpus
/// (Gap Observation 4's duplicate slices): cold = every run pays full
/// analysis cost; warm = repeated content is served from the cache.
fn bench_workflow_cache(c: &mut Criterion) {
    let ds = DatasetBuilder::new(11)
        .vulnerable_count(30)
        .vulnerable_fraction(0.3)
        .duplication_factor(3)
        .build();
    let mut group = c.benchmark_group("workflow_cache");
    group.throughput(Throughput::Elements(ds.len() as u64));
    let cold = mk_engine(1, false);
    group.bench_function("cold_no_cache", |b| b.iter(|| cold.process(ds.samples())));
    let warm = mk_engine(1, true);
    warm.process(ds.samples()); // prime
    group.bench_function("warm_cached", |b| b.iter(|| warm.process(ds.samples())));
    let combined = mk_engine(4, true);
    combined.process(ds.samples()); // prime
    group.bench_function("warm_cached_jobs4", |b| b.iter(|| combined.process(ds.samples())));
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let style = StyleProfile::mainstream();
    let mut group = c.benchmark_group("corpus_generation");
    for tier in Tier::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |b, &tier| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                let mut ctx = EmitCtx::new(&style, tier, &mut rng);
                templates::generate(vulnman_synth::cwe::Cwe::SqlInjection, &mut ctx)
            })
        });
    }
    group.finish();
}

fn bench_taint(c: &mut Criterion) {
    let ds = corpus(20);
    let programs: Vec<_> = ds.iter().filter_map(|s| vulnman_lang::parse(&s.source).ok()).collect();
    let config = TaintConfig::default_config();
    let mut group = c.benchmark_group("taint_analysis");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.bench_function("interprocedural", |b| {
        b.iter(|| {
            programs.iter().map(|p| TaintAnalysis::run(p, &config).findings.len()).sum::<usize>()
        })
    });
    group.finish();
}

fn bench_anonymizer(c: &mut Criterion) {
    let ds = corpus(20);
    let mut group = c.benchmark_group("anonymizer");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
        let anonymizer = Anonymizer::new(strength);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strength:?}")),
            &ds,
            |b, ds| b.iter(|| ds.iter().filter_map(|s| anonymizer.anonymize(s)).count()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_workflow,
    bench_workflow_scaling,
    bench_workflow_cache,
    bench_generation,
    bench_taint,
    bench_anonymizer
);
criterion_main!(benches);
