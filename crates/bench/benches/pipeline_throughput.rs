//! Criterion benches: workflow-engine, generator, taint, and anonymizer
//! throughput — the compute-cost side of the paper's financial argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vulnman_core::anonymize::{Anonymizer, Strength};
use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_synth::dataset::{Dataset, DatasetBuilder};
use vulnman_synth::emit::EmitCtx;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::templates;
use vulnman_synth::tier::Tier;

fn corpus(n: usize) -> Dataset {
    DatasetBuilder::new(11).vulnerable_count(n).vulnerable_fraction(0.3).build()
}

fn bench_workflow(c: &mut Criterion) {
    let ds = corpus(12);
    let mk_engine = || {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig::default())
    };
    let engine = mk_engine();
    let mut group = c.benchmark_group("workflow");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ds.len() as u64));
    group.bench_function("sequential", |b| b.iter(|| engine.process(ds.samples())));
    group.bench_function("pipelined_crossbeam", |b| {
        b.iter(|| engine.process_pipelined(ds.samples()))
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let style = StyleProfile::mainstream();
    let mut group = c.benchmark_group("corpus_generation");
    for tier in Tier::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(tier), &tier, |b, &tier| {
            let mut rng = StdRng::seed_from_u64(5);
            b.iter(|| {
                let mut ctx = EmitCtx::new(&style, tier, &mut rng);
                templates::generate(vulnman_synth::cwe::Cwe::SqlInjection, &mut ctx)
            })
        });
    }
    group.finish();
}

fn bench_taint(c: &mut Criterion) {
    let ds = corpus(20);
    let programs: Vec<_> =
        ds.iter().filter_map(|s| vulnman_lang::parse(&s.source).ok()).collect();
    let config = TaintConfig::default_config();
    let mut group = c.benchmark_group("taint_analysis");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.bench_function("interprocedural", |b| {
        b.iter(|| {
            programs
                .iter()
                .map(|p| TaintAnalysis::run(p, &config).findings.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_anonymizer(c: &mut Criterion) {
    let ds = corpus(20);
    let mut group = c.benchmark_group("anonymizer");
    group.throughput(Throughput::Elements(ds.len() as u64));
    for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
        let anonymizer = Anonymizer::new(strength);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strength:?}")),
            &ds,
            |b, ds| {
                b.iter(|| {
                    ds.iter().filter_map(|s| anonymizer.anonymize(s)).count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_workflow, bench_generation, bench_taint, bench_anonymizer);
criterion_main!(benches);
