//! Criterion benches: abstract-interpretation solver throughput.
//!
//! Two axes the ROADMAP's hot-path requirement cares about: how the
//! fixpoint cost scales with program size (function count × loop nesting
//! depth — the two knobs that grow the CFG and the iteration space), and
//! what the content-addressed cache buys on warm runs (the `absint`
//! oracle view and the workflow's semantic detector both key on
//! `"absint-findings"`, so a warm run skips the solver entirely).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vulnman_analysis::checkers::SemanticEngine;
use vulnman_lang::{parse, AnalysisCache};

/// One function with `depth` nested counting loops around an accumulator
/// the interval domain has to widen, plus a branch that keeps the join
/// non-trivial for nullness/init.
fn function(name: &str, depth: usize) -> String {
    let mut body = String::new();
    for d in 0..depth {
        let pad = "    ".repeat(d + 1);
        body.push_str(&format!("{pad}int i{d} = 0;\n{pad}while (i{d} < 100) {{\n"));
    }
    let pad = "    ".repeat(depth + 1);
    body.push_str(&format!(
        "{pad}if (acc < 1000) {{\n{pad}    acc = acc + 3;\n{pad}}} else {{\n{pad}    acc = acc - 1;\n{pad}}}\n"
    ));
    for d in (0..depth).rev() {
        let pad = "    ".repeat(d + 1);
        body.push_str(&format!("{pad}    i{d} = i{d} + 1;\n{pad}}}\n"));
    }
    format!("int {name}(int n) {{\n    int acc = 0;\n{body}    return acc;\n}}\n")
}

/// A program of `functions` chained helpers (each calls the next, so the
/// interprocedural summary pass does real bottom-up work) at a given loop
/// `depth`.
fn program(functions: usize, depth: usize) -> String {
    let mut src = String::new();
    for f in 0..functions {
        src.push_str(&function(&format!("stage{f}"), depth));
        src.push('\n');
    }
    src.push_str("int main() {\n    int total = 0;\n");
    for f in 0..functions {
        src.push_str(&format!("    total = total + stage{f}({f});\n"));
    }
    src.push_str("    return total;\n}\n");
    src
}

fn bench_solver_vs_program_size(c: &mut Criterion) {
    let engine = SemanticEngine::new();
    let mut group = c.benchmark_group("absint_solver_scaling");
    for (functions, depth) in [(1, 1), (4, 1), (16, 1), (4, 3), (4, 5), (16, 3)] {
        let source = program(functions, depth);
        let parsed = parse(&source).expect("synthetic program parses");
        group.throughput(Throughput::Elements(functions as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("f{functions}_d{depth}")),
            &parsed,
            |b, p| b.iter(|| engine.analyze(p).stats.iterations),
        );
    }
    group.finish();
}

fn bench_cold_vs_warm_cache(c: &mut Criterion) {
    let engine = SemanticEngine::new();
    let source = program(8, 3);
    let mut group = c.benchmark_group("absint_cache");
    group.bench_function("cold", |b| {
        // A fresh cache every iteration: every scan pays the fixpoint.
        b.iter(|| {
            let cache = AnalysisCache::new();
            engine.scan_source_cached(&source, &cache).expect("scan succeeds").len()
        })
    });
    group.bench_function("warm", |b| {
        let cache = AnalysisCache::new();
        let _ = engine.scan_source_cached(&source, &cache).expect("prime");
        b.iter(|| engine.scan_source_cached(&source, &cache).expect("scan succeeds").len())
    });
    group.finish();
}

criterion_group!(benches, bench_solver_vs_program_size, bench_cold_vs_warm_cache);
criterion_main!(benches);
