//! # vulnman-bench
//!
//! Experiment harness reproducing every figure and quantitative claim of
//! the paper, plus criterion benches for the performance dimensions.
//!
//! Each experiment `eNN` in [`experiments`] has a `run(quick)` entry point:
//! `quick = true` shrinks corpora for CI; `quick = false` is the
//! paper-scale configuration the committed `EXPERIMENTS.md` numbers come
//! from. One binary per experiment wraps the library entry point; the
//! `all_experiments` binary runs the full index in order.

#![warn(missing_docs)]

pub mod experiments;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{id}: {title}");
    println!("paper anchor: {claim}");
    println!("{}", "=".repeat(74));
}

/// Reads `--quick` from the process arguments (used by every binary).
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}
