//! # vulnman-bench
//!
//! Experiment harness reproducing every figure and quantitative claim of
//! the paper, plus criterion benches for the performance dimensions.
//!
//! Each experiment `eNN` in [`experiments`] has a `run(quick)` entry point:
//! `quick = true` shrinks corpora for CI; `quick = false` is the
//! paper-scale configuration the committed `EXPERIMENTS.md` numbers come
//! from. One binary per experiment wraps the library entry point; the
//! `all_experiments` binary runs the full index in order.

#![warn(missing_docs)]

pub mod experiments;

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{id}: {title}");
    println!("paper anchor: {claim}");
    println!("{}", "=".repeat(74));
}

/// Reads `--quick` from the process arguments (used by every binary).
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Reads `--metrics-out FILE` from the process arguments. The instrumented
/// experiments (e01, e07, e20) dump their observability snapshot there.
pub fn metrics_out_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--metrics-out").and_then(|i| args.get(i + 1)).cloned()
}

/// Writes `snapshot` as pretty JSON to the `--metrics-out` path, if one was
/// given on the command line; otherwise does nothing. Failures are reported
/// on stderr but never abort an experiment run.
pub fn dump_metrics(snapshot: &vulnman_obs::Snapshot) {
    let Some(path) = metrics_out_from_args() else { return };
    match serde_json::to_string_pretty(snapshot) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => eprintln!("warning: cannot write metrics to {path}: {e}"),
        },
        Err(e) => eprintln!("warning: cannot serialize metrics: {e}"),
    }
}
