//! E10 — Gap Observation 4: more (and more diverse) data helps.
//!
//! Paper anchor: "ML-based vulnerability mitigation solutions can achieve
//! better performance from larger and more diverse training datasets".

use vulnman_core::report::{fmt3, Table};
use vulnman_ml::pipeline::model_zoo;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// `(train size, diverse-training F1, narrow-training F1)` rows.
pub type ScaleRow = (usize, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<ScaleRow> {
    crate::banner(
        "E10",
        "learning curves over corpus size and team diversity",
        "\"better performance from larger and more diverse training dataset\" (Gap 4)",
    );
    let sizes: Vec<usize> = if quick { vec![40, 80, 160] } else { vec![50, 100, 200, 400, 800] };

    // Evaluation: the broad industrial reality — the *internal* teams a
    // deployed model must serve. Injection-heavy with hard (patched-twin)
    // negatives: distinguishing a team's fix from its flaw requires having
    // seen that team's sanitizer vocabulary, which is precisely what
    // diverse training data provides.
    let injection_heavy = vulnman_synth::cwe::CweDistribution::new(vec![
        (vulnman_synth::cwe::Cwe::SqlInjection, 3.0),
        (vulnman_synth::cwe::Cwe::CommandInjection, 2.0),
        (vulnman_synth::cwe::Cwe::CrossSiteScripting, 2.0),
        (vulnman_synth::cwe::Cwe::PathTraversal, 2.0),
        (vulnman_synth::cwe::Cwe::FormatString, 1.0),
    ]);
    let eval = DatasetBuilder::new(1001)
        .teams(StyleProfile::internal_teams())
        .vulnerable_count(if quick { 80 } else { 160 })
        .vulnerable_fraction(0.4)
        .cwe_distribution(injection_heavy.clone())
        .hard_negative_fraction(0.8)
        .tier_mix(vec![(Tier::Curated, 1.0)])
        .build();

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "train vulns",
        "diverse teams F1",
        "single team F1",
        "diversity advantage",
    ]);
    let seeds: u64 = if quick { 2 } else { 3 };
    for (i, &n) in sizes.iter().enumerate() {
        let mut fd_sum = 0.0;
        let mut fn_sum = 0.0;
        for seed in 0..seeds {
            let base = 1002 + i as u64 + seed * 1000;
            let diverse = DatasetBuilder::new(base)
                .teams({
                    let mut t = vec![StyleProfile::mainstream()];
                    t.extend(StyleProfile::internal_teams());
                    t
                })
                .vulnerable_count(n)
                .cwe_distribution(injection_heavy.clone())
                .hard_negative_fraction(0.7)
                .tier_mix(vec![(Tier::Curated, 1.0)])
                .build();
            let narrow = DatasetBuilder::new(base)
                .vulnerable_count(n)
                .cwe_distribution(injection_heavy.clone())
                .hard_negative_fraction(0.7)
                .tier_mix(vec![(Tier::Curated, 1.0)])
                .build();
            let mut md = model_zoo(41 + seed).remove(0);
            let mut mn = model_zoo(41 + seed).remove(0);
            md.train(&diverse);
            mn.train(&narrow);
            fd_sum += md.evaluate(&eval).f1();
            fn_sum += mn.evaluate(&eval).f1();
        }
        let fd = fd_sum / seeds as f64;
        let fnarrow = fn_sum / seeds as f64;
        t.row(vec![n.to_string(), fmt3(fd), fmt3(fnarrow), fmt3(fd - fnarrow)]);
        rows.push((n, fd, fnarrow));
    }
    t.print("E10  token-lr learning curves on the broad industrial test set");
    println!(
        "shape check: F1 rises with training size; at equal size, team-diverse \
         training beats single-team training on the broad test."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_shape() {
        let rows = super::run(true);
        let first = rows[0];
        let last = rows.last().unwrap();
        // Larger data helps (diverse track).
        assert!(last.1 > first.1 - 0.02, "{rows:?}");
        // Diversity helps at the largest size (clear margin on the
        // internal-team evaluation).
        assert!(last.1 > last.2, "{rows:?}");
    }
}
