//! E03 — Gap Observation 1 / Future Direction Proposal 1: specialization.
//!
//! Paper anchors: "five different types of vulnerabilities achieved the
//! best F1 score across five different models" and the proposal to build
//! models "that specialize in certain types of vulnerabilities".

use std::collections::HashMap;
use vulnman_core::report::{fmt3, Table};
use vulnman_ml::eval::Metrics;
use vulnman_ml::pipeline::{model_zoo, DetectionModel};
use vulnman_ml::split::stratified_split;
use vulnman_synth::cwe::{Cwe, CweDistribution};
use vulnman_synth::dataset::{Dataset, DatasetBuilder};
use vulnman_synth::tier::Tier;

/// Result bundle for assertions.
#[derive(Debug)]
pub struct SpecializationResult {
    /// `(cwe, best generalist model name, generalist F1)` per class.
    pub winners: Vec<(Cwe, String, f64)>,
    /// `(cwe, specialist F1, generalist-best F1)` for the focus classes.
    pub specialist_vs_generalist: Vec<(Cwe, f64, f64)>,
}

fn per_cwe_metrics(model: &DetectionModel, test: &Dataset, cwe: Cwe) -> Metrics {
    // Evaluate on this class's vulnerable samples plus all negatives —
    // "mitigate a specific type of vulnerability as thoroughly as possible".
    let subset = test.filter(|s| !s.label || s.cwe == Some(cwe));
    model.evaluate(&subset)
}

/// Runs the experiment.
pub fn run(quick: bool) -> SpecializationResult {
    crate::banner(
        "E03",
        "per-CWE winners and specialized vs one-for-all models",
        "\"five different types of vulnerabilities achieved the best F1 score across \
         five different models\" (Gap 1); Proposal 1: specialized model research",
    );
    let n = if quick { 150 } else { 1500 };
    let ds = DatasetBuilder::new(301)
        .vulnerable_count(n)
        .vulnerable_fraction(0.4)
        .cwe_distribution(CweDistribution::classic())
        .tier_mix(vec![(Tier::Curated, 2.0), (Tier::RealWorld, 1.0)])
        .build();
    let split = stratified_split(&ds, 0.35, 9);

    // Generalists: the whole zoo, trained one-for-all — each on its own
    // disjoint slice of the pool, as published models from different groups
    // are (same regime as E02).
    let mut generalists = model_zoo(13);
    let shuffled = split.train.shuffled(0xe03);
    let k = generalists.len();
    let slices: Vec<Dataset> =
        (0..k).map(|i| shuffled.iter().skip(i).step_by(k).cloned().collect()).collect();
    for (m, slice) in generalists.iter_mut().zip(&slices) {
        m.train(slice);
    }

    let mut table = Table::new({
        let mut h = vec!["CWE"];
        h.extend(generalists.iter().map(|m| m.name()));
        h.push("winner");
        h
    });
    let mut winners = Vec::new();
    let mut winner_count: HashMap<String, usize> = HashMap::new();
    // The corpus is drawn from the classic distribution; the semantic-only
    // classes (CWE-457/369) never appear in it, so scoring them would be
    // vacuous.
    for cwe in Cwe::CLASSIC {
        let scores: Vec<f64> =
            generalists.iter().map(|m| per_cwe_metrics(m, &split.test, cwe).f1()).collect();
        let (best_idx, best) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        let winner = generalists[best_idx].name().to_string();
        *winner_count.entry(winner.clone()).or_insert(0) += 1;
        let mut row = vec![format!("CWE-{}", cwe.id())];
        row.extend(scores.iter().map(|s| fmt3(*s)));
        row.push(winner.clone());
        table.row(row);
        winners.push((cwe, winner, *best));
    }
    table.print("E03.a  per-CWE F1 across the generalist zoo");
    let distinct = winner_count.len();
    println!(
        "distinct winning model families across 12 classes: {distinct} \
         (paper: five classes were best-served by five different models)"
    );

    // Specialists: one model per focus class, trained only on that class's
    // vulnerable samples + negatives.
    let focus: Vec<Cwe> = vec![
        Cwe::SqlInjection,
        Cwe::OutOfBoundsWrite,
        Cwe::UseAfterFree,
        Cwe::HardcodedCredentials,
        Cwe::RaceCondition,
    ];
    let mut t2 = Table::new(vec!["CWE", "specialist F1", "best generalist F1", "delta"]);
    let mut specialist_vs_generalist = Vec::new();
    for (i, &cwe) in focus.iter().enumerate() {
        let train_subset = split.train.filter(|s| !s.label || s.cwe == Some(cwe));
        let mut specialist = model_zoo(900 + i as u64).remove(2); // graph-rf base
        specialist.train(&train_subset);
        let spec_f1 = per_cwe_metrics(&specialist, &split.test, cwe).f1();
        let gen_best =
            winners.iter().find(|(c, _, _)| *c == cwe).map(|(_, _, f)| *f).unwrap_or(0.0);
        t2.row(vec![
            format!("CWE-{}", cwe.id()),
            fmt3(spec_f1),
            fmt3(gen_best),
            fmt3(spec_f1 - gen_best),
        ]);
        specialist_vs_generalist.push((cwe, spec_f1, gen_best));
    }
    t2.print("E03.b  specialized (per-class) vs one-for-all models");
    SpecializationResult { winners, specialist_vs_generalist }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e03_shape() {
        let r = super::run(true);
        assert_eq!(r.winners.len(), 12);
        // No single family should dominate every class.
        let first = &r.winners[0].1;
        assert!(
            r.winners.iter().any(|(_, w, _)| w != first),
            "multiple families should win somewhere"
        );
        // Specialists at least match generalists on average over focus classes.
        let mean_delta: f64 = r.specialist_vs_generalist.iter().map(|(_, s, g)| s - g).sum::<f64>()
            / r.specialist_vs_generalist.len() as f64;
        assert!(mean_delta > -0.08, "specialists should be competitive: {mean_delta}");
    }
}
