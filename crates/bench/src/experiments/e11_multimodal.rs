//! E11 — Gap Observation 4: multimodal industry signals.
//!
//! Paper anchor: "industry datasets often include … diverse types of
//! documentation (e.g., code comments, reviews, discussions). These
//! multimodal information enables DL-based systems to better understand the
//! semantics of potentially vulnerable code."

use vulnman_core::report::{fmt3, Table};
use vulnman_ml::pipeline::{model_zoo, multimodal_model};
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::tier::Tier;

/// `(setting, code-only F1, multimodal F1)` rows.
pub type MultimodalRow = (String, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<MultimodalRow> {
    crate::banner(
        "E11",
        "code-only vs code+artifact (commit/review/analyst) features",
        "\"multimodal information enables DL-based systems to better understand the \
         semantics of potentially vulnerable code\" (Gap 4)",
    );
    let n = if quick { 120 } else { 400 };

    let mut rows = Vec::new();
    let mut t = Table::new(vec!["setting", "code-only F1", "code+artifacts F1", "lift"]);
    // Two settings: an easy curated corpus and a hard real-world one where
    // the code signal alone is weaker and side channels matter more.
    let settings: Vec<(&str, Vec<(Tier, f64)>)> = vec![
        ("curated tier", vec![(Tier::Curated, 1.0)]),
        ("real-world tier", vec![(Tier::RealWorld, 1.0)]),
    ];
    for (i, (name, mix)) in settings.into_iter().enumerate() {
        let ds = DatasetBuilder::new(1101 + i as u64)
            .vulnerable_count(n)
            .vulnerable_fraction(0.4)
            .tier_mix(mix)
            .build();
        let split = stratified_split(&ds, 0.3, 19);
        let mut code_only = model_zoo(43).remove(0);
        let mut multi = multimodal_model(43);
        code_only.train(&split.train);
        multi.train(&split.train);
        let f_code = code_only.evaluate(&split.test).f1();
        let f_multi = multi.evaluate(&split.test).f1();
        t.row(vec![name.to_string(), fmt3(f_code), fmt3(f_multi), fmt3(f_multi - f_code)]);
        rows.push((name.to_string(), f_code, f_multi));
    }
    t.print("E11  multimodal lift (same classifier, artifact features added)");
    println!(
        "shape check: commit/review/analyst artifacts — signals only industry has — \
         lift detection quality, most on hard real-world code."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_shape() {
        let rows = super::run(true);
        // Multimodal features help (or at worst tie) in both settings.
        for (name, code, multi) in &rows {
            assert!(multi >= &(code - 0.03), "{name}: {code} vs {multi}");
        }
        // And help strictly somewhere.
        assert!(rows.iter().any(|(_, c, m)| m > &(c + 0.01)), "{rows:?}");
    }
}
