//! E19 — ablations of the design choices `DESIGN.md` calls out.
//!
//! Three levers, each isolated: (a) interprocedural summaries in the taint
//! engine, (b) hard (patched-twin) negatives in training corpora, and
//! (c) the registry's verdict-combination policy.

use vulnman_core::detector::{DetectorRegistry, MlDetector, RuleBasedDetector};
use vulnman_core::report::{fmt3, Table};
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_ml::eval::Metrics;
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::cwe::{Cwe, CweDistribution};
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// Result bundle for assertions.
#[derive(Debug)]
pub struct AblationResult {
    /// `(intra recall, inter recall)` on wrapped real-world flows.
    pub taint: (f64, f64),
    /// `(hard-negative fraction, precision on hard negatives)` rows.
    pub hard_negatives: Vec<(f64, f64)>,
    /// `(policy, precision, recall)` rows.
    pub policies: Vec<(String, f64, f64)>,
}

/// Runs the experiment.
pub fn run(quick: bool) -> AblationResult {
    crate::banner(
        "E19",
        "ablations: interprocedural taint, hard negatives, verdict policy",
        "design-choice ablations promised in DESIGN.md §4",
    );

    // (a) Interprocedural summaries. Real-world tier wraps sources/sinks in
    // team helpers; intraprocedural analysis goes blind.
    let n = if quick { 60 } else { 200 };
    let taint_corpus = DatasetBuilder::new(1901)
        .vulnerable_count(n)
        .vulnerable_fraction(0.5)
        .cwe_distribution(CweDistribution::new(vec![
            (Cwe::SqlInjection, 2.0),
            (Cwe::CommandInjection, 1.0),
            (Cwe::CrossSiteScripting, 1.0),
            (Cwe::PathTraversal, 1.0),
        ]))
        .teams(vec![StyleProfile {
            helper_wrap_prob: 0.9, // force interprocedural distance
            ..StyleProfile::mainstream()
        }])
        .tier_mix(vec![(Tier::RealWorld, 1.0)])
        .build();
    let config = TaintConfig::default_config();
    let mut intra_hits = 0usize;
    let mut inter_hits = 0usize;
    let mut total = 0usize;
    for s in taint_corpus.iter().filter(|s| s.label) {
        let Ok(p) = vulnman_lang::parse(&s.source) else { continue };
        total += 1;
        if TaintAnalysis::run_intraprocedural(&p, &config).function_has_finding(&s.target_fn) {
            intra_hits += 1;
        }
        if TaintAnalysis::run(&p, &config).function_has_finding(&s.target_fn) {
            inter_hits += 1;
        }
    }
    let taint = (intra_hits as f64 / total as f64, inter_hits as f64 / total as f64);
    let mut t = Table::new(vec!["taint analysis", "recall on wrapped real-world flows"]);
    t.row(vec!["intraprocedural (no summaries)".into(), fmt3(taint.0)]);
    t.row(vec!["interprocedural (summaries)".into(), fmt3(taint.1)]);
    t.print("E19.a  what function summaries buy");

    // (b) Hard negatives in training.
    let hard_eval = DatasetBuilder::new(1902)
        .vulnerable_count(if quick { 60 } else { 150 })
        .vulnerable_fraction(0.5)
        .hard_negative_fraction(1.0)
        .build();
    let mut hard_rows = Vec::new();
    let mut t2 = Table::new(vec![
        "hard-negative fraction in training",
        "precision on patched-twin negatives",
        "recall",
    ]);
    for frac in [0.0, 0.5, 1.0] {
        let train = DatasetBuilder::new(1903)
            .vulnerable_count(if quick { 100 } else { 250 })
            .vulnerable_fraction(0.5)
            .hard_negative_fraction(frac)
            .build();
        let mut model = model_zoo(67).remove(0);
        model.train(&train);
        let m = model.evaluate(&hard_eval);
        t2.row(vec![fmt3(frac), fmt3(m.precision()), fmt3(m.recall())]);
        hard_rows.push((frac, m.precision()));
    }
    t2.print("E19.b  hard negatives teach the difference between flaw and fix");

    // (c) Verdict combination policy across a heterogeneous registry.
    let train = DatasetBuilder::new(1904).vulnerable_count(if quick { 100 } else { 250 }).build();
    let split = stratified_split(
        &DatasetBuilder::new(1905)
            .vulnerable_count(if quick { 60 } else { 150 })
            .vulnerable_fraction(0.3)
            .build(),
        0.99,
        1,
    );
    let mut policies = Vec::new();
    let mut t3 = Table::new(vec!["combine policy", "precision", "recall", "F1"]);
    for (name, policy) in [
        ("Any (union)", vulnman_core::CombinePolicy::Any),
        ("Majority", vulnman_core::CombinePolicy::Majority),
    ] {
        let mut registry = DetectorRegistry::new().with_policy(policy);
        registry.register(Box::new(RuleBasedDetector::standard()));
        for mut m in model_zoo(69).into_iter().take(2) {
            m.train(&train);
            registry.register(Box::new(MlDetector::new(m)));
        }
        let pred: Vec<bool> = split.test.iter().map(|s| registry.verdict(s).0).collect();
        let truth: Vec<bool> = split.test.iter().map(|s| s.label).collect();
        let m = Metrics::from_predictions(&pred, &truth);
        t3.row(vec![name.into(), fmt3(m.precision()), fmt3(m.recall()), fmt3(m.f1())]);
        policies.push((name.to_string(), m.precision(), m.recall()));
    }
    t3.print("E19.c  verdict combination across the detector registry");
    println!(
        "shape check: summaries recover the wrapped flows intra-analysis misses; \
         hard negatives buy precision on patched twins; union maximizes recall \
         while majority trades it for precision."
    );
    AblationResult { taint, hard_negatives: hard_rows, policies }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e19_shape() {
        let r = super::run(true);
        // (a) Summaries strictly add recall on wrapped flows.
        assert!(r.taint.1 > r.taint.0 + 0.2, "{:?}", r.taint);
        assert!(r.taint.1 > 0.95, "interprocedural should be near-complete: {:?}", r.taint);
        // (b) Hard negatives improve precision on patched twins.
        let first = r.hard_negatives.first().unwrap().1;
        let last = r.hard_negatives.last().unwrap().1;
        assert!(last > first, "{:?}", r.hard_negatives);
        // (c) Union recall ≥ majority recall; majority precision ≥ union.
        let any = &r.policies[0];
        let maj = &r.policies[1];
        assert!(any.2 >= maj.2 - 1e-9, "{:?}", r.policies);
        assert!(maj.1 >= any.1 - 1e-9, "{:?}", r.policies);
    }
}
