//! E08 — Gap Observation 4: synthetic duplication inflates benchmarks.
//!
//! Paper anchors: synthetic datasets "introduce huge duplicate slices"
//! (Allamanis) and models "trained with such unrealistic synthetic datasets
//! lead to more than 50% performance drop in practice" (Chakraborty et al.).

use vulnman_core::report::{fmt3, pct, Table};
use vulnman_ml::features::NormalizedTokenFeatures;
use vulnman_ml::knn::Knn;
use vulnman_ml::pipeline::DetectionModel;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// `(dup factor, duplicate fraction, inflated F1, true F1, relative gap)`.
pub type DupRow = (usize, f64, f64, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<DupRow> {
    crate::banner(
        "E08",
        "near-duplicate slices: inflated benchmark scores vs true generalization",
        "\"synthetic datasets introduce huge duplicate slices … more than 50% \
         performance drop in practice\" (Gap 4)",
    );
    let base_n = if quick { 50 } else { 150 };
    let factors = [1usize, 2, 4, 8];

    // "In practice": the complex, multi-team reality the model actually
    // meets after the benchmark — fresh code, no clones of the training set.
    let practice = DatasetBuilder::new(808)
        .teams(StyleProfile::internal_teams())
        .vulnerable_count(if quick { 60 } else { 150 })
        .vulnerable_fraction(0.4)
        .tier_mix(vec![(Tier::Curated, 1.0), (Tier::RealWorld, 1.0)])
        .build();

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "dup factor",
        "duplicate fraction",
        "benchmark F1 (random split)",
        "true F1 (fresh corpus)",
        "inflation gap",
    ]);
    for (i, &k) in factors.iter().enumerate() {
        let ds = DatasetBuilder::new(801 + i as u64)
            .vulnerable_count(base_n)
            .vulnerable_fraction(0.5)
            .duplication_factor(k)
            .build();
        let dup_frac = ds.duplicate_fraction();
        // The common (flawed) evaluation: random split — near-duplicates of
        // training samples leak into the test set.
        let split = stratified_split(&ds, 0.3, 13);
        // A 1-NN clone matcher over identifier-normalized tokens — the
        // purest similarity model and the family most inflated by leakage.
        let mut model = DetectionModel::new(
            "clone-1nn",
            Box::new(NormalizedTokenFeatures::new(512)),
            Box::new(Knn::new(1)),
        );
        model.train(&split.train);
        let inflated = model.evaluate(&split.test).f1();
        let true_f1 = model.evaluate(&practice).f1();
        let gap = if inflated > 0.0 { 1.0 - true_f1 / inflated } else { 0.0 };
        t.row(vec![k.to_string(), pct(dup_frac), fmt3(inflated), fmt3(true_f1), pct(gap)]);
        rows.push((k, dup_frac, inflated, true_f1, gap));
    }
    t.print("E08  clone-1nn under increasing synthetic duplication");
    println!(
        "shape check: random-split scores rise with duplication while true scores \
         stagnate or fall — the inflation gap the paper warns about. Deduplicated \
         training (`Dataset::deduplicated`) removes the artifact."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e08_shape() {
        let rows = super::run(true);
        let first = &rows[0];
        let last = rows.last().unwrap();
        // Duplicate fraction rises with the factor.
        assert!(last.1 > first.1 + 0.3, "{rows:?}");
        // The inflation gap (benchmark vs practice) widens with duplication.
        assert!(last.4 > first.4, "gap should widen: {} -> {} ({rows:?})", first.4, last.4);
        // At high duplication the benchmark number materially overstates
        // practice.
        assert!(last.2 > last.3, "inflated {} vs true {}", last.2, last.3);
    }
}
