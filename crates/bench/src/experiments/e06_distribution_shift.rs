//! E06 — Gap Observation 3: performance collapse on complex real-world code.
//!
//! Paper anchor: "an existing study has observed more than 50% performance
//! drop when applying academic models to more complex open-source software
//! datasets" (citing Steenhoek et al.).

use vulnman_core::report::{fmt3, pct, Table};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// `(model, benchmark F1, real-world F1, relative drop)` rows.
pub type ShiftRow = (String, f64, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<ShiftRow> {
    crate::banner(
        "E06",
        "benchmark-tier training vs real-world-tier evaluation",
        "\">50% performance drop when applying academic models to more complex \
         datasets\" (Gap 3)",
    );
    let n = if quick { 400 } else { 500 };

    // The academic benchmark: simple/curated tiers, mainstream style.
    let benchmark = DatasetBuilder::new(601)
        .vulnerable_count(n)
        .vulnerable_fraction(0.5)
        .tier_mix(vec![(Tier::Simple, 2.0), (Tier::Curated, 1.0)])
        .build();
    let bench_split = stratified_split(&benchmark, 0.3, 11);

    // The complex industrial reality: real-world tier, divergent teams,
    // imbalanced.
    let industrial = DatasetBuilder::new(602)
        .teams(StyleProfile::internal_teams())
        .vulnerable_count(n / 2)
        .vulnerable_fraction(0.25)
        .tier_mix(vec![(Tier::RealWorld, 1.0)])
        .build();

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "model",
        "benchmark F1 (in-distribution)",
        "real-world F1",
        "relative drop",
    ]);
    for mut model in model_zoo(23) {
        model.train(&bench_split.train);
        let bench_f1 = model.evaluate(&bench_split.test).f1();
        let real_f1 = model.evaluate(&industrial).f1();
        let drop = if bench_f1 > 0.0 { 1.0 - real_f1 / bench_f1 } else { 0.0 };
        t.row(vec![model.name().to_string(), fmt3(bench_f1), fmt3(real_f1), pct(drop)]);
        rows.push((model.name().to_string(), bench_f1, real_f1, drop));
    }
    t.print("E06  benchmark-trained models on real-world-tier industrial code");
    let mean_drop: f64 = rows.iter().map(|r| r.3).sum::<f64>() / rows.len() as f64;
    println!(
        "mean relative F1 drop: {} (paper: >50% drop reported on complex datasets)",
        pct(mean_drop)
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e06_shape() {
        let rows = super::run(true);
        // Every family degrades under shift; the mean drop is severe.
        assert!(rows.iter().all(|r| r.2 <= r.1 + 0.05), "{rows:?}");
        let mean_drop: f64 = rows.iter().map(|r| r.3).sum::<f64>() / rows.len() as f64;
        assert!(mean_drop > 0.25, "mean drop should be severe: {mean_drop}");
        // At least one surface-token family takes a catastrophic (>50%) hit.
        assert!(rows.iter().any(|r| r.3 > 0.4), "{rows:?}");
    }
}
