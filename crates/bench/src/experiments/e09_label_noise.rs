//! E09 — Gap Observation 4: label quality.
//!
//! Paper anchor: "up to 70% vulnerability labels in open-source GitHub
//! repositories are inaccurate", while industry pipelines (mandatory review,
//! quality bots) preserve label quality.

use vulnman_core::report::{fmt3, pct, Table};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;

/// `(noise rate, token-lr F1, graph-rf F1)` rows.
pub type NoiseRow = (f64, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<NoiseRow> {
    crate::banner(
        "E09",
        "training-label noise: industry-clean vs OSS-scraped labels",
        "\"up to 70% vulnerability labels in open-source GitHub repositories are \
         inaccurate\" (Gap 4)",
    );
    let n = if quick { 200 } else { 400 };
    let noise_levels = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7];

    let mut rows = Vec::new();
    let mut t = Table::new(vec!["label noise", "token-lr F1", "graph-rf F1", "note"]);
    for (i, &noise) in noise_levels.iter().enumerate() {
        let ds = DatasetBuilder::new(901 + i as u64)
            .vulnerable_count(n)
            .vulnerable_fraction(0.5)
            .label_noise(noise)
            .build();
        // Train on noisy observed labels, evaluate against ground truth on a
        // held-out clean slice.
        let split = stratified_split(&ds, 0.3, 17);
        let mut lr = model_zoo(37).remove(0);
        let mut rf = model_zoo(37).remove(2);
        lr.train(&split.train);
        rf.train(&split.train);
        let lr_f1 = lr.evaluate(&split.test).f1();
        let rf_f1 = rf.evaluate(&split.test).f1();
        let note = if noise == 0.0 {
            "industry-quality labels"
        } else if noise >= 0.69 {
            "worst-case OSS scrape (paper)"
        } else {
            ""
        };
        t.row(vec![pct(noise), fmt3(lr_f1), fmt3(rf_f1), note.into()]);
        rows.push((noise, lr_f1, rf_f1));
    }
    t.print("E09  F1 (vs ground truth) after training on noisy labels");
    let clean = rows[0];
    let worst = rows[rows.len() - 1];
    println!(
        "degradation from clean to 70% noise: token-lr {} → {}, graph-rf {} → {}",
        fmt3(clean.1),
        fmt3(worst.1),
        fmt3(clean.2),
        fmt3(worst.2)
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e09_shape() {
        let rows = super::run(true);
        let clean = rows[0];
        let worst = rows.last().unwrap();
        // 70% label noise devastates both families (the structurally
        // stronger graph family has further to fall).
        assert!(worst.1 < clean.1 - 0.08, "token-lr {:?} -> {:?}", clean, worst);
        assert!(worst.2 < clean.2 - 0.25, "graph-rf {:?} -> {:?}", clean, worst);
        // Degradation is broadly monotone (allowing small non-monotone noise).
        let mid = rows[rows.len() / 2];
        assert!(mid.1 <= clean.1 + 0.05);
    }
}
