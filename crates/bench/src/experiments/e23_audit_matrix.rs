//! E23 — the detector catalog gap audit: which family sees which class.
//!
//! The paper's coverage comparison — industry platforms audit their
//! detector catalogs against public CWE rankings while academic models
//! evaluate on whatever classes their benchmark happens to contain — is
//! usually a hand-maintained document. This experiment runs the
//! machine-checked version ([`vulnman_analysis::audit`]): per catalog
//! class, a seeded vulnerable/fixed pair corpus scanned by each detector
//! family in isolation (syntactic rules, interprocedural taint, semantic
//! absint, dynamic sanitizer execution, and the trained tool-augmented
//! model), with a cell *covered* at ≥90% detection and zero false
//! positives. The per-family profiles are the point: no single technique
//! covers the catalog, and the families are complementary by
//! construction — which is exactly the multi-tool industry posture the
//! paper describes.

use vulnman_analysis::{AuditConfig, AuditEngine};
use vulnman_core::report::Table;

/// `(family, classes covered, total false-positive cells, top-25 classes
/// covered)` — one row per detector family, in matrix column order.
pub type AuditFamilyRow = (String, usize, usize, usize);

/// Runs the audit and prints the per-family coverage profile plus the
/// matrix summary. Returns one row per family for the shape test.
pub fn run(quick: bool) -> Vec<AuditFamilyRow> {
    let defaults = AuditConfig::default();
    let config = AuditConfig {
        samples_per_class: if quick { 4 } else { defaults.samples_per_class },
        jobs: if quick { 1 } else { 4 },
        ..defaults
    };
    let report =
        AuditEngine::new(config).with_ml(vulnman_core::audit_ml_verdict(config.seed)).run();

    let rows: Vec<AuditFamilyRow> = report
        .families
        .iter()
        .map(|family| {
            let covered = report
                .classes
                .iter()
                .filter(|c| c.cells.get(family).is_some_and(|cell| cell.covered))
                .count();
            let top25 = report
                .classes
                .iter()
                .filter(|c| c.top25 && c.cells.get(family).is_some_and(|cell| cell.covered))
                .count();
            let fp_cells = report
                .classes
                .iter()
                .filter(|c| c.cells.get(family).is_some_and(|cell| cell.false_positives > 0))
                .count();
            (family.clone(), covered, fp_cells, top25)
        })
        .collect();

    let n_classes = report.classes.len();
    let n_top25 = report.classes.iter().filter(|c| c.top25).count();
    let mut t = Table::new(vec!["family", "classes covered", "top-25 covered", "cells with FPs"]);
    for (family, covered, fp_cells, top25) in &rows {
        t.row(vec![
            family.clone(),
            format!("{covered}/{n_classes}"),
            format!("{top25}/{n_top25}"),
            format!("{fp_cells}"),
        ]);
    }
    t.print("E23 — detector catalog gap audit (CWE × family coverage)");
    println!(
        "matrix: {} of {} cells covered, {} blind class(es); every class needs \
         at least one family, no family needs every class",
        report.covered_count(),
        report.cell_count(),
        report.blind_classes().len()
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e23_shape() {
        let rows = super::run(true);
        assert_eq!(rows.len(), 5, "rules, taint, semantic, dynamic, ml");
        let get = |name: &str| rows.iter().find(|r| r.0 == name).expect("family present");

        // No family covers everything; together they cover everything
        // (blind_classes is asserted empty via the printed summary's
        // inputs — re-derive it here from the rows' complement).
        let n_classes = 17;
        for (family, covered, _, _) in &rows {
            assert!(*covered < n_classes, "{family} alone must not cover the whole catalog");
        }

        // The semantic family holds the zero-FP bar and owns the gap
        // classes no syntactic rule can see.
        let (_, semantic_covered, semantic_fp, _) = get("semantic");
        assert!(*semantic_covered >= 7, "semantic covers the gap classes, got {semantic_covered}");
        assert_eq!(*semantic_fp, 0, "the proof-carrying family must hold zero false positives");

        // The dynamic family is blind to the logic classes by design.
        let (_, dynamic_covered, _, _) = get("dynamic");
        assert!(
            *dynamic_covered <= n_classes - 7,
            "dynamic must stay blind to the interpreter-silent classes"
        );

        // Each static technique covers something on its own.
        for name in ["rules", "taint", "semantic"] {
            assert!(get(name).1 > 0, "{name} must cover at least one class");
        }
    }
}
