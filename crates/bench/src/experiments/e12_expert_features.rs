//! E12 — Gap Observation 5: expert-crafted representations.
//!
//! Paper anchor: "security-related tasks often necessitate expert
//! involvement in crafting appropriate data representations", citing
//! graph/property representations built by practitioners.

use vulnman_core::report::{fmt3, Table};
use vulnman_ml::features::{
    AstStatFeatures, ComposedFeatures, ExpertFlowFeatures, FeatureExtractor, TokenNgramFeatures,
};
use vulnman_ml::linear::LogisticRegression;
use vulnman_ml::pipeline::DetectionModel;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// `(representation, overall F1, taint-CWE F1)` rows.
pub type ExpertRow = (String, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<ExpertRow> {
    crate::banner(
        "E12",
        "raw vs expert-crafted representations under a fixed classifier",
        "\"security-related tasks often necessitate expert involvement in crafting \
         appropriate data representations\" (Gap 5)",
    );
    let n = if quick { 120 } else { 400 };
    // Hard setting: real-world tier, divergent teams — where surface tokens
    // mislead and flow structure matters.
    let ds = DatasetBuilder::new(1201)
        .teams(StyleProfile::internal_teams())
        .vulnerable_count(n)
        .vulnerable_fraction(0.4)
        .tier_mix(vec![(Tier::RealWorld, 1.0)])
        .build();
    let split = stratified_split(&ds, 0.3, 23);
    let taint_test =
        split.test.filter(|s| !s.label || s.cwe.map(|c| c.is_taint_style()).unwrap_or(false));

    let mut reps: Vec<(&str, Box<dyn FeatureExtractor>)> = vec![
        ("raw tokens", Box::new(TokenNgramFeatures::new(512))),
        ("ast statistics", Box::new(AstStatFeatures)),
        ("expert flow/graph", Box::new(ExpertFlowFeatures::new())),
        (
            "tokens + expert",
            Box::new(ComposedFeatures::new(vec![
                Box::new(TokenNgramFeatures::new(512)),
                Box::new(ExpertFlowFeatures::new()),
            ])),
        ),
    ];

    let mut rows = Vec::new();
    let mut t = Table::new(vec!["representation", "overall F1", "taint-CWE subset F1"]);
    for (name, features) in reps.drain(..) {
        let dim = features.dim();
        let mut model =
            DetectionModel::new(name, features, Box::new(LogisticRegression::new(dim, 47)));
        model.train(&split.train);
        let overall = model.evaluate(&split.test).f1();
        let taint = model.evaluate(&taint_test).f1();
        t.row(vec![name.to_string(), fmt3(overall), fmt3(taint)]);
        rows.push((name.to_string(), overall, taint));
    }
    t.print("E12  logistic regression under four representations (real-world tier)");
    println!(
        "shape check: expert flow features beat raw tokens on hard data — \
         the practitioner-knowledge advantage of Gap 5; composition wins overall."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e12_shape() {
        let rows = super::run(true);
        let f1 = |name: &str| rows.iter().find(|r| r.0 == name).map(|r| r.1).expect("row present");
        let tokens = f1("raw tokens");
        let expert = f1("expert flow/graph");
        let combo = f1("tokens + expert");
        assert!(
            expert > tokens,
            "expert features should beat raw tokens on hard data: {expert} vs {tokens}"
        );
        assert!(combo > tokens, "composition should dominate raw tokens: {combo} vs {tokens}");
        let _ = expert;
    }
}
