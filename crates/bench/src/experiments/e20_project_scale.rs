//! E20 — Gap 3's scalability concern: per-unit vs whole-project analysis.
//!
//! Paper anchor: academic models' "untested performance on extensive and
//! diverse industry codebases and infrastructures" and Gap 1's "complicated
//! requirements of scalability". Research datasets are function- or
//! file-level; industrial flaws span files. This experiment plants
//! cross-unit flows in multi-file projects and compares the two scanning
//! strategies industry must choose between, on both recall and wall-time.

use std::time::Instant;
use vulnman_core::report::{fmt3, Table};
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_synth::cwe::Cwe;
use vulnman_synth::project::{generate_project, Project, ProjectFlaw};
use vulnman_synth::style::StyleProfile;

/// Result bundle.
#[derive(Debug)]
pub struct ProjectScaleResult {
    /// `(strategy, recall on intra-unit flaws, recall on cross-unit flaws,
    /// false positives on clean projects)` rows.
    pub strategies: Vec<(String, f64, f64, usize)>,
    /// `(units per project, per-unit ms, whole-project ms)` scaling rows.
    pub scaling: Vec<(usize, f64, f64)>,
}

fn scan_per_unit(p: &Project, config: &TaintConfig) -> bool {
    p.units.iter().any(|u| {
        vulnman_lang::parse(&u.source)
            .map(|prog| !TaintAnalysis::run(&prog, config).findings.is_empty())
            .unwrap_or(false)
    })
}

fn scan_whole(p: &Project, config: &TaintConfig) -> bool {
    vulnman_lang::parse(&p.whole_source())
        .map(|prog| !TaintAnalysis::run(&prog, config).findings.is_empty())
        .unwrap_or(false)
}

/// Runs the experiment.
pub fn run(quick: bool) -> ProjectScaleResult {
    crate::banner(
        "E20",
        "per-unit scanning vs whole-project analysis on multi-file projects",
        "\"untested performance on extensive and diverse industry codebases\" (Gap 3); \
         \"complicated requirements of scalability\" (Gap 1)",
    );
    let n_projects = if quick { 12 } else { 40 };
    let units_per = 5;
    let config = TaintConfig::default_config();
    let style = StyleProfile::mainstream();
    let taint_classes =
        [Cwe::SqlInjection, Cwe::CommandInjection, Cwe::CrossSiteScripting, Cwe::PathTraversal];

    // Build the project population: one third intra-unit, cross-unit, clean.
    let mut intra = Vec::new();
    let mut cross = Vec::new();
    let mut clean = Vec::new();
    for i in 0..n_projects {
        let cwe = taint_classes[i % taint_classes.len()];
        intra.push(generate_project(
            2000 + i as u64,
            &style,
            units_per,
            ProjectFlaw::IntraUnit(cwe),
        ));
        cross.push(generate_project(
            3000 + i as u64,
            &style,
            units_per,
            ProjectFlaw::CrossUnit(cwe),
        ));
        clean.push(generate_project(4000 + i as u64, &style, units_per, ProjectFlaw::Clean));
    }

    let recall = |projects: &[Project], f: &dyn Fn(&Project) -> bool| {
        projects.iter().filter(|p| f(p)).count() as f64 / projects.len() as f64
    };
    // Per-scan wall-clock for each strategy lands in a histogram, so the
    // `--metrics-out` snapshot carries the full latency distribution rather
    // than only the table's per-size means.
    let metrics = vulnman_obs::Registry::new();
    let scanned = metrics.counter("e20.projects_scanned");
    let hists = [
        metrics.histogram("e20.per_unit_scan_micros"),
        metrics.histogram("e20.whole_project_scan_micros"),
    ];
    let mut strategies = Vec::new();
    let mut t = Table::new(vec![
        "strategy",
        "intra-unit recall",
        "cross-unit recall",
        "false alarms on clean",
    ]);
    for (idx, (name, scan)) in [
        (
            "per-unit (file-level, research-style)",
            &scan_per_unit as &dyn Fn(&Project, &TaintConfig) -> bool,
        ),
        ("whole-project (industry requirement)", &scan_whole),
    ]
    .into_iter()
    .enumerate()
    {
        let hist = &hists[idx];
        let timed = |p: &Project| {
            scanned.inc();
            let t0 = Instant::now();
            let hit = scan(p, &config);
            hist.observe_duration(t0.elapsed());
            hit
        };
        let ri = recall(&intra, &timed);
        let rc = recall(&cross, &timed);
        let fp = clean.iter().filter(|p| timed(p)).count();
        t.row(vec![name.into(), fmt3(ri), fmt3(rc), fp.to_string()]);
        strategies.push((name.to_string(), ri, rc, fp));
    }
    t.print("E20.a  what file-level analysis misses");

    // Scaling: wall-time of each strategy as projects grow.
    let sizes: Vec<usize> = if quick { vec![2, 8, 16] } else { vec![2, 8, 16, 32, 64] };
    let mut scaling = Vec::new();
    let mut t2 = Table::new(vec!["units/project", "per-unit scan ms", "whole-project scan ms"]);
    for &n in &sizes {
        let p =
            generate_project(5000 + n as u64, &style, n, ProjectFlaw::CrossUnit(Cwe::SqlInjection));
        let reps = if quick { 3 } else { 5 };
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = scan_per_unit(&p, &config);
        }
        hists[0].observe_duration(t0.elapsed() / reps as u32);
        let per_unit_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = scan_whole(&p, &config);
        }
        hists[1].observe_duration(t1.elapsed() / reps as u32);
        let whole_ms = t1.elapsed().as_secs_f64() * 1000.0 / reps as f64;
        t2.row(vec![n.to_string(), fmt3(per_unit_ms), fmt3(whole_ms)]);
        scaling.push((n, per_unit_ms, whole_ms));
    }
    t2.print("E20.b  scan wall-time vs project size");
    println!(
        "shape check: both strategies agree on intra-unit flaws and clean projects, \
         but only whole-project analysis sees cross-file flows — at a superlinear \
         wall-time cost as projects grow, which is the scalability bill the paper \
         says industry must (and academia rarely does) account for."
    );
    crate::dump_metrics(&metrics.snapshot());
    ProjectScaleResult { strategies, scaling }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e20_shape() {
        let r = super::run(true);
        let per_unit = &r.strategies[0];
        let whole = &r.strategies[1];
        // Equal on intra-unit flaws; whole-project wins on cross-unit.
        assert!((per_unit.1 - whole.1).abs() < 0.2, "{:?}", r.strategies);
        assert_eq!(per_unit.2, 0.0, "file-level analysis is blind to cross-unit flows");
        assert!(whole.2 > 0.9, "{:?}", r.strategies);
        // Neither strategy false-alarms on clean projects.
        assert_eq!(per_unit.3, 0);
        assert_eq!(whole.3, 0);
        // Whole-project cost grows with project size.
        let first = r.scaling.first().unwrap();
        let last = r.scaling.last().unwrap();
        assert!(last.2 > first.2, "{:?}", r.scaling);
    }
}
