//! E21 — clone-aware splitting removes duplication-inflated accuracy.
//!
//! E08 showed the *symptom*: random splits over duplicated corpora report
//! scores that collapse on fresh code. This experiment demonstrates the
//! *control*: a clone-aware splitter ([`vulnman_ml::split::clone_aware_split`])
//! that keeps MinHash/LSH-verified clone classes on one side of the split.
//! The leakage score quantifies how many test samples have a near-clone in
//! training; removing that leakage deflates the reported accuracy toward the
//! honest number — at a scale exact-hash dedup cannot reach, since the
//! duplicates here are alpha-renamed, comment-shuffled near-clones.

use vulnman_core::report::{fmt3, pct, Table};
use vulnman_lang::clone::CloneConfig;
use vulnman_ml::features::NormalizedTokenFeatures;
use vulnman_ml::knn::Knn;
use vulnman_ml::pipeline::DetectionModel;
use vulnman_ml::split::{clone_aware_split, leakage_score, stratified_split, Split};
use vulnman_synth::dataset::DatasetBuilder;

/// `(dup factor, leakage score of the random split, random-split accuracy,
/// clone-aware accuracy, inflation delta)`.
pub type LeakRow = (usize, f64, f64, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<LeakRow> {
    crate::banner(
        "E21",
        "clone-aware train/test splitting: leakage score and accuracy deflation",
        "near-duplicate leakage inflates reported accuracy; keeping clone \
         classes on one side of the split removes the artifact (Gap 4 control)",
    );
    let base_n = if quick { 40 } else { 120 };
    let factors = [1usize, 2, 4];
    let config = CloneConfig::default();

    let accuracy = |split: &Split| {
        // The clone/similarity model family — the one leakage inflates most.
        let mut model = DetectionModel::new(
            "clone-1nn",
            Box::new(NormalizedTokenFeatures::new(512)),
            Box::new(Knn::new(1)),
        );
        model.train(&split.train);
        model.evaluate(&split.test).accuracy()
    };

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "dup factor",
        "leakage (random split)",
        "accuracy (random split)",
        "accuracy (clone-aware split)",
        "inflation removed",
    ]);
    for (i, &k) in factors.iter().enumerate() {
        let ds = DatasetBuilder::new(2101 + i as u64)
            .vulnerable_count(base_n)
            .vulnerable_fraction(0.5)
            .duplication_factor(k)
            .build();
        let random = stratified_split(&ds, 0.3, 17);
        let clean = clone_aware_split(&ds, 0.3, 17, &config);
        let leak = leakage_score(&random, &config);
        debug_assert_eq!(leakage_score(&clean, &config), 0.0);
        let inflated = accuracy(&random);
        let honest = accuracy(&clean);
        t.row(vec![
            k.to_string(),
            pct(leak),
            fmt3(inflated),
            fmt3(honest),
            fmt3(inflated - honest),
        ]);
        rows.push((k, leak, inflated, honest, inflated - honest));
    }
    t.print("E21  random vs clone-aware splits under increasing duplication");
    println!(
        "shape check: the random split's leakage score and accuracy rise with \
         duplication while the clone-aware split stays flat — the reported \
         number was measuring memorized clones, not detection."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e21_shape() {
        let rows = super::run(true);
        let first = &rows[0];
        let last = rows.last().unwrap();
        // Leakage grows with duplication.
        assert!(last.1 > first.1, "leakage should grow: {rows:?}");
        assert!(last.1 > 0.2, "duplicated corpus must leak: {rows:?}");
        // At high duplication the random split overstates accuracy relative
        // to the clone-aware split of the very same dataset.
        assert!(last.2 > last.3, "inflated {} vs honest {} ({rows:?})", last.2, last.3);
    }
}
