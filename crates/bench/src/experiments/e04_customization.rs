//! E04 — Gap Observation 2: customization via fine-tuning.
//!
//! Paper anchor: "models that are fine-tuned for specific scenarios
//! significantly outperform their generic, pre-trained counterparts"
//! (citing Steenhoek et al.), and the need to adapt tools to per-team
//! sanitizer vocabularies and coding styles.

use vulnman_core::customize::{customize_to_team, CustomizationOutcome, SecurityStandard};
use vulnman_core::report::{fmt3, Table};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::cwe::{Cwe, CweDistribution};
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

fn injection_heavy() -> CweDistribution {
    CweDistribution::new(vec![
        (Cwe::SqlInjection, 3.0),
        (Cwe::CommandInjection, 2.0),
        (Cwe::CrossSiteScripting, 2.0),
        (Cwe::PathTraversal, 2.0),
        (Cwe::FormatString, 1.0),
    ])
}

/// Runs the experiment; returns one outcome per team, ordered by style
/// distance.
pub fn run(quick: bool) -> Vec<CustomizationOutcome> {
    crate::banner(
        "E04",
        "generic vs team-fine-tuned models across style-divergent teams",
        "\"models that are fine-tuned for specific scenarios significantly outperform \
         their generic, pre-trained counterparts\" (Gap 2)",
    );
    let n_generic = if quick { 150 } else { 400 };
    let n_team = if quick { 250 } else { 400 };

    let generic_corpus = DatasetBuilder::new(401).vulnerable_count(n_generic).build();
    let mainstream = StyleProfile::mainstream();

    let mut outcomes = Vec::new();
    let mut t = Table::new(vec![
        "team",
        "style distance",
        "generic F1",
        "fine-tuned F1",
        "lift",
        "custom sanitizers",
    ]);
    for (i, team) in StyleProfile::internal_teams().into_iter().enumerate() {
        let team_ds = DatasetBuilder::new(402 + i as u64 * 97)
            .teams(vec![team.clone()])
            .vulnerable_count(n_team)
            .cwe_distribution(injection_heavy())
            .hard_negative_fraction(0.7)
            .tier_mix(vec![(Tier::Curated, 1.0)])
            .build();
        let split = stratified_split(&team_ds, 0.4, 5);

        let mut model = model_zoo(17).remove(0); // token-lr: style-sensitive family
        model.train(&generic_corpus);
        let distance = mainstream.distance(&team);
        let outcome = customize_to_team(&mut model, &team, distance, &split.train, &split.test);
        let standard = SecurityStandard::for_team(&team);
        t.row(vec![
            outcome.team.clone(),
            fmt3(outcome.style_distance),
            fmt3(outcome.generic.f1()),
            fmt3(outcome.fine_tuned.f1()),
            fmt3(outcome.f1_lift()),
            standard.custom_sanitizers.len().to_string(),
        ]);
        outcomes.push(outcome);
    }
    t.print("E04  token-lr: generic vs fine-tuned per team (injection-heavy backlog)");
    println!(
        "shape check: every team gains from fine-tuning; lift grows with style distance \
         (alias-prefix teams hide sanitizer vocabulary from generic models)."
    );
    outcomes
}

#[cfg(test)]
mod tests {
    #[test]
    fn e04_shape() {
        let outcomes = super::run(true);
        assert_eq!(outcomes.len(), 3);
        // Fine-tuning helps on average, decisively on the most divergent team.
        let mean_lift: f64 =
            outcomes.iter().map(|o| o.f1_lift()).sum::<f64>() / outcomes.len() as f64;
        assert!(mean_lift > 0.0, "mean lift {mean_lift}");
        let most_divergent = outcomes.last().unwrap();
        assert!(most_divergent.f1_lift() > 0.03, "kernel team lift {}", most_divergent.f1_lift());
    }
}
