//! E07 — Gap Observation 3 / Future Direction Proposal 3: financial
//! implications.
//!
//! Paper anchor: "understanding the financial benefits … such as computation
//! power versus human resources"; Proposal 3 asks for "integrating the
//! savings in salary or labor costs into the analysis of models'
//! performances".

use vulnman_core::costmodel::{break_even_precision, price_deployment, CostParams};
use vulnman_core::report::{fmt3, usd, Table};
use vulnman_ml::operating_point::{
    expected_calibration_error, optimal_threshold, CellValues, PlattScaler,
};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;

/// `(model, precision, recall, net value, triage cost)` rows.
pub type FinanceRow = (String, f64, f64, f64, f64);

/// `(model, raw ECE, calibrated ECE, net value @0.5, net value @tuned)`.
pub type OperatingRow = (String, f64, f64, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> (Vec<FinanceRow>, Vec<OperatingRow>) {
    crate::banner(
        "E07",
        "pricing detector deployments: compute vs analyst hours vs breach risk",
        "\"the evaluation metrics and scenarios employed in academia provide limited \
         insight into financial impacts\" (Gap 3, Proposal 3)",
    );
    let n = if quick { 100 } else { 300 };
    let params = CostParams::default();
    // One registry across both model loops: train/predict wall-clock per
    // model family accumulates under `ml.<name>.*`.
    let metrics = vulnman_obs::Registry::new();

    // Realistic deployment window: imbalanced stream.
    let train = DatasetBuilder::new(701).vulnerable_count(n).vulnerable_fraction(0.5).build();
    let split = stratified_split(&train, 0.2, 1);
    let eval = DatasetBuilder::new(702)
        .vulnerable_count(if quick { 40 } else { 120 })
        .vulnerable_fraction(0.08)
        .build();

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "model",
        "precision",
        "recall",
        "triage cost",
        "prevented loss",
        "net value",
    ]);
    for mut model in model_zoo(29) {
        model.attach_metrics(&metrics);
        model.train(&split.train);
        let m = model.evaluate(&eval);
        let r = price_deployment(&m, &params);
        t.row(vec![
            model.name().to_string(),
            fmt3(m.precision()),
            fmt3(m.recall()),
            usd(r.triage_cost),
            usd(r.prevented_loss),
            usd(r.net_value),
        ]);
        rows.push((
            model.name().to_string(),
            m.precision(),
            m.recall(),
            r.net_value,
            r.triage_cost,
        ));
    }
    t.print("E07.a  per-model deployment economics at 8% base rate");

    // Break-even frontier: the precision below which deployment destroys
    // value, as a function of expected breach cost.
    let mut t2 = Table::new(vec!["breach cost", "exploitability", "break-even precision"]);
    for &(breach, expl) in &[
        (1_000_000.0, 0.25),
        (250_000.0, 0.25),
        (50_000.0, 0.25),
        (50_000.0, 0.05),
        (10_000.0, 0.05),
    ] {
        let p = CostParams { breach_cost_usd: breach, mean_exploitability: expl, ..params };
        t2.row(vec![usd(breach), fmt3(expl), format!("{:.4}", break_even_precision(&p, 0.8))]);
    }
    t2.print("E07.b  break-even precision frontier");

    // E07.c: the deployment threshold is an economic choice, and scores must
    // be calibrated before they can drive one (Gap 2's "confidence in
    // predictive outcomes"). Tune on a validation slice, report on eval.
    let tune = DatasetBuilder::new(703)
        .vulnerable_count(if quick { 40 } else { 120 })
        .vulnerable_fraction(0.08)
        .build();
    let cell_values = CellValues {
        tp: params.breach_cost_usd * params.mean_exploitability
            - params.fix_hours_per_vuln * params.analyst_hourly_usd
            - params.triage_minutes_per_finding / 60.0 * params.analyst_hourly_usd,
        fp: -(params.triage_minutes_per_finding / 60.0 * params.analyst_hourly_usd),
        tn: 0.0,
        fn_: -params.breach_cost_usd * params.mean_exploitability,
    };
    let mut op_rows: Vec<OperatingRow> = Vec::new();
    let mut t3 = Table::new(vec![
        "model",
        "ECE raw",
        "ECE calibrated",
        "tuned threshold",
        "net value @0.5",
        "net value @tuned",
    ]);
    for mut model in model_zoo(29) {
        model.attach_metrics(&metrics);
        model.train(&split.train);
        let tune_truth: Vec<bool> = tune.iter().map(|s| s.label).collect();
        let raw_scores = model.scores(&tune);
        let scaler = PlattScaler::fit(&raw_scores, &tune_truth);
        let cal_scores: Vec<f64> = raw_scores.iter().map(|&s| scaler.calibrate(s)).collect();
        let ece_raw = expected_calibration_error(&raw_scores, &tune_truth, 10);
        let ece_cal = expected_calibration_error(&cal_scores, &tune_truth, 10);
        let point = optimal_threshold(&cal_scores, &tune_truth, &cell_values)
            .expect("calibrated scores are finite");
        // Apply both operating points to the held-out eval window.
        let eval_truth: Vec<bool> = eval.iter().map(|s| s.label).collect();
        let eval_scores: Vec<f64> =
            model.scores(&eval).iter().map(|&s| scaler.calibrate(s)).collect();
        let value_at = |th: f64| {
            let pred: Vec<bool> = eval_scores.iter().map(|&s| s >= th).collect();
            cell_values.value_of(&vulnman_ml::eval::Metrics::from_predictions(&pred, &eval_truth))
        };
        let (v_half, v_tuned) = (value_at(0.5), value_at(point.threshold));
        t3.row(vec![
            model.name().to_string(),
            fmt3(ece_raw),
            fmt3(ece_cal),
            fmt3(point.threshold),
            usd(v_half),
            usd(v_tuned),
        ]);
        op_rows.push((model.name().to_string(), ece_raw, ece_cal, v_half, v_tuned));
    }
    t3.print("E07.c  calibration + cost-optimal operating points");
    println!(
        "shape check: high-breach-cost environments tolerate noisy models; low-stakes \
         products demand precision academic evaluations rarely report. Calibrated, \
         cost-tuned thresholds recover value the default 0.5 leaves on the table."
    );
    crate::dump_metrics(&metrics.snapshot());
    (rows, op_rows)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e07_shape() {
        let (rows, op_rows) = super::run(true);
        assert_eq!(rows.len(), 5);
        // Calibration reduces ECE; cost-tuned thresholds recover value.
        for (name, ece_raw, ece_cal, v_half, v_tuned) in &op_rows {
            assert!(ece_cal <= &(ece_raw + 0.02), "{name}: ECE {ece_raw} -> {ece_cal}");
            assert!(
                v_tuned >= v_half,
                "{name}: tuned operating point must not lose to 0.5 ({v_half} vs {v_tuned})"
            );
        }
        // Cheap-breach regimes demand ever-higher precision.
        let p = vulnman_core::costmodel::CostParams::default();
        let rich = vulnman_core::costmodel::break_even_precision(
            &vulnman_core::costmodel::CostParams { breach_cost_usd: 1_000_000.0, ..p },
            0.8,
        );
        let poor = vulnman_core::costmodel::break_even_precision(
            &vulnman_core::costmodel::CostParams {
                breach_cost_usd: 20_000.0,
                mean_exploitability: 0.05,
                ..p
            },
            0.8,
        );
        assert!(poor > rich, "poor {poor} should exceed rich {rich}");
    }
}
