//! The experiment index (see `DESIGN.md` §4 and `EXPERIMENTS.md`).

pub mod e01_workflow;
pub mod e02_agreement;
pub mod e03_specialization;
pub mod e04_customization;
pub mod e05_imbalance;
pub mod e06_distribution_shift;
pub mod e07_financial;
pub mod e08_duplication;
pub mod e09_label_noise;
pub mod e10_data_scale;
pub mod e11_multimodal;
pub mod e12_expert_features;
pub mod e13_anonymization;
pub mod e14_artifacts;
pub mod e15_repair_gap;
pub mod e16_training_sft;
pub mod e17_static_vs_dynamic;
pub mod e18_feedback_loop;
pub mod e19_ablations;
pub mod e20_project_scale;
pub mod e21_clone_leakage;
pub mod e22_graph_triage;
pub mod e23_audit_matrix;

/// Runs every experiment in index order.
pub fn run_all(quick: bool) {
    e01_workflow::run(quick);
    e02_agreement::run(quick);
    e03_specialization::run(quick);
    e04_customization::run(quick);
    e05_imbalance::run(quick);
    e06_distribution_shift::run(quick);
    e07_financial::run(quick);
    e08_duplication::run(quick);
    e09_label_noise::run(quick);
    e10_data_scale::run(quick);
    e11_multimodal::run(quick);
    e12_expert_features::run(quick);
    e13_anonymization::run(quick);
    e14_artifacts::run(quick);
    e15_repair_gap::run(quick);
    e16_training_sft::run(quick);
    e17_static_vs_dynamic::run(quick);
    e18_feedback_loop::run(quick);
    e19_ablations::run(quick);
    e20_project_scale::run(quick);
    e21_clone_leakage::run(quick);
    e22_graph_triage::run(quick);
    e23_audit_matrix::run(quick);
}
