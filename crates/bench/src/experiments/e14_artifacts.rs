//! E14 — Gap Observation 2: artifact availability meta-study.
//!
//! Paper anchor (citing Nong et al.): "only a small portion (25.5%) of the
//! 55 examined papers on DL-based vulnerability detection provided public
//! available tools. 54.5% available tools contain incomplete documentation
//! and 27.3% of them have non-functional implementation."

use vulnman_core::artifacts::{survey_distribution, ReleaseProcess, SurveyDistribution};
use vulnman_core::report::{pct, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> SurveyDistribution {
    crate::banner(
        "E14",
        "research-artifact availability as a release-process outcome",
        "\"only 25.5% of the 55 examined papers provided public tools; 54.5% … \
         incomplete documentation; 27.3% … non-functional\" (Gap 2)",
    );
    let runs = if quick { 200 } else { 2000 };
    let process = ReleaseProcess::calibrated();
    let dist = survey_distribution(&process, 55, runs, 77);

    let mut t = Table::new(vec![
        "proportion",
        "process mean",
        "90% interval (55-paper survey)",
        "paper value",
    ]);
    let interval = |(_, lo, hi): (f64, f64, f64)| format!("[{}, {}]", pct(lo), pct(hi));
    t.row(vec![
        "papers with public artifacts".into(),
        pct(dist.public.0),
        interval(dist.public),
        "25.5%".into(),
    ]);
    t.row(vec![
        "public artifacts with incomplete docs".into(),
        pct(dist.incomplete_docs.0),
        interval(dist.incomplete_docs),
        "54.5%".into(),
    ]);
    t.row(vec![
        "public artifacts non-functional".into(),
        pct(dist.non_functional.0),
        interval(dist.non_functional),
        "27.3%".into(),
    ]);
    t.print(&format!("E14.a  {runs} simulated 55-paper surveys"));

    // Ablation: what badging (doubling release incentive) and maintenance
    // (halving decay) would do to the same survey.
    let mut badged = process;
    badged.p_release = (process.p_release * 2.0).min(1.0);
    badged.p_documented = 0.8;
    let mut maintained = process;
    maintained.annual_decay = process.annual_decay / 2.0;
    let db = survey_distribution(&badged, 55, runs, 78);
    let dm = survey_distribution(&maintained, 55, runs, 79);
    let mut t2 = Table::new(vec!["intervention", "public", "incomplete docs", "non-functional"]);
    t2.row(vec![
        "status quo".into(),
        pct(dist.public.0),
        pct(dist.incomplete_docs.0),
        pct(dist.non_functional.0),
    ]);
    t2.row(vec![
        "artifact badging (Proposal: \"artifact review and badging\")".into(),
        pct(db.public.0),
        pct(db.incomplete_docs.0),
        pct(db.non_functional.0),
    ]);
    t2.row(vec![
        "funded maintenance (halved decay)".into(),
        pct(dm.public.0),
        pct(dm.incomplete_docs.0),
        pct(dm.non_functional.0),
    ]);
    t2.print("E14.b  release-process interventions");
    dist
}

#[cfg(test)]
mod tests {
    #[test]
    fn e14_shape() {
        let d = super::run(true);
        // Cited proportions sit inside the simulated 90% interval.
        assert!(d.public.1 <= 0.255 && 0.255 <= d.public.2, "{:?}", d.public);
        assert!(
            d.incomplete_docs.1 <= 0.545 && 0.545 <= d.incomplete_docs.2,
            "{:?}",
            d.incomplete_docs
        );
        assert!(
            d.non_functional.1 <= 0.273 && 0.273 <= d.non_functional.2,
            "{:?}",
            d.non_functional
        );
    }
}
