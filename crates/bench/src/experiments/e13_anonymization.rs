//! E13 — Future Direction Proposal 4: anonymization privacy/utility
//! trade-off.
//!
//! Paper anchor: industry "seeks assurance that sharing codebases will not
//! expose sensitive and identifying information"; academia "requires data
//! that retains as much of the original patterns and contexts of
//! vulnerabilities after anonymization".

use vulnman_core::anonymize::{identifier_leakage, Anonymizer, Strength};
use vulnman_core::report::{fmt3, pct, Table};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::{Dataset, DatasetBuilder};

/// `(strength, leakage, model F1 on shared data, rule-suite F1 retention)`.
pub type AnonRow = (String, f64, f64, f64);

fn anonymize_dataset(ds: &Dataset, strength: Strength) -> Dataset {
    let anonymizer = Anonymizer::new(strength);
    ds.iter().filter_map(|s| anonymizer.anonymize(s).map(|a| a.sample)).collect()
}

fn rule_f1(ds: &Dataset) -> f64 {
    use vulnman_analysis::detectors::RuleEngine;
    let engine = RuleEngine::default_suite();
    let pred: Vec<bool> =
        ds.iter().map(|s| !engine.scan_source(&s.source).unwrap_or_default().is_empty()).collect();
    let truth: Vec<bool> = ds.iter().map(|s| s.label).collect();
    vulnman_ml::eval::Metrics::from_predictions(&pred, &truth).f1()
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<AnonRow> {
    crate::banner(
        "E13",
        "anonymization strength: privacy leakage vs research utility",
        "\"thorough anonymization of shared data … retaining as much of the original \
         patterns and contexts of vulnerabilities\" (Proposal 4)",
    );
    let n = if quick { 80 } else { 300 };
    let ds = DatasetBuilder::new(1301).vulnerable_count(n).vulnerable_fraction(0.5).build();

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "sharing mode",
        "identifier leakage",
        "trainability F1 (shared data)",
        "rule-suite F1",
    ]);

    // Baseline: raw sharing (full utility, full leakage).
    {
        let split = stratified_split(&ds, 0.3, 29);
        let mut model = model_zoo(53).remove(0);
        model.train(&split.train);
        let f1 = model.evaluate(&split.test).f1();
        t.row(vec!["raw (no anonymization)".into(), pct(1.0), fmt3(f1), fmt3(rule_f1(&ds))]);
        rows.push(("raw".to_string(), 1.0, f1, rule_f1(&ds)));
    }

    for strength in [Strength::Light, Strength::Standard, Strength::Aggressive] {
        let shared = anonymize_dataset(&ds, strength);
        // Privacy: mean identifying-token recall against the originals.
        let leakage: f64 = ds
            .iter()
            .zip(shared.iter())
            .map(|(orig, anon)| identifier_leakage(orig, anon))
            .sum::<f64>()
            / ds.len() as f64;
        // Utility: a researcher trains and evaluates entirely on shared data.
        let split = stratified_split(&shared, 0.3, 29);
        let mut model = model_zoo(53).remove(0);
        model.train(&split.train);
        let f1 = model.evaluate(&split.test).f1();
        let rf1 = rule_f1(&shared);
        t.row(vec![format!("{strength:?}"), pct(leakage), fmt3(f1), fmt3(rf1)]);
        rows.push((format!("{strength:?}"), leakage, f1, rf1));
    }
    t.print("E13  privacy/utility frontier of code anonymization");
    println!(
        "shape check: leakage falls towards zero with strength while both ML \
         trainability and rule-detector quality remain near the raw baseline — \
         the vulnerability *patterns* survive even aggressive anonymization."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e13_shape() {
        let rows = super::run(true);
        // Leakage strictly decreases along the strength ladder.
        let leaks: Vec<f64> = rows.iter().map(|r| r.1).collect();
        assert!(leaks.windows(2).all(|w| w[1] <= w[0] + 1e-9), "{leaks:?}");
        assert!(*leaks.last().unwrap() < 0.1, "aggressive leakage {leaks:?}");
        // Utility retention: aggressive sharing retains most trainability.
        let raw_f1 = rows[0].2;
        let aggressive_f1 = rows.last().unwrap().2;
        assert!(
            aggressive_f1 > raw_f1 * 0.75,
            "utility should survive: {aggressive_f1} vs raw {raw_f1}"
        );
        // Rule detectors keep working on anonymized corpora.
        assert!(rows.last().unwrap().3 > 0.7, "{rows:?}");
    }
}
