//! E02 — Gap Observation 1: model disagreement.
//!
//! Paper anchor (citing Steenhoek et al.): "leading AI models only agree 7%
//! of the time across various test data. Even among the top three models,
//! the agreement is less than 50%."

use vulnman_core::agreement::{run_agreement_study, AgreementStudy, TrainingRegime};
use vulnman_core::report::{fmt3, pct, Table};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// Runs the experiment and returns the study.
pub fn run(quick: bool) -> AgreementStudy {
    crate::banner(
        "E02",
        "model agreement across the five-family zoo",
        "\"leading AI models only agree 7% of the time … even among the top three \
         models, the agreement is less than 50%\" (Steenhoek et al., cited in Gap 1)",
    );
    let n = if quick { 80 } else { 500 };
    // Hard, realistic evaluation data: all teams, real-world-heavy tiers —
    // the setting in which published models were observed to disagree.
    let ds = DatasetBuilder::new(201)
        .teams({
            let mut t = vec![StyleProfile::mainstream()];
            t.extend(StyleProfile::internal_teams());
            t
        })
        .vulnerable_count(n)
        .vulnerable_fraction(0.35)
        .tier_mix(vec![(Tier::Curated, 1.0), (Tier::RealWorld, 3.0)])
        .build();
    let split = stratified_split(&ds, 0.4, 7);
    // Published models were trained by different groups on different
    // corpora: each family gets its own disjoint slice of the pool.
    let mut models = model_zoo(11);
    let study =
        run_agreement_study(&mut models, &split.train, &split.test, TrainingRegime::Disjoint);

    let mut t = Table::new(vec!["model", "test F1"]);
    for (name, f1) in study.models.iter().zip(&study.f1) {
        t.row(vec![name.clone(), fmt3(*f1)]);
    }
    t.print("E02.a  per-model quality");

    let mut t2 = Table::new(vec!["agreement statistic", "measured", "paper value"]);
    t2.row(vec![
        "all-5 unanimous detection of vulnerable samples".into(),
        pct(study.unanimous_detection_rate),
        "≈7%".into(),
    ]);
    t2.row(vec![
        "top-3 unanimous detection of vulnerable samples".into(),
        pct(study.top3_detection_rate.unwrap_or(0.0)),
        "<50%".into(),
    ]);
    t2.row(vec![
        "all-5 unanimous (vulnerable samples, any verdict)".into(),
        pct(study.on_vulnerable.unanimous_rate),
        "—".into(),
    ]);
    t2.row(vec![
        "mean pairwise agreement (all samples)".into(),
        pct(study.overall.mean_pairwise),
        "—".into(),
    ]);
    t2.row(vec![
        "Fleiss' kappa (all samples)".into(),
        fmt3(study.overall.fleiss_kappa),
        "—".into(),
    ]);
    t2.print("E02.b  agreement statistics");
    println!(
        "shape check: unanimity collapses as models are added \
         (all-5 {} ≤ top-3 {} ≤ best pairwise)",
        pct(study.unanimous_detection_rate),
        pct(study.top3_detection_rate.unwrap_or(0.0)),
    );
    study
}

#[cfg(test)]
mod tests {
    #[test]
    fn e02_shape() {
        let study = super::run(true);
        let all5 = study.unanimous_detection_rate;
        let top3 = study.top3_detection_rate.unwrap();
        // The paper's ordering: all-model agreement is far rarer than
        // top-3 agreement; both are well below per-model recall.
        assert!(all5 <= top3 + 1e-9);
        assert!(all5 < 0.6, "all-5 unanimity should be scarce: {all5}");
        let best_f1 = study.f1.iter().cloned().fold(0.0, f64::max);
        assert!(all5 < best_f1, "unanimity below individual quality");
    }
}
