//! E05 — Gap Observation 3: 50-50 benchmarks vs realistic class imbalance.
//!
//! Paper anchors: academic datasets use "unrealistic proportions of
//! vulnerable and non-vulnerable samples (e.g., 50-50)", and "when a model
//! identifies a moderate-risk vulnerability but generates ten times as many
//! false positives, it is unlikely to be adopted".

use vulnman_core::costmodel::{imbalance_sweep, price_deployment, CostParams};
use vulnman_core::report::{fmt3, usd, Table};
use vulnman_ml::eval::Metrics;
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::dataset::{Dataset, DatasetBuilder};

/// `(vulnerable fraction, metrics, fp_per_tp, net_value)` per point.
pub type ImbalancePoint = (f64, Metrics, f64, f64);

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<ImbalancePoint> {
    crate::banner(
        "E05",
        "evaluation under 50-50 vs realistic base rates",
        "\"datasets with unrealistic proportions … (e.g., 50-50)\"; \"ten times as many \
         false positives … unlikely to be adopted\" (Gap 3)",
    );
    let n = if quick { 100 } else { 400 };

    // The model is trained the way academia trains it: balanced data.
    let balanced = DatasetBuilder::new(501).vulnerable_count(n).vulnerable_fraction(0.5).build();
    let split = stratified_split(&balanced, 0.3, 3);
    let mut model = model_zoo(19).remove(0); // token-lr
    model.train(&split.train);

    // Evaluation sets at decreasing base rates; negatives drawn fresh.
    let fractions = [0.5, 0.2, 0.1, 0.05, 0.02];
    let params = CostParams::default();
    let mut points = Vec::new();
    let mut t =
        Table::new(vec!["vuln fraction", "precision", "recall", "F1", "FP per TP", "net value"]);
    for (i, &frac) in fractions.iter().enumerate() {
        let vuln_count = if quick { 30 } else { 80 };
        let eval = DatasetBuilder::new(502 + i as u64)
            .vulnerable_count(vuln_count)
            .vulnerable_fraction(frac)
            .hard_negative_fraction(0.3)
            .build();
        let m = model.evaluate(&eval);
        let priced = price_deployment(&m, &params);
        t.row(vec![
            fmt3(frac),
            fmt3(m.precision()),
            fmt3(m.recall()),
            fmt3(m.f1()),
            fmt3(m.fp_per_tp()),
            usd(priced.net_value),
        ]);
        points.push((frac, m, m.fp_per_tp(), priced.net_value));
    }
    t.print("E05.a  one model, shifting base rates (trained 50-50)");

    // Analytic extrapolation to production scale with per-sample rates
    // measured on the *most imbalanced* evaluation (whose negative
    // population — mostly risky-looking benign code — matches production).
    let prod = &points[points.len() - 1].1;
    let tpr = prod.recall();
    let fpr = prod.fp as f64 / (prod.fp + prod.tn).max(1) as f64;
    let sweep = imbalance_sweep(tpr, fpr, 1_000_000, &[0.5, 0.1, 0.01, 0.001], &params);
    let mut t2 = Table::new(vec!["vuln fraction", "precision", "FP per TP", "net value"]);
    for (frac, m, r) in &sweep {
        t2.row(vec![fmt3(*frac), fmt3(m.precision()), fmt3(r.fp_per_tp), usd(r.net_value)]);
    }
    t2.print(&format!(
        "E05.b  analytic sweep at 1M samples (measured tpr={}, fpr={})",
        fmt3(tpr),
        fmt3(fpr)
    ));
    println!(
        "shape check: the same model that looks strong at 50-50 accumulates ≈10× or \
         more false positives per true positive at production base rates."
    );
    points
}

/// Convenience used in tests: evaluates a trained model on a dataset.
pub fn eval_on(model: &vulnman_ml::pipeline::DetectionModel, ds: &Dataset) -> Metrics {
    model.evaluate(ds)
}

#[cfg(test)]
mod tests {
    #[test]
    fn e05_shape() {
        let points = super::run(true);
        let first = &points[0];
        let last = &points[points.len() - 1];
        // Precision collapses with base rate; recall is roughly stable.
        assert!(first.1.precision() > last.1.precision() + 0.1);
        assert!((first.1.recall() - last.1.recall()).abs() < 0.35);
        // FP burden rises sharply.
        assert!(last.2 > first.2, "FP/TP must grow: {} -> {}", first.2, last.2);
    }
}
