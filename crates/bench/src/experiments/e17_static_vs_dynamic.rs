//! E17 — Figure 1's automated-assessment pair: static vs dynamic analysis.
//!
//! Paper anchor: "automated assessments mainly leverage rule-based analysis
//! tools, including dynamic and static analysis". This experiment compares
//! the static rule suite against the sanitizer-instrumented dynamic
//! analysis per CWE class, and shows why industry runs *both*: the dynamic
//! side has near-zero false positives but structural blind spots; the
//! static side covers everything it has rules for but false-positives on
//! unfamiliar (e.g. team-wrapped) code.

use vulnman_analysis::detectors::RuleEngine;
use vulnman_analysis::dynamic::{dynamically_detectable, DynamicSanitizer};
use vulnman_analysis::StaticDetector;
use vulnman_core::report::{fmt3, pct, Table};
use vulnman_synth::cwe::Cwe;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// Per-class rates: `(cwe, static recall, dynamic recall, combined recall)`.
pub type StaticDynamicRow = (Cwe, f64, f64, f64);

/// Result bundle.
#[derive(Debug)]
pub struct StaticDynamicResult {
    /// Per-class recall rows.
    pub rows: Vec<StaticDynamicRow>,
    /// False-positive rate of the static suite on negatives.
    pub static_fpr: f64,
    /// False-positive rate of the dynamic sanitizer on negatives.
    pub dynamic_fpr: f64,
}

/// Runs the experiment.
pub fn run(quick: bool) -> StaticDynamicResult {
    crate::banner(
        "E17",
        "static rule suite vs dynamic sanitizer execution",
        "\"automated assessments mainly leverage rule-based analysis tools, including \
         dynamic and static analysis\" (Figure 1, §II-A)",
    );
    let n = if quick { 60 } else { 240 };
    let ds = DatasetBuilder::new(1701)
        .teams({
            let mut t = vec![StyleProfile::mainstream()];
            t.extend(StyleProfile::internal_teams());
            t
        })
        .vulnerable_count(n)
        .vulnerable_fraction(0.5)
        .tier_mix(vec![(Tier::Curated, 2.0), (Tier::RealWorld, 1.0)])
        .build();

    let static_suite = RuleEngine::default_suite();
    let dynamic = DynamicSanitizer::new();

    let mut per_class: std::collections::HashMap<Cwe, (usize, usize, usize, usize)> =
        std::collections::HashMap::new();
    let mut static_fp = 0usize;
    let mut dynamic_fp = 0usize;
    let mut negatives = 0usize;
    for sample in &ds {
        let Ok(program) = vulnman_lang::parse(&sample.source) else { continue };
        let s_hit = !static_suite.scan(&program).is_empty();
        let d_hit = !dynamic.scan(&program).is_empty();
        if sample.label {
            let cwe = sample.cwe.expect("labeled");
            let entry = per_class.entry(cwe).or_insert((0, 0, 0, 0));
            entry.0 += 1;
            if s_hit {
                entry.1 += 1;
            }
            if d_hit {
                entry.2 += 1;
            }
            if s_hit || d_hit {
                entry.3 += 1;
            }
        } else {
            negatives += 1;
            if s_hit {
                static_fp += 1;
            }
            if d_hit {
                dynamic_fp += 1;
            }
        }
    }

    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "CWE",
        "static recall",
        "dynamic recall",
        "combined",
        "dynamic blind spot?",
    ]);
    let mut classes: Vec<Cwe> = per_class.keys().copied().collect();
    classes.sort_by_key(|c| c.id());
    for cwe in classes {
        let (total, s, d, c) = per_class[&cwe];
        let (rs, rd, rc) =
            (s as f64 / total as f64, d as f64 / total as f64, c as f64 / total as f64);
        t.row(vec![
            format!("CWE-{}", cwe.id()),
            fmt3(rs),
            fmt3(rd),
            fmt3(rc),
            if dynamically_detectable(cwe) { "" } else { "yes (logic class)" }.into(),
        ]);
        rows.push((cwe, rs, rd, rc));
    }
    t.print("E17.a  per-class recall: static vs dynamic vs combined");

    let static_fpr = static_fp as f64 / negatives.max(1) as f64;
    let dynamic_fpr = dynamic_fp as f64 / negatives.max(1) as f64;
    let mut t2 = Table::new(vec!["analysis", "false-positive rate on negatives"]);
    t2.row(vec!["static rule suite".into(), pct(static_fpr)]);
    t2.row(vec!["dynamic sanitizer".into(), pct(dynamic_fpr)]);
    t2.print("E17.b  false-positive profile");
    println!(
        "shape check: dynamic analysis observes faults (≈0 false positives) but is \
         blind to logic classes; the static suite covers them at the cost of noise \
         on team-idiom code — hence Figure 1 runs both."
    );
    StaticDynamicResult { rows, static_fpr, dynamic_fpr }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_shape() {
        let r = super::run(true);
        // Combined dominates each side per class.
        for (cwe, s, d, c) in &r.rows {
            assert!(c + 1e-9 >= *s && c + 1e-9 >= *d, "{cwe}: {s}/{d}/{c}");
        }
        // Dynamic blind spots show zero dynamic recall.
        for (cwe, _, d, _) in &r.rows {
            if !dynamically_detectable(*cwe) {
                assert_eq!(*d, 0.0, "{cwe} should be dynamically blind");
            }
        }
        // The dynamic side is (near-)silent on negatives.
        assert!(r.dynamic_fpr < 0.02, "dynamic fpr {}", r.dynamic_fpr);
        assert!(r.dynamic_fpr <= r.static_fpr + 1e-9);
    }
}
