//! E15 — Gap Observation 3: the toy-benchmark vs real-world repair gap.
//!
//! Paper anchor: "Language models like Claude-2 and GPT-4 can only solve
//! 4.8% and 1.7% real-world GitHub issues, respectively" — against the high
//! scores the same models post on curated benchmarks.

use vulnman_core::repair::{
    evaluate_engine, LlmSimRepairEngine, RepairEngine, RepairOutcome, RetrievalRepairEngine,
    RuleRepairEngine,
};
use vulnman_core::report::{pct, Table};
use vulnman_synth::repair_tasks::generate_tasks;
use vulnman_synth::tier::Tier;

/// Outcome matrix: `outcomes[engine][tier]`.
pub type RepairMatrix = Vec<Vec<RepairOutcome>>;

/// Runs the experiment.
pub fn run(quick: bool) -> RepairMatrix {
    crate::banner(
        "E15",
        "verified repair solve rates across task complexity tiers",
        "\"Claude-2 and GPT-4 can only solve 4.8% and 1.7% of real-world GitHub \
         issues\" vs high toy-benchmark scores (Gap 3)",
    );
    let n = if quick { 80 } else { 200 };

    let engines: Vec<Box<dyn RepairEngine>> = vec![
        Box::new(RuleRepairEngine::new()),
        Box::new(RetrievalRepairEngine::new()),
        Box::new(LlmSimRepairEngine::new(99)),
    ];

    let mut matrix: RepairMatrix = Vec::new();
    let mut t = Table::new(vec![
        "engine",
        "toy tier solve",
        "curated tier solve",
        "real-world tier solve",
        "abstain (real-world)",
    ]);
    for engine in &engines {
        let mut row_outcomes = Vec::new();
        let mut cells = vec![engine.name().to_string()];
        let mut real_abstain = 0usize;
        let mut real_total = 1usize;
        for tier in Tier::ALL {
            // Matched-pairs design: the same seed for every tier makes task
            // `i` draw the same CWE class in each tier, so solve-rate
            // differences reflect tier complexity, not class-mix noise.
            let tasks = generate_tasks(1500, tier, n);
            let outcome = evaluate_engine(engine.as_ref(), &tasks);
            cells.push(pct(outcome.solve_rate()));
            if tier == Tier::RealWorld {
                real_abstain = outcome.abstained;
                real_total = outcome.total;
            }
            row_outcomes.push(outcome);
        }
        cells.push(pct(real_abstain as f64 / real_total as f64));
        t.row(cells);
        matrix.push(row_outcomes);
    }
    t.print("E15  verified solve rates (patch parses + finding removed + program intact)");
    println!(
        "shape check: every engine collapses from the toy tier to the real-world \
         tier; the general llm-sim lands in the single digits there (paper: 4.8% / \
         1.7%). The rule engine never hallucinates — it abstains instead — which is \
         why industry still ships rule-based auto-fix."
    );
    matrix
}

#[cfg(test)]
mod tests {
    use vulnman_synth::tier::Tier;

    #[test]
    fn e15_shape() {
        let matrix = super::run(true);
        for outcomes in &matrix {
            let simple =
                outcomes.iter().find(|o| o.tier == Tier::Simple).expect("simple tier").solve_rate();
            let real = outcomes
                .iter()
                .find(|o| o.tier == Tier::RealWorld)
                .expect("real tier")
                .solve_rate();
            assert!(real <= simple + 1e-9, "{}: {simple} -> {real}", outcomes[0].engine);
        }
        // The llm-sim's real-world rate is single-digit.
        let llm = &matrix[2];
        let real = llm.iter().find(|o| o.tier == Tier::RealWorld).unwrap();
        assert!(real.solve_rate() < 0.12, "{}", real.solve_rate());
        // Rule auto-fix abstains rather than hallucinating.
        let rule = &matrix[0];
        for o in rule {
            assert!(o.abstained > 0, "rules abstain on non-mechanical classes");
        }
    }
}
