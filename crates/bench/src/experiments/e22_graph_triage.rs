//! E22 — blast-radius triage: corpus-graph prioritization under a fixed
//! analyst budget.
//!
//! The paper's prioritization gap (§V "vulnerability prioritization … as our
//! future work") is usually studied per-finding: severity says how bad the
//! bug class is, reachability says how exposed the one function is. Neither
//! sees the *corpus*: a flaw in a helper that half the deployment
//! transitively calls should outrank an equal-severity flaw in a leaf. This
//! experiment builds the whole-corpus call graph
//! ([`vulnman_analysis::corpusgraph`]) over a cross-file corpus, feeds each
//! finding's blast radius into the triage queue
//! ([`vulnman_core::triage::TriageQueue::push_with_blast`]), and prices both
//! orderings with the deployment cost model: exposure cost accrues per day a
//! finding waits, weighted by how much of the corpus the defective function
//! can reach.

use vulnman_analysis::corpusgraph::CorpusGraph;
use vulnman_analysis::detectors::RuleEngine;
use vulnman_analysis::severity::score;
use vulnman_core::costmodel::CostParams;
use vulnman_core::customize::PolicySeverity;
use vulnman_core::report::{fmt3, usd, Table};
use vulnman_core::triage::{ServedItem, TriageQueue};
use vulnman_lang::AnalysisCache;
use vulnman_obs::Registry;
use vulnman_synth::dataset::DatasetBuilder;

/// `(analyst capacity per day, findings, exposure cost severity-only,
/// exposure cost graph-aware, savings, blast half-life severity-only,
/// blast half-life graph-aware)` — the half-life is the simulated day by
/// which half the corpus-wide blast-weighted risk mass has been retired.
pub type GraphTriageRow = (usize, usize, f64, f64, f64, f64, f64);

/// First day by which the served trace has retired at least half the total
/// blast mass (`f64::INFINITY` if it never does within the horizon).
fn blast_half_life(
    served: &[ServedItem],
    blast_of: impl Fn(&ServedItem) -> f64,
    total: f64,
) -> f64 {
    let mut retired = 0.0;
    for s in served {
        retired += blast_of(s);
        if retired >= total / 2.0 {
            return s.served_day;
        }
    }
    f64::INFINITY
}

/// Exposure cost of one service trace: every finding accrues
/// `breach_cost × exploitability × (priority / 10) × (0.5 + blast)`
/// risk-dollars per day it waits — breach likelihood scales with how
/// exploitable the finding is (its severity-model priority), breach impact
/// scales with how much of the deployment the defective function touches
/// (its blast radius). Backlog items wait out the whole horizon. The `0.5`
/// floor keeps leaf findings from pricing at zero — an unreachable bug
/// still carries local risk.
fn exposure_cost(
    served: &[ServedItem],
    backlog: &[(f64, f64)],
    horizon_days: f64,
    blast_of: impl Fn(&ServedItem) -> (f64, f64),
    params: &CostParams,
) -> f64 {
    let daily = |priority: f64, blast: f64| {
        params.breach_cost_usd * params.mean_exploitability * (priority / 10.0) * (0.5 + blast)
            / 365.0
    };
    let mut cost = 0.0;
    for s in served {
        // Price by the *original* scored priority, not the stored one (the
        // graph queue scales its stored priority by 1 + blast): both traces
        // must price the same finding identically, differing only in when
        // they served it.
        let (priority, blast) = blast_of(s);
        cost += daily(priority, blast) * (s.served_day - s.item.arrived_day + 1.0);
    }
    for &(priority, blast) in backlog {
        cost += daily(priority, blast) * horizon_days;
    }
    cost
}

/// Runs the experiment.
pub fn run(quick: bool) -> Vec<GraphTriageRow> {
    crate::banner(
        "E22",
        "blast-radius triage: graph-aware prioritization under an analyst budget",
        "per-finding severity cannot see the corpus; weighting the queue by the \
         defect's transitively reachable surface retires corpus-wide risk first \
         (prioritization future-work, §V)",
    );
    let n = if quick { 40 } else { 120 };
    let params = CostParams::default();
    // A fleet of many small services (high projects-per-team): linkage
    // domains stay small enough that a bridged helper's blast radius is a
    // meaningful fraction of its project, which is the shape blast-radius
    // triage exists for.
    let ds = DatasetBuilder::new(2201)
        .vulnerable_count(n)
        .vulnerable_fraction(0.4)
        .projects_per_team(12)
        .cross_file_links(true)
        .build();
    let metrics = Registry::new();
    let graph = CorpusGraph::from_samples(ds.samples(), &AnalysisCache::disabled(), 1, &metrics)
        .expect("generated corpus parses");

    // Every finding the rule suite raises, scored with the *corpus-wide*
    // surface of its function (the graph sees exposure a per-sample call
    // graph cannot), tagged with the function's blast radius.
    let engine = RuleEngine::default_suite();
    let mut findings = Vec::new();
    for sample in ds.samples() {
        for f in engine.scan_source(&sample.source).expect("corpus parses") {
            let surface = graph
                .surface_of(sample.id, &f.function)
                .unwrap_or(vulnman_analysis::reachability::Surface::Local);
            let blast = graph.blast_of(sample.id, &f.function).unwrap_or(0.0);
            findings.push((score(f, surface), blast));
        }
    }

    let reached = findings.iter().filter(|(_, b)| *b > 0.0).count();
    let max_blast = findings.iter().map(|(_, b)| *b).fold(0.0f64, f64::max);
    println!(
        "corpus: {} findings, {} in graph-reached functions, max blast {:.3}",
        findings.len(),
        reached,
        max_blast
    );

    let horizon = 30usize;
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "capacity/day",
        "findings",
        "exposure cost (severity)",
        "exposure cost (graph)",
        "savings",
        "blast half-life (sev)",
        "blast half-life (graph)",
    ]);
    for &per_day in &[1usize, 2, 4] {
        // Same findings, same policy class, same arrival day: the only
        // difference is the ranking term.
        let mut severity_only = TriageQueue::new();
        let mut graph_aware = TriageQueue::new();
        for (scored, blast) in &findings {
            severity_only.push(scored.clone(), PolicySeverity::Tracked, 0.0);
            graph_aware.push_with_blast(scored.clone(), PolicySeverity::Tracked, 0.0, *blast);
        }
        let blast_of = |s: &ServedItem| {
            // Recover the original (priority, blast) from the finding
            // identity (the queue does not carry blast through service, and
            // the graph queue rescales the priority it stores).
            findings
                .iter()
                .find(|(f, _)| {
                    f.finding.function == s.item.finding.finding.function
                        && f.finding.span == s.item.finding.finding.span
                        && f.finding.cwe == s.item.finding.finding.cwe
                })
                .map(|(f, b)| (f.priority, *b))
                .unwrap_or((0.0, 0.0))
        };
        let (served_sev, backlog_sev) = severity_only.drain_simulation(per_day, horizon);
        let (served_gra, backlog_gra) = graph_aware.drain_simulation(per_day, horizon);
        assert_eq!(backlog_sev, backlog_gra, "same findings, same capacity");
        // Backlog members differ between orderings; price what each left.
        let backlog_blast = |served: &[ServedItem]| -> Vec<(f64, f64)> {
            let mut pool: Vec<&(vulnman_analysis::severity::ScoredFinding, f64)> =
                findings.iter().collect();
            for s in served {
                if let Some(pos) = pool.iter().position(|(f, _)| {
                    f.finding.function == s.item.finding.finding.function
                        && f.finding.span == s.item.finding.finding.span
                        && f.finding.cwe == s.item.finding.finding.cwe
                }) {
                    pool.swap_remove(pos);
                }
            }
            pool.iter().map(|(f, b)| (f.priority, *b)).collect()
        };
        let cost_sev = exposure_cost(
            &served_sev,
            &backlog_blast(&served_sev),
            horizon as f64,
            blast_of,
            &params,
        );
        let cost_gra = exposure_cost(
            &served_gra,
            &backlog_blast(&served_gra),
            horizon as f64,
            blast_of,
            &params,
        );
        let savings = cost_sev - cost_gra;
        let total_blast: f64 = findings.iter().map(|(_, b)| *b).sum();
        let hl_sev = blast_half_life(&served_sev, |s| blast_of(s).1, total_blast);
        let hl_gra = blast_half_life(&served_gra, |s| blast_of(s).1, total_blast);
        t.row(vec![
            per_day.to_string(),
            findings.len().to_string(),
            usd(cost_sev),
            usd(cost_gra),
            usd(savings),
            fmt3(hl_sev),
            fmt3(hl_gra),
        ]);
        rows.push((per_day, findings.len(), cost_sev, cost_gra, savings, hl_sev, hl_gra));
    }
    t.print("E22  exposure cost under severity-only vs blast-radius-weighted triage");
    println!(
        "shape check: with the analyst budget pinched, serving wide-blast defects \
         first retires half the corpus-wide blast mass days earlier and shaves \
         exposure cost — the severity-only queue pays for every day a hub function \
         waits behind equally severe leaves."
    );
    rows
}

#[cfg(test)]
mod tests {
    #[test]
    fn e22_shape() {
        let rows = super::run(true);
        assert_eq!(rows.len(), 3);
        for (per_day, n_findings, cost_sev, cost_gra, savings, hl_sev, hl_gra) in &rows {
            assert!(*n_findings > 0, "corpus must produce findings");
            assert!(*cost_sev > 0.0 && *cost_gra > 0.0, "exposure costs are positive");
            assert!(
                *savings >= -1e-9,
                "graph-aware triage must not lose to severity-only at capacity {per_day}: \
                 {cost_sev} vs {cost_gra}"
            );
            assert!(
                hl_gra <= hl_sev,
                "graph ordering must retire blast mass no later at capacity {per_day}: \
                 {hl_gra} vs {hl_sev}"
            );
        }
        // Somewhere in the sweep the graph ordering must strictly win,
        // otherwise the blast term changed nothing.
        assert!(
            rows.iter().any(|r| r.4 > 1.0),
            "blast weighting should strictly reduce exposure cost: {rows:?}"
        );
        assert!(
            rows.iter().any(|r| r.6 < r.5),
            "blast weighting should strictly shorten the blast half-life somewhere: {rows:?}"
        );
    }
}
