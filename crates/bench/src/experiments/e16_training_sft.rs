//! E16 — §II-A/B: security training and SFT dataset construction.
//!
//! Paper anchors: AI-based training "has demonstrated effectiveness to
//! prevent security problems", and "constructing security SFT datasets also
//! presents an appealing opportunity".

use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
use vulnman_core::report::{fmt3, pct, Table};
use vulnman_core::sft::{harvest, SftDataset, SftTask};
use vulnman_core::training::{simulate, TrainingConfig, TrainingTrace};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_synth::dataset::DatasetBuilder;

/// Result bundle: `(traces per regime, sft dataset)`.
pub struct TrainingSftResult {
    /// `(regime name, steady-state introduction rate)` per configuration.
    pub regimes: Vec<(String, f64)>,
    /// Harvested SFT dataset.
    pub sft: SftDataset,
    /// Full trace of the personalized regime (for plotting).
    pub personalized_trace: TrainingTrace,
}

/// Runs the experiment.
pub fn run(quick: bool) -> TrainingSftResult {
    crate::banner(
        "E16",
        "security-training impact + SFT dataset harvest from workflow traces",
        "\"AI-based security training … demonstrated effectiveness\" (§II-B); \
         \"constructing security SFT datasets … appealing opportunity\" (§II-B)",
    );
    let weeks = if quick { 26 } else { 104 };
    let devs = if quick { 30 } else { 80 };

    // Training regimes.
    let base = TrainingConfig::default();
    let configs = [
        ("no training".to_string(), TrainingConfig { cadence_weeks: 0, ..base }),
        ("quarterly generic".to_string(), TrainingConfig { cadence_weeks: 12, ..base }),
        ("monthly generic".to_string(), TrainingConfig { cadence_weeks: 4, ..base }),
        (
            "monthly AI-personalized".to_string(),
            TrainingConfig { cadence_weeks: 4, personalized: true, ..base },
        ),
    ];
    let mut regimes = Vec::new();
    let mut personalized_trace = None;
    let mut t = Table::new(vec!["regime", "steady-state introduction rate", "vs untrained"]);
    let mut baseline = 0.0;
    for (i, (name, cfg)) in configs.iter().enumerate() {
        let trace = simulate(cfg, devs, weeks, 20, 16);
        let rate = trace.steady_state_rate();
        if i == 0 {
            baseline = rate;
        }
        t.row(vec![
            name.clone(),
            fmt3(rate),
            if i == 0 { "baseline".into() } else { format!("-{}", pct(1.0 - rate / baseline)) },
        ]);
        regimes.push((name.clone(), rate));
        if cfg.personalized {
            personalized_trace = Some(trace);
        }
    }
    t.print("E16.a  flaw-introduction rate by training regime");

    // SFT harvest from a real workflow run.
    let corpus = DatasetBuilder::new(1601)
        .vulnerable_count(if quick { 30 } else { 120 })
        .vulnerable_fraction(0.4)
        .build();
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());
    let report = engine.process(corpus.samples());
    let sft = harvest(corpus.samples(), &report);
    let counts = sft.task_counts();
    let mut t2 = Table::new(vec!["SFT task family", "pairs", "supervision source"]);
    t2.row(vec![
        "Detect".into(),
        counts.get(&SftTask::Detect).copied().unwrap_or(0).to_string(),
        "detector findings + ground truth".into(),
    ]);
    t2.row(vec![
        "Repair".into(),
        counts.get(&SftTask::Repair).copied().unwrap_or(0).to_string(),
        "verified auto-fix patches".into(),
    ]);
    t2.row(vec![
        "Review".into(),
        counts.get(&SftTask::Review).copied().unwrap_or(0).to_string(),
        "analyst triage notes".into(),
    ]);
    t2.print("E16.b  SFT pairs harvested from one workflow run");

    TrainingSftResult {
        regimes,
        sft,
        personalized_trace: personalized_trace.expect("personalized regime present"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn e16_shape() {
        let r = super::run(true);
        // Rates fall monotonically along the regime ladder.
        let rates: Vec<f64> = r.regimes.iter().map(|x| x.1).collect();
        assert!(rates.windows(2).all(|w| w[1] <= w[0] + 0.01), "{rates:?}");
        assert!(
            rates.last().unwrap() < &(rates[0] * 0.75),
            "personalized monthly training should cut introductions: {rates:?}"
        );
        // SFT harvest yields all three task families.
        let counts = r.sft.task_counts();
        assert!(counts.len() >= 3, "{counts:?}");
        assert!(!r.personalized_trace.mean_awareness.is_empty());
    }
}
