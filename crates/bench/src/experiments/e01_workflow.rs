//! E01 — Figure 1: the end-to-end industry vulnerability-management
//! workflow.
//!
//! Runs a realistic (imbalanced, multi-team) change stream through the
//! full pipeline — automated detection, threat-model gating, manual
//! security review, and the three repair channels — and prints per-stage
//! counts that mirror the boxes of the paper's Figure 1.

use vulnman_analysis::detectors::{
    BoundsDetector, CredentialDetector, NullDerefDetector, OverflowDetector, RuleEngine,
    TaintDetector,
};
use vulnman_core::costmodel::CostParams;
use vulnman_core::detector::{DetectorRegistry, MlDetector, RuleBasedDetector};
use vulnman_core::report::{fmt3, pct, usd, Table};
use vulnman_core::workflow::{RepairChannel, WorkflowConfig, WorkflowEngine};
use vulnman_ml::pipeline::model_zoo;
use vulnman_synth::dataset::DatasetBuilder;
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// Runs the experiment and returns the workflow report for assertions.
pub fn run(quick: bool) -> vulnman_core::workflow::WorkflowReport {
    crate::banner(
        "E01",
        "Figure 1 — industry security vulnerability management workflow",
        "\"Two main stages … Vulnerability Assessment and Vulnerability Repair\", with \
         manual review gated on zero/one-click surfaces",
    );
    let n_vuln = if quick { 25 } else { 120 };

    // Training corpus for the ML detector that augments the rule suite.
    let train = DatasetBuilder::new(101).vulnerable_count(n_vuln * 2).build();
    let mut model = model_zoo(7).remove(2); // graph-rf
    model.train(&train);

    // The incoming change stream: imbalanced, all teams, all tiers.
    let stream = DatasetBuilder::new(102)
        .teams({
            let mut t = vec![StyleProfile::mainstream()];
            t.extend(StyleProfile::internal_teams());
            t
        })
        .vulnerable_count(n_vuln)
        .vulnerable_fraction(0.15)
        .tier_mix(vec![(Tier::Simple, 1.0), (Tier::Curated, 2.0), (Tier::RealWorld, 2.0)])
        .build();

    // A deliberately *partial* rule suite: like any real deployment, the
    // installed tools do not cover every class (no UAF or TOCTOU analyzer
    // here) — those classes can only be caught by the manual-review gate.
    let mut partial = RuleEngine::new();
    partial.register(Box::new(TaintDetector::default_config()));
    partial.register(Box::new(BoundsDetector));
    partial.register(Box::new(OverflowDetector));
    partial.register(Box::new(NullDerefDetector));
    partial.register(Box::new(CredentialDetector));
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::new("partial-rule-suite", partial)));
    registry.register(Box::new(MlDetector::new(model)));
    let engine = WorkflowEngine::new(registry, WorkflowConfig::default());

    let t0 = std::time::Instant::now();
    let report = engine.process(stream.samples());
    let seq_ms = t0.elapsed().as_millis();
    let t1 = std::time::Instant::now();
    let piped = engine.process_pipelined(stream.samples());
    let pipe_ms = t1.elapsed().as_millis();
    assert_eq!(report.detection_metrics(), piped.detection_metrics());

    let total = report.cases.len();
    let vulnerable = report.cases.iter().filter(|c| c.truly_vulnerable).count();
    let flagged = report.cases.iter().filter(|c| c.auto_flagged).count();
    let reviewed = report.cases.iter().filter(|c| c.manually_reviewed).count();
    let review_catches = report.cases.iter().filter(|c| c.review_catch && !c.auto_flagged).count();
    let detected = report.cases.iter().filter(|c| c.detected() && c.truly_vulnerable).count();

    let mut t = Table::new(vec!["Figure-1 stage", "count", "notes"]);
    t.row(vec![
        "changes submitted".into(),
        total.to_string(),
        format!("{vulnerable} truly vulnerable"),
    ]);
    t.row(vec![
        "automated detection flags".into(),
        flagged.to_string(),
        "rule suite + graph-rf model".into(),
    ]);
    t.row(vec![
        "manual security reviews".into(),
        reviewed.to_string(),
        format!("{} of surface gate", pct(report.review_rate())),
    ]);
    t.row(vec![
        "  caught only by review".into(),
        review_catches.to_string(),
        "zero/one-click gate at work".into(),
    ]);
    t.row(vec![
        "vulnerabilities detected".into(),
        detected.to_string(),
        format!("recall {}", fmt3(report.detection_metrics().recall())),
    ]);
    t.row(vec![
        "repaired via auto-fix".into(),
        report.auto_fixed.to_string(),
        "verified by re-scan".into(),
    ]);
    t.row(vec![
        "repaired via AI suggestion".into(),
        report.ai_fixed.to_string(),
        "human-verified".into(),
    ]);
    t.row(vec![
        "repaired via expert".into(),
        report.expert_fixed.to_string(),
        format!("{:.1} expert hours", report.expert_hours),
    ]);
    t.row(vec!["escaped all stages".into(), report.escaped.to_string(), "shipped risk".into()]);
    t.print("E01.a  workflow stage counts (Figure 1)");

    let repaired: usize = report.auto_fixed + report.ai_fixed + report.expert_fixed;
    let mut t2 = Table::new(vec!["repair channel", "share", "paper framing"]);
    for (ch, n, note) in [
        (RepairChannel::AutoFix, report.auto_fixed, "\"unified approach … framework\""),
        (RepairChannel::AiSuggestion, report.ai_fixed, "\"real-time repair … LLMs\""),
        (RepairChannel::Expert, report.expert_fixed, "\"expert recommendations\""),
    ] {
        t2.row(vec![format!("{ch:?}"), pct(n as f64 / repaired.max(1) as f64), note.into()]);
    }
    t2.print("E01.b  repair-channel mix");

    let cost = report.price(&CostParams::default());
    let mut t3 = Table::new(vec!["economics", "value"]);
    t3.row(vec!["analyst minutes".into(), format!("{:.0}", report.analyst_minutes)]);
    t3.row(vec!["triage + labour cost".into(), usd(cost.triage_cost)]);
    t3.row(vec!["prevented breach loss".into(), usd(cost.prevented_loss)]);
    t3.row(vec!["net value".into(), usd(cost.net_value)]);
    t3.row(vec!["sequential wall-time".into(), format!("{seq_ms} ms")]);
    t3.row(vec!["pipelined wall-time".into(), format!("{pipe_ms} ms (3-stage crossbeam)")]);
    t3.print("E01.c  run economics");

    // E01.d: finite review capacity — the "scalability and prioritization"
    // requirement. Reviews are allocated to the most exposed surfaces first.
    let full_minutes = report.analyst_minutes;
    let mut t4 = Table::new(vec![
        "review budget",
        "reviews done",
        "reviews skipped",
        "escaped",
        "zero-click reviewed",
    ]);
    for (label, budget) in [
        ("unlimited", f64::INFINITY),
        ("50% of demand", full_minutes * 0.5),
        ("20% of demand", full_minutes * 0.2),
        ("none", 0.0),
    ] {
        let r = engine.process_with_capacity(stream.samples(), budget);
        let reviewed = r.cases.iter().filter(|c| c.manually_reviewed).count();
        let zc_total =
            r.cases.iter().filter(|c| c.surface == vulnman_analysis::Surface::ZeroClick).count();
        let zc_reviewed = r
            .cases
            .iter()
            .filter(|c| c.surface == vulnman_analysis::Surface::ZeroClick && c.manually_reviewed)
            .count();
        t4.row(vec![
            label.into(),
            reviewed.to_string(),
            r.reviews_skipped.to_string(),
            r.escaped.to_string(),
            format!("{zc_reviewed}/{zc_total}"),
        ]);
    }
    t4.print("E01.d  review capacity: prioritized allocation under scarcity");
    println!(
        "shape check: as capacity shrinks, zero-click surfaces keep their reviews \
         longest and escapes grow — prioritization, not uniform sampling."
    );
    crate::dump_metrics(&engine.metrics_snapshot());
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn e01_shape() {
        let report = super::run(true);
        // Every Figure-1 stage must be exercised.
        assert!(report.cases.iter().any(|c| c.auto_flagged));
        assert!(report.cases.iter().any(|c| c.manually_reviewed));
        assert!(report.auto_fixed > 0);
        assert!(report.expert_fixed + report.ai_fixed > 0);
        assert!(report.detection_metrics().recall() > 0.7);
        // Escapes, if any, are local-surface logic classes the automation
        // and the surface gate both miss.
        for c in &report.cases {
            if c.truly_vulnerable && !c.detected() {
                assert_eq!(c.surface, vulnman_analysis::Surface::Local, "{c:?}");
            }
        }
    }
}
