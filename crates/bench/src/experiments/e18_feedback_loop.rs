//! E18 — the workflow feedback loop (the paper's declared future work, §V).
//!
//! Paper anchor: "We leave the discussion on additional components …
//! (e.g., feedback loop, vulnerability prioritization, fuzzing techniques)
//! as our future work." Here the loop is closed: every adjudicated case
//! (confirmed fix or dismissed alarm) becomes supervision, and the deployed
//! model is fine-tuned after each batch — industry's structural data
//! advantage (Gap 4) expressed as a process.

use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
use vulnman_core::feedback::{run_feedback_loop, FeedbackTrace};
use vulnman_core::report::{fmt3, pct, Table};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_ml::pipeline::model_zoo;
use vulnman_ml::split::stratified_split;
use vulnman_synth::cwe::{Cwe, CweDistribution};
use vulnman_synth::dataset::{Dataset, DatasetBuilder};
use vulnman_synth::style::StyleProfile;
use vulnman_synth::tier::Tier;

/// Runs the experiment.
pub fn run(quick: bool) -> FeedbackTrace {
    crate::banner(
        "E18",
        "closing the loop: workflow adjudications retrain the deployed model",
        "\"feedback loop … as our future work\" (§V); industry's label-quality \
         advantage (Gap 4) as a living process",
    );
    let n_batches = if quick { 3 } else { 6 };
    let per_batch = if quick { 50 } else { 120 };

    // The stream: a divergent team's injection-heavy backlog.
    let team = StyleProfile::internal_teams()[2].clone();
    let dist = CweDistribution::new(vec![
        (Cwe::SqlInjection, 2.0),
        (Cwe::CommandInjection, 1.0),
        (Cwe::PathTraversal, 1.0),
        (Cwe::OutOfBoundsWrite, 1.0),
        (Cwe::NullDereference, 1.0),
    ]);
    let full = DatasetBuilder::new(1801)
        .teams(vec![team])
        .vulnerable_count(per_batch * n_batches / 2 + 80)
        .vulnerable_fraction(0.35)
        .cwe_distribution(dist)
        .hard_negative_fraction(0.7)
        .tier_mix(vec![(Tier::Curated, 1.0)])
        .build();
    let split = stratified_split(&full, 0.3, 11);
    let shuffled = split.train.shuffled(13);
    let mut batches = vec![Dataset::new(); n_batches];
    for (i, s) in shuffled.iter().enumerate() {
        batches[i % n_batches].push(s.clone());
    }

    // The deployed model: generic mainstream training only.
    let generic = DatasetBuilder::new(1802).vulnerable_count(if quick { 100 } else { 250 }).build();
    let mut model = model_zoo(61).remove(0); // token-lr
    model.train(&generic);

    let make_engine = |_m: &vulnman_ml::pipeline::DetectionModel| {
        let mut registry = DetectorRegistry::new();
        registry.register(Box::new(RuleBasedDetector::standard()));
        WorkflowEngine::new(registry, WorkflowConfig::default())
    };
    let trace = run_feedback_loop(&mut model, make_engine, &batches, &split.test);

    let mut t = Table::new(vec![
        "batch",
        "labels harvested",
        "harvest label noise",
        "model F1 on team hold-out",
    ]);
    t.row(vec!["(deployed)".into(), "-".into(), "-".into(), fmt3(trace.initial_f1())]);
    for i in 0..trace.harvested_per_batch.len() {
        t.row(vec![
            (i + 1).to_string(),
            trace.harvested_per_batch[i].to_string(),
            pct(trace.harvest_noise[i]),
            fmt3(trace.model_f1[i + 1]),
        ]);
    }
    t.print("E18  feedback loop: adjudication-driven fine-tuning");
    println!(
        "shape check: the generic model climbs toward team-tuned quality batch by \
         batch, trained only on what the workflow itself adjudicated (no oracle \
         labels); residual harvest noise is the analysts' miss rate."
    );
    trace
}

#[cfg(test)]
mod tests {
    #[test]
    fn e18_shape() {
        let trace = super::run(true);
        assert!(
            trace.final_f1() > trace.initial_f1(),
            "feedback must improve the model: {:?}",
            trace.model_f1
        );
        // Label noise stays moderate (adjudication, not random labels).
        assert!(trace.harvest_noise.iter().all(|&n| n < 0.3), "{:?}", trace.harvest_noise);
    }
}
