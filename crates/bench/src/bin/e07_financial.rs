//! Binary wrapper for experiment `e07_financial` (pass `--quick` for a CI-sized run,
//! `--metrics-out FILE` to dump the observability snapshot as JSON).

fn main() {
    let _ = vulnman_bench::experiments::e07_financial::run(vulnman_bench::quick_from_args());
}
