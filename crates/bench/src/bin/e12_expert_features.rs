//! Binary wrapper for experiment `e12_expert_features` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e12_expert_features::run(vulnman_bench::quick_from_args());
}
