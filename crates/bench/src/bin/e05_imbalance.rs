//! Binary wrapper for experiment `e05_imbalance` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e05_imbalance::run(vulnman_bench::quick_from_args());
}
