//! Binary wrapper for experiment `e08_duplication` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e08_duplication::run(vulnman_bench::quick_from_args());
}
