//! Binary wrapper for experiment `e13_anonymization` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e13_anonymization::run(vulnman_bench::quick_from_args());
}
