//! Binary wrapper for experiment `e02_agreement` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e02_agreement::run(vulnman_bench::quick_from_args());
}
