//! Binary wrapper for experiment `e01_workflow` (pass `--quick` for a CI-sized run,
//! `--metrics-out FILE` to dump the observability snapshot as JSON).

fn main() {
    let _ = vulnman_bench::experiments::e01_workflow::run(vulnman_bench::quick_from_args());
}
