//! Binary wrapper for experiment `e01_workflow` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e01_workflow::run(vulnman_bench::quick_from_args());
}
