//! `BENCH_serve.json` generator: the committed performance trajectory of
//! the `vulnman serve` analysis service.
//!
//! Measures sustained request throughput and response-latency quantiles
//! (p50/p99, from the server's `serve.latency_micros` histogram) at client
//! jobs ∈ {1, 4} against a live loopback server, plus the incremental-
//! recompute speedup on a single-function-change workload (edit one
//! function of a 16-function unit per iteration; the per-stage cache must
//! make that at least 5x cheaper than full re-analysis). CI re-measures
//! with `--check` (which always uses the full window, so the comparison
//! against the committed full-window entry is like-for-like) and fails on
//! a >10% sustained-throughput regression or a speedup below 5x (see
//! `.github/workflows/ci.yml`, job `serve`).
//!
//! Usage: `bench_serve [--quick] [--out FILE] [--label STR] [--check]`

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use vulnman_analysis::SemanticEngine;
use vulnman_lang::{parse, AnalysisCache};
use vulnman_obs::Registry;
use vulnman_serve::{spawn, Request, ServeConfig, SERVE_CACHE_ENTRY_LIMIT};
use vulnman_synth::dataset::DatasetBuilder;

/// Latency summary from one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageLatency {
    /// Median, microseconds.
    p50_us: f64,
    /// Tail, microseconds.
    p99_us: f64,
    /// Mean, microseconds.
    mean_us: f64,
    /// Observations behind the quantiles.
    count: u64,
}

/// One measured configuration (e.g. `serve_jobs4`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConfigResult {
    /// Requests (or analysis iterations) per second, sustained.
    throughput_elem_per_s: f64,
    /// Units of work behind the throughput number.
    iters: u64,
    /// Mean wall time per unit, milliseconds.
    ms_per_iter: f64,
    /// Latency quantiles, keyed by histogram name.
    stages: BTreeMap<String, StageLatency>,
}

/// One entry in the committed trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Human label for the measurement.
    label: String,
    /// Seconds since the Unix epoch at measurement time.
    unix_time: u64,
    /// Whether this was a `--quick` (CI-sized) run.
    quick: bool,
    /// Distinct request sources in the client mix.
    corpus: usize,
    /// Results keyed by configuration name.
    configs: BTreeMap<String, ConfigResult>,
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    /// Benchmark identity; always `serve_throughput`.
    benchmark: String,
    /// Measurement entries, oldest first.
    history: Vec<Entry>,
}

/// Request sources for the serving mix: a small corpus clients resubmit,
/// the cache-friendly shape of a long-running service.
fn sources() -> Vec<String> {
    DatasetBuilder::new(17)
        .vulnerable_count(4)
        .vulnerable_fraction(0.5)
        .build()
        .samples()
        .iter()
        .map(|s| s.source.clone())
        .collect()
}

/// Sustained closed-loop load: `clients` threads each run one connection,
/// lockstep request/response, for `window`. Returns the measured config.
fn measure_serve(clients: usize, window: Duration) -> ConfigResult {
    let metrics = Registry::new();
    let config = ServeConfig { workers: clients, queue: 256, ..ServeConfig::default() };
    let server = spawn("127.0.0.1:0", config, &metrics).expect("bind loopback");
    let addr = server.addr();
    let srcs = sources();

    // Warm-up: one pass over every source primes the per-stage cache and
    // the lazy code paths, so the window measures steady state.
    run_client(addr, &srcs, 1_000_000, Duration::from_millis(50));
    let warm = metrics.snapshot();

    let start = Instant::now();
    let iters: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let srcs = &srcs;
                scope.spawn(move || run_client(addr, srcs, (c as u64 + 1) * 10_000_000, window))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let elapsed = start.elapsed();

    let mut stages = BTreeMap::new();
    let snapshot = metrics.snapshot();
    if let Some(h) = snapshot.histograms.get("serve.latency_micros") {
        let mut h = h.clone();
        // Subtract warm-up observations: quantiles describe the window.
        if let Some(b) = warm.histograms.get("serve.latency_micros") {
            h.count -= b.count;
            h.sum -= b.sum;
            for (i, c) in b.buckets.iter().enumerate() {
                h.buckets[i] -= c;
            }
        }
        if h.count > 0 {
            stages.insert(
                "serve.latency_micros".to_string(),
                StageLatency {
                    p50_us: h.quantile(0.50),
                    p99_us: h.quantile(0.99),
                    mean_us: h.mean(),
                    count: h.count,
                },
            );
        }
    }
    server.shutdown();

    let secs = elapsed.as_secs_f64();
    ConfigResult {
        throughput_elem_per_s: iters as f64 / secs,
        iters,
        ms_per_iter: secs * 1e3 / iters.max(1) as f64,
        stages,
    }
}

/// One closed-loop client: lint requests round-robin over `srcs` until the
/// window closes. Returns completed request count.
fn run_client(addr: std::net::SocketAddr, srcs: &[String], id_base: u64, window: Duration) -> u64 {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let start = Instant::now();
    let mut done = 0u64;
    while start.elapsed() < window {
        let req = Request {
            id: id_base + done,
            kind: "lint".into(),
            source: srcs[done as usize % srcs.len()].clone(),
            label: None,
            cwe: None,
        };
        let mut line = serde_json::to_string(&req).expect("serialize");
        line.push('\n');
        writer.write_all(line.as_bytes()).expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("recv");
        assert!(!resp.is_empty(), "server closed mid-window");
        done += 1;
    }
    done
}

/// One heavy chain-unit function body: nested loops over six tracked
/// variables, so the three-domain fixpoint — not parsing or fingerprinting
/// — dominates each function's analysis cost. `feed` is the upstream value
/// expression (`x` for the chain head, `f{i-1}(x)` otherwise).
fn chain_fn(name: &str, salt: usize, feed: &str) -> String {
    format!(
        "int {name}(int x) {{ \
         int a = 0; int b = 1; int c = 0; int d = 0; int e = 0; \
         int i = 0; int j = 0; \
         while (i < 12) {{ \
         j = 0; \
         while (j < 12) {{ \
         a = a + {feed} + b; b = b + c + {salt}; c = c + d + j; \
         d = d + e + 1; e = e + a; j = j + 1; \
         }} \
         b = b + i; i = i + 1; \
         }} \
         return a + b + c + d + e; }}\n"
    )
}

/// A 16-function translation unit whose last function's body carries an
/// editable constant — the single-function-change workload. The edited
/// `target` is deliberately trivial: the measurement isolates what an
/// incremental resubmission *must* pay (lex, parse, fingerprints, one tiny
/// fixpoint) against what full re-analysis pays (fifteen heavy fixpoints).
fn chain_unit(edit: u64) -> String {
    let mut src = chain_fn("f0", 0, "x");
    for i in 1..15 {
        src.push_str(&chain_fn(&format!("f{i}"), i, &format!("f{}(x)", i - 1)));
    }
    src.push_str(&format!("int target(int x) {{ return f14(x) + {edit}; }}\n"));
    src
}

/// Incremental vs full re-analysis on the chain unit: each iteration edits
/// only `target`. Returns (incremental, full) configs.
fn measure_incremental(window: Duration) -> (ConfigResult, ConfigResult) {
    let engine = SemanticEngine::new();

    // Incremental: one persistent per-stage cache across edits, bounded
    // exactly like the server's (every edit is a new unit version, so an
    // unbounded cache would retain all of them and the resulting heap
    // growth would tax the measurement).
    let cache = AnalysisCache::new().with_entry_limit(SERVE_CACHE_ENTRY_LIMIT);
    engine.scan_source_incremental(&chain_unit(0), &cache).expect("chain parses");
    let start = Instant::now();
    let mut incr_iters = 0u64;
    while start.elapsed() < window {
        let src = chain_unit(incr_iters + 1);
        std::hint::black_box(engine.scan_source_incremental(&src, &cache).unwrap());
        incr_iters += 1;
    }
    let incr_secs = start.elapsed().as_secs_f64();

    // Full: parse + whole-program fixpoint per edit, no cache.
    let start = Instant::now();
    let mut full_iters = 0u64;
    while start.elapsed() < window {
        let src = chain_unit(full_iters + 1);
        std::hint::black_box(engine.analyze(&parse(&src).unwrap()));
        full_iters += 1;
    }
    let full_secs = start.elapsed().as_secs_f64();

    let mk = |iters: u64, secs: f64| ConfigResult {
        throughput_elem_per_s: iters as f64 / secs,
        iters,
        ms_per_iter: secs * 1e3 / iters.max(1) as f64,
        stages: BTreeMap::new(),
    };
    (mk(incr_iters, incr_secs), mk(full_iters, full_secs))
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn speedup(entry: &Entry) -> f64 {
    let incr = entry.configs.get("incremental_edit").map(|c| c.throughput_elem_per_s);
    let full = entry.configs.get("full_reanalysis").map(|c| c.throughput_elem_per_s);
    match (incr, full) {
        (Some(i), Some(f)) if f > 0.0 => i / f,
        _ => 0.0,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".into());
    let label = arg_value(&args, "--label").unwrap_or_else(|| "measurement".into());
    // The regression gate compares against the committed full-window
    // baseline, so a gated run must use the same window — a 400ms slice
    // is systematically slower (warmup weighs more) and would trip the
    // gate spuriously.
    if quick && check {
        println!("bench_serve: --check forces the full window (ignoring --quick)");
    }
    let window = if quick && !check { Duration::from_millis(400) } else { Duration::from_secs(2) };

    let srcs = sources();
    println!("bench_serve: {} request sources, window {window:?}", srcs.len());

    let mut configs = BTreeMap::new();
    for (name, clients) in [("serve_jobs1", 1usize), ("serve_jobs4", 4)] {
        let r = measure_serve(clients, window);
        let lat = r.stages.get("serve.latency_micros");
        println!(
            "  {name:<16} {:>9.1} req/s   p50 {:>7.1} us   p99 {:>8.1} us",
            r.throughput_elem_per_s,
            lat.map_or(0.0, |l| l.p50_us),
            lat.map_or(0.0, |l| l.p99_us),
        );
        configs.insert(name.to_string(), r);
    }

    let (incr, full) = measure_incremental(window);
    println!(
        "  incremental_edit {:>9.1} iters/s   full_reanalysis {:>9.1} iters/s   speedup {:.1}x",
        incr.throughput_elem_per_s,
        full.throughput_elem_per_s,
        incr.throughput_elem_per_s / full.throughput_elem_per_s.max(1e-9),
    );
    configs.insert("incremental_edit".to_string(), incr);
    configs.insert("full_reanalysis".to_string(), full);

    let entry = Entry {
        label,
        unix_time: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        quick,
        corpus: srcs.len(),
        configs,
    };

    let mut trajectory = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str::<Trajectory>(&s).ok())
        .unwrap_or_else(|| Trajectory {
            benchmark: "serve_throughput".into(),
            history: Vec::new(),
        });

    if check {
        let Some(committed) = trajectory.history.last() else {
            eprintln!("bench_serve --check: no committed baseline in {out}");
            std::process::exit(2);
        };
        let key = "serve_jobs1";
        let base = committed.configs.get(key).map(|c| c.throughput_elem_per_s).unwrap_or(0.0);
        let now = entry.configs.get(key).map(|c| c.throughput_elem_per_s).unwrap_or(0.0);
        let ratio = if base > 0.0 { now / base } else { 1.0 };
        println!(
            "gate: {key} committed {base:.1} req/s, measured {now:.1} req/s ({:.1}%)",
            ratio * 100.0
        );
        if ratio < 0.90 {
            eprintln!("bench_serve --check: sustained throughput regressed more than 10%");
            std::process::exit(1);
        }
        let s = speedup(&entry);
        println!("gate: incremental speedup {s:.1}x (floor 5x)");
        if s < 5.0 {
            eprintln!("bench_serve --check: incremental edit speedup fell below 5x");
            std::process::exit(1);
        }
        println!("gate: within budget");
        return;
    }

    trajectory.history.push(entry);
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(&out, json + "\n").expect("write trajectory file");
    println!(
        "wrote {out} ({} entr{})",
        trajectory.history.len(),
        if trajectory.history.len() == 1 { "y" } else { "ies" }
    );
}
