//! Binary wrapper for experiment `e17_static_vs_dynamic` (pass `--quick`
//! for a CI-sized run).

fn main() {
    let _ =
        vulnman_bench::experiments::e17_static_vs_dynamic::run(vulnman_bench::quick_from_args());
}
