//! Binary wrapper for experiment `e09_label_noise` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e09_label_noise::run(vulnman_bench::quick_from_args());
}
