//! Binary wrapper for experiment `e16_training_sft` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e16_training_sft::run(vulnman_bench::quick_from_args());
}
