//! Binary wrapper for experiment `e10_data_scale` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e10_data_scale::run(vulnman_bench::quick_from_args());
}
