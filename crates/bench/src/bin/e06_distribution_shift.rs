//! Binary wrapper for experiment `e06_distribution_shift` (pass `--quick` for a CI-sized run).

fn main() {
    let _ =
        vulnman_bench::experiments::e06_distribution_shift::run(vulnman_bench::quick_from_args());
}
