//! Binary wrapper for experiment `e03_specialization` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e03_specialization::run(vulnman_bench::quick_from_args());
}
