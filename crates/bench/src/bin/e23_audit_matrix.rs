//! Binary wrapper for experiment `e23_audit_matrix` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e23_audit_matrix::run(vulnman_bench::quick_from_args());
}
