//! Binary wrapper for experiment `e21_clone_leakage` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e21_clone_leakage::run(vulnman_bench::quick_from_args());
}
