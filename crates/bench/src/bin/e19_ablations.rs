//! Binary wrapper for experiment `e19_ablations` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e19_ablations::run(vulnman_bench::quick_from_args());
}
