//! Binary wrapper for experiment `e11_multimodal` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e11_multimodal::run(vulnman_bench::quick_from_args());
}
