//! `BENCH_pipeline.json` generator: the committed performance trajectory of
//! the `workflow_scaling` configuration.
//!
//! Measures cold-path (cache off) workflow throughput at jobs ∈ {1, 2, 4},
//! the warm cached path at jobs = 4, and per-stage latency quantiles from
//! the engine's span histograms, then appends one labelled entry to the
//! trajectory file. CI regenerates the entry with `--quick` and fails if
//! cold jobs=1 throughput regressed more than 10% against the committed
//! baseline (see `.github/workflows/ci.yml`, job `bench`).
//!
//! Usage: `bench_pipeline [--quick] [--out FILE] [--label STR] [--check]`
//!
//! `--check` recomputes the measurement and compares against the last
//! committed entry without writing, exiting non-zero on a >10% cold-path
//! regression — the CI gate.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_obs::Registry;
use vulnman_synth::dataset::{Dataset, DatasetBuilder};

/// Stage-latency summary from one configuration's span histograms.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageLatency {
    /// Median per-sample latency, microseconds.
    p50_us: f64,
    /// Tail per-sample latency, microseconds.
    p99_us: f64,
    /// Mean per-sample latency, microseconds.
    mean_us: f64,
    /// Number of span observations behind the quantiles.
    count: u64,
}

/// One measured configuration (e.g. `cold_jobs1`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConfigResult {
    /// End-to-end throughput in samples per second.
    throughput_elem_per_s: f64,
    /// Timed `process()` iterations behind the throughput number.
    iters: u64,
    /// Mean wall time of one full `process()` pass, milliseconds.
    ms_per_iter: f64,
    /// Per-stage latency quantiles, keyed by span name.
    stages: BTreeMap<String, StageLatency>,
}

/// One entry in the committed trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Human label for the measurement (defaults to pre/post PR markers).
    label: String,
    /// Seconds since the Unix epoch at measurement time.
    unix_time: u64,
    /// Whether this was a `--quick` (CI-sized) run.
    quick: bool,
    /// Corpus size in samples.
    corpus: usize,
    /// Results keyed by configuration name.
    configs: BTreeMap<String, ConfigResult>,
}

/// The whole `BENCH_pipeline.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    /// Benchmark identity; always `workflow_scaling`.
    benchmark: String,
    /// Measurement entries, oldest first.
    history: Vec<Entry>,
}

/// Spans whose latency distribution goes into the report.
const STAGES: &[&str] = &[
    "span.stage.assess",
    "span.stage.assess.detect",
    "span.stage.assess.surface",
    "span.stage.repair",
];

fn corpus(n: usize) -> Dataset {
    DatasetBuilder::new(11).vulnerable_count(n).vulnerable_fraction(0.3).build()
}

fn mk_engine(jobs: usize, cache: bool, metrics: &Registry) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    WorkflowEngine::with_metrics(
        registry,
        WorkflowConfig { jobs, cache, ..Default::default() },
        metrics.clone(),
    )
}

/// Runs `process()` in a fixed wall-clock window and summarizes throughput
/// plus the stage-latency histograms accumulated during the timed passes.
fn measure(jobs: usize, cache: bool, ds: &Dataset, window: Duration) -> ConfigResult {
    // Untimed warm-up pass on a throwaway engine: touches every lazy code
    // path without polluting the measured engine's span histograms.
    mk_engine(jobs, cache, &Registry::new()).process(ds.samples());
    let metrics = Registry::new();
    let engine = mk_engine(jobs, cache, &metrics);
    if cache {
        engine.process(ds.samples()); // prime storage, then measure warm hits
    }
    let snapshot_base = metrics.snapshot();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        std::hint::black_box(engine.process(ds.samples()));
        iters += 1;
        if start.elapsed() >= window {
            break;
        }
    }
    let elapsed = start.elapsed();
    let snapshot = metrics.snapshot();

    let mut stages = BTreeMap::new();
    for &name in STAGES {
        let Some(h) = snapshot.histograms.get(name) else { continue };
        // Subtract the priming pass's observations so warm quantiles
        // describe only the timed window.
        let base = snapshot_base.histograms.get(name);
        let mut h = h.clone();
        if let Some(b) = base {
            h.count -= b.count;
            h.sum -= b.sum;
            for (i, c) in b.buckets.iter().enumerate() {
                h.buckets[i] -= c;
            }
        }
        if h.count == 0 {
            continue;
        }
        stages.insert(
            name.to_string(),
            StageLatency {
                p50_us: h.quantile(0.50),
                p99_us: h.quantile(0.99),
                mean_us: h.mean(),
                count: h.count,
            },
        );
    }

    let secs = elapsed.as_secs_f64();
    ConfigResult {
        throughput_elem_per_s: ds.len() as f64 * iters as f64 / secs,
        iters,
        ms_per_iter: secs * 1e3 / iters as f64,
        stages,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_pipeline.json".into());
    let label = arg_value(&args, "--label").unwrap_or_else(|| "measurement".into());
    let window = if quick { Duration::from_millis(300) } else { Duration::from_secs(2) };

    let ds = corpus(60);
    println!("bench_pipeline: corpus {} samples, window {:?}", ds.len(), window);

    let mut configs = BTreeMap::new();
    for (name, jobs, cache) in [
        ("cold_jobs1", 1usize, false),
        ("cold_jobs2", 2, false),
        ("cold_jobs4", 4, false),
        ("warm_jobs4", 4, true),
    ] {
        let r = measure(jobs, cache, &ds, window);
        println!(
            "  {name:<12} {:>10.1} elem/s   {:>8.3} ms/iter   iters {}",
            r.throughput_elem_per_s, r.ms_per_iter, r.iters
        );
        configs.insert(name.to_string(), r);
    }

    let entry = Entry {
        label,
        unix_time: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        quick,
        corpus: ds.len(),
        configs,
    };

    let mut trajectory = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str::<Trajectory>(&s).ok())
        .unwrap_or_else(|| Trajectory {
            benchmark: "workflow_scaling".into(),
            history: Vec::new(),
        });

    if check {
        let Some(committed) = trajectory.history.last() else {
            eprintln!("bench_pipeline --check: no committed baseline in {out}");
            std::process::exit(2);
        };
        let key = "cold_jobs1";
        let base = committed.configs.get(key).map(|c| c.throughput_elem_per_s).unwrap_or(0.0);
        let now = entry.configs.get(key).map(|c| c.throughput_elem_per_s).unwrap_or(0.0);
        let ratio = if base > 0.0 { now / base } else { 1.0 };
        println!(
            "gate: {key} committed {base:.1} elem/s, measured {now:.1} elem/s ({:.1}%)",
            ratio * 100.0
        );
        if ratio < 0.90 {
            eprintln!("bench_pipeline --check: cold-path throughput regressed more than 10%");
            std::process::exit(1);
        }
        println!("gate: within the 10% regression budget");
        return;
    }

    trajectory.history.push(entry);
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(&out, json + "\n").expect("write trajectory file");
    println!(
        "wrote {out} ({} entr{})",
        trajectory.history.len(),
        if trajectory.history.len() == 1 { "y" } else { "ies" }
    );
}
