//! `BENCH_graph.json` generator: the committed performance trajectory of
//! the whole-corpus call graph (`vulnman_analysis::corpusgraph`).
//!
//! Measured on a cross-file corpus (projects whose units genuinely call
//! into each other, so edge resolution and the closure/centrality passes do
//! real work):
//!
//! 1. **Build throughput** — units parsed, linked, and analyzed per second
//!    (closures, surfaces, betweenness, communities, blast radii), at
//!    jobs ∈ {1, 4}, cache disabled (cold parse every pass).
//! 2. **Warm-cache build** — the same build through a warm
//!    [`AnalysisCache`]: parses are memoized, so the number isolates the
//!    graph analytics themselves.
//! 3. **Report generation** — `report()` serialization rate over a built
//!    graph.
//!
//! CI re-measures with `--check` and fails when cold jobs1 build throughput
//! falls below half the committed baseline (cross-machine number; only a
//! halving — an algorithmic regression, not scheduler noise — trips it).
//! `--check` also re-asserts the determinism contract: the jobs1 and jobs4
//! reports must serialize byte-identically.
//!
//! Usage: `bench_graph [--quick] [--out FILE] [--label STR] [--check]`

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use vulnman_analysis::corpusgraph::CorpusGraph;
use vulnman_lang::AnalysisCache;
use vulnman_obs::Registry;
use vulnman_synth::dataset::{Dataset, DatasetBuilder};

/// One measured configuration (e.g. `build_jobs1`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConfigResult {
    /// Elements (units built or reports rendered) per second, sustained.
    throughput_elem_per_s: f64,
    /// Timed iterations behind the throughput number.
    iters: u64,
    /// Mean wall time per iteration, milliseconds.
    ms_per_iter: f64,
}

/// One entry in the committed trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Human label for the measurement.
    label: String,
    /// Seconds since the Unix epoch at measurement time.
    unix_time: u64,
    /// Whether this was a `--quick` (CI-sized) run.
    quick: bool,
    /// Units in the corpus.
    corpus: usize,
    /// Results keyed by configuration name.
    configs: BTreeMap<String, ConfigResult>,
}

/// The whole `BENCH_graph.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    /// Benchmark identity; always `corpus_graph`.
    benchmark: String,
    /// Measurement entries, oldest first.
    history: Vec<Entry>,
}

/// A cross-file corpus: sibling units of each project bridge-call into each
/// other, so the graph has real cross-unit edges to resolve and traverse.
fn cross_file_corpus(vulnerable: usize) -> Dataset {
    DatasetBuilder::new(37)
        .vulnerable_count(vulnerable)
        .vulnerable_fraction(0.4)
        .cross_file_links(true)
        .build()
}

/// Repeats `work` until `window` closes (at least once); returns a config
/// where one "element" is `elems_per_iter` units of the measured quantity.
fn measure(window: Duration, elems_per_iter: u64, mut work: impl FnMut()) -> ConfigResult {
    let start = Instant::now();
    let mut iters = 0u64;
    while iters == 0 || start.elapsed() < window {
        work();
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    ConfigResult {
        throughput_elem_per_s: (iters * elems_per_iter) as f64 / secs,
        iters,
        ms_per_iter: secs * 1e3 / iters as f64,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn throughput(entry: &Entry, key: &str) -> f64 {
    entry.configs.get(key).map(|c| c.throughput_elem_per_s).unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_graph.json".into());
    let label = arg_value(&args, "--label").unwrap_or_else(|| "measurement".into());
    // The gate compares against the committed full-size baseline, so
    // --check keeps the full corpus and window like bench_lsh.
    if quick && check {
        println!("bench_graph: --check forces the full corpus and window (ignoring --quick)");
    }
    let full = !quick || check;
    let vulnerable = if full { 100 } else { 25 };
    let window = if full { Duration::from_secs(2) } else { Duration::from_millis(400) };

    let ds = cross_file_corpus(vulnerable);
    let metrics = Registry::noop();
    println!("bench_graph: {} cross-file units, window {window:?}", ds.len());

    let mut configs = BTreeMap::new();

    // Cold builds: every pass re-parses (cache disabled), so the number
    // covers the whole pipeline at each worker count.
    for (name, jobs) in [("build_jobs1", 1usize), ("build_jobs4", 4)] {
        let r = measure(window, ds.len() as u64, || {
            let cache = AnalysisCache::disabled();
            std::hint::black_box(
                CorpusGraph::from_samples(ds.samples(), &cache, jobs, &metrics)
                    .expect("corpus parses"),
            );
        });
        println!("  {name:<14} {:>10.0} units/s", r.throughput_elem_per_s);
        configs.insert(name.to_string(), r);
    }

    // Warm-cache build: parses are memoized after the first pass, so this
    // isolates linking + closures + centrality + communities.
    let cache = AnalysisCache::new();
    let _ = CorpusGraph::from_samples(ds.samples(), &cache, 1, &metrics).expect("corpus parses");
    let warm = measure(window, ds.len() as u64, || {
        std::hint::black_box(
            CorpusGraph::from_samples(ds.samples(), &cache, 1, &metrics).expect("corpus parses"),
        );
    });
    println!("  build_warm     {:>10.0} units/s", warm.throughput_elem_per_s);
    configs.insert("build_warm".to_string(), warm);

    // Report generation over a built graph.
    let graph = CorpusGraph::from_samples(ds.samples(), &cache, 1, &metrics).expect("parses");
    let report = measure(window, 1, || {
        std::hint::black_box(serde_json::to_string(&graph.report()).expect("serializes"));
    });
    println!("  report         {:>10.1} reports/s", report.throughput_elem_per_s);
    configs.insert("report".to_string(), report);

    // Determinism contract, re-asserted on every run: jobs1 and jobs4
    // builds must serialize byte-identically.
    let g1 = CorpusGraph::from_samples(ds.samples(), &AnalysisCache::disabled(), 1, &metrics)
        .expect("corpus parses");
    let g4 = CorpusGraph::from_samples(ds.samples(), &AnalysisCache::disabled(), 4, &metrics)
        .expect("corpus parses");
    let j1 = serde_json::to_string(&g1.report()).expect("serializes");
    let j4 = serde_json::to_string(&g4.report()).expect("serializes");
    if j1 != j4 {
        eprintln!("bench_graph: jobs1 and jobs4 reports differ — determinism regression");
        std::process::exit(1);
    }
    println!("  determinism    jobs1 == jobs4 ({} report bytes)", j1.len());

    let entry = Entry {
        label,
        unix_time: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        quick,
        corpus: ds.len(),
        configs,
    };

    let mut trajectory = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str::<Trajectory>(&s).ok())
        .unwrap_or_else(|| Trajectory { benchmark: "corpus_graph".into(), history: Vec::new() });

    if check {
        let Some(committed) = trajectory.history.last() else {
            eprintln!("bench_graph --check: no committed baseline in {out}");
            std::process::exit(2);
        };
        let key = "build_jobs1";
        let base = throughput(committed, key);
        let now = throughput(&entry, key);
        let ratio = if base > 0.0 { now / base } else { 1.0 };
        println!(
            "gate: {key} committed {base:.0} units/s, measured {now:.0} units/s ({:.1}%)",
            ratio * 100.0
        );
        // Cross-machine number with CPU-quota noise; only a halving is
        // evidence of a real regression rather than scheduler jitter.
        if ratio < 0.50 {
            eprintln!("bench_graph --check: cold build throughput fell below half the baseline");
            std::process::exit(1);
        }
        println!("gate: within budget");
        return;
    }

    trajectory.history.push(entry);
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(&out, json + "\n").expect("write trajectory file");
    println!(
        "wrote {out} ({} entr{})",
        trajectory.history.len(),
        if trajectory.history.len() == 1 { "y" } else { "ies" }
    );
}
