//! Binary wrapper for experiment `e18_feedback_loop` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e18_feedback_loop::run(vulnman_bench::quick_from_args());
}
