//! Binary wrapper for experiment `e22_graph_triage` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e22_graph_triage::run(vulnman_bench::quick_from_args());
}
