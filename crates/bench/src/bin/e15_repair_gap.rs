//! Binary wrapper for experiment `e15_repair_gap` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e15_repair_gap::run(vulnman_bench::quick_from_args());
}
