//! `BENCH_lsh.json` generator: the committed performance trajectory of the
//! MinHash/LSH clone index and the clone-aware dedup path.
//!
//! Three claims are measured on a duplicate-heavy corpus (a synthetic base
//! set expanded with alpha-renamed near-duplicates, the kind exact-hash
//! dedup cannot fold):
//!
//! 1. **Index build throughput** — sources shingled, MinHash-signed, and
//!    LSH-bucketed per second, at build jobs ∈ {1, 4}.
//! 2. **Query sublinearity** — LSH candidate lookup + verification versus
//!    brute-force exact-Jaccard against every entry, on a 10k-entry index.
//!    The banded index touches only colliding buckets, so its query rate
//!    must stay a multiple of the brute-force rate.
//! 3. **Dedup warm path** — cold workflow `process()` with `dedup: true`
//!    (one representative per clone class analyzed, members propagated)
//!    versus `dedup: false` (every member analyzed) on the same corpus.
//!
//! CI re-measures with `--check` and fails when build throughput falls
//! below half the committed baseline, when the LSH query speedup drops
//! below 2x brute force, or when the dedup speedup drops below 1.2x (see
//! `.github/workflows/ci.yml`, job `clone`). The two speedups are
//! same-run ratios and gate tightly; the build number crosses machines
//! (and CPU-quota throttling), so only a halving — an algorithmic
//! regression, not scheduler noise — trips it.
//!
//! Usage: `bench_lsh [--quick] [--out FILE] [--label STR] [--check]`

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use vulnman_core::detector::{DetectorRegistry, RuleBasedDetector, SemanticDetector};
use vulnman_core::workflow::{WorkflowConfig, WorkflowEngine};
use vulnman_lang::clone::{CloneConfig, CloneIndex};
use vulnman_obs::Registry;
use vulnman_synth::dataset::{Dataset, DatasetBuilder};
use vulnman_synth::mutate::alpha_rename;

/// One measured configuration (e.g. `index_build_jobs1`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConfigResult {
    /// Elements (sources indexed, queries answered, or samples processed)
    /// per second, sustained.
    throughput_elem_per_s: f64,
    /// Timed iterations behind the throughput number.
    iters: u64,
    /// Mean wall time per iteration, milliseconds.
    ms_per_iter: f64,
}

/// One entry in the committed trajectory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Human label for the measurement.
    label: String,
    /// Seconds since the Unix epoch at measurement time.
    unix_time: u64,
    /// Whether this was a `--quick` (CI-sized) run.
    quick: bool,
    /// Sources in the index corpus.
    corpus: usize,
    /// Results keyed by configuration name.
    configs: BTreeMap<String, ConfigResult>,
}

/// The whole `BENCH_lsh.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Trajectory {
    /// Benchmark identity; always `clone_lsh`.
    benchmark: String,
    /// Measurement entries, oldest first.
    history: Vec<Entry>,
}

/// A duplicate-heavy source corpus: every base sample plus alpha-renamed
/// near-duplicates (distinct salts, so content keys never collide) until
/// `total` sources exist. Alpha renaming keeps function names — the corpus
/// both classifies *and* aligns, like real copy-pasted code.
fn duplicate_heavy_sources(total: usize) -> Vec<String> {
    let base: Vec<String> = DatasetBuilder::new(23)
        .vulnerable_count(total / 40)
        .vulnerable_fraction(0.5)
        .build()
        .samples()
        .iter()
        .map(|s| s.source.clone())
        .collect();
    let mut out = Vec::with_capacity(total);
    let mut salt = 0u32;
    while out.len() < total {
        for src in &base {
            if out.len() >= total {
                break;
            }
            if salt == 0 {
                out.push(src.clone());
            } else {
                out.push(alpha_rename(src, salt).unwrap_or_else(|| src.clone()));
            }
        }
        salt += 1;
    }
    out
}

/// A duplicate-heavy labeled dataset for the workflow dedup measurement:
/// the base corpus with `variants` alpha-renamed copies of each sample
/// (fresh ids, same labels).
fn duplicate_heavy_dataset(base_n: usize, variants: u32) -> Dataset {
    let base = DatasetBuilder::new(29).vulnerable_count(base_n).vulnerable_fraction(0.4).build();
    let mut ds = Dataset::new();
    let mut next_id = base.samples().iter().map(|s| s.id).max().unwrap_or(0) + 1;
    for s in base.samples() {
        ds.push(s.clone());
        for salt in 1..=variants {
            if let Some(renamed) = alpha_rename(&s.source, salt) {
                let mut dup = s.clone();
                dup.id = next_id;
                dup.source = renamed;
                dup.duplicate_of = Some(s.id);
                next_id += 1;
                ds.push(dup);
            }
        }
    }
    ds
}

/// Repeats `work` until `window` closes (at least once); returns a config
/// where one "element" is `elems_per_iter` units of the measured quantity.
fn measure(window: Duration, elems_per_iter: u64, mut work: impl FnMut()) -> ConfigResult {
    let start = Instant::now();
    let mut iters = 0u64;
    while iters == 0 || start.elapsed() < window {
        work();
        iters += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    ConfigResult {
        throughput_elem_per_s: (iters * elems_per_iter) as f64 / secs,
        iters,
        ms_per_iter: secs * 1e3 / iters as f64,
    }
}

/// The dedup measurement uses the full clone-invariant suite — rules plus
/// the semantic (absint) checkers, whose fixpoint dominates per-sample
/// cost. That is the configuration dedup exists for: the representative
/// pays the fixpoint once and its clone class rides the cache.
fn mk_engine(dedup: bool) -> WorkflowEngine {
    let mut registry = DetectorRegistry::new();
    registry.register(Box::new(RuleBasedDetector::standard()));
    registry.register(Box::new(SemanticDetector::standard()));
    WorkflowEngine::with_metrics(
        registry,
        WorkflowConfig { jobs: 1, cache: true, dedup, ..Default::default() },
        Registry::noop(),
    )
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn throughput(entry: &Entry, key: &str) -> f64 {
    entry.configs.get(key).map(|c| c.throughput_elem_per_s).unwrap_or(0.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_lsh.json".into());
    let label = arg_value(&args, "--label").unwrap_or_else(|| "measurement".into());
    // The gate compares ratios (sublinearity, dedup speedup) plus the
    // committed build throughput; the ratio checks are size-dependent, so
    // --check keeps the full 10k corpus and window like bench_serve.
    if quick && check {
        println!("bench_lsh: --check forces the full corpus and window (ignoring --quick)");
    }
    let full = !quick || check;
    let n_sources = if full { 10_000 } else { 2_000 };
    let window = if full { Duration::from_secs(2) } else { Duration::from_millis(400) };

    let sources = duplicate_heavy_sources(n_sources);
    let entries: Vec<(u64, &str)> =
        sources.iter().enumerate().map(|(i, s)| (i as u64, s.as_str())).collect();
    println!("bench_lsh: {} duplicate-heavy sources, window {window:?}", sources.len());

    let mut configs = BTreeMap::new();

    for (name, jobs) in [("index_build_jobs1", 1usize), ("index_build_jobs4", 4)] {
        let config = CloneConfig { jobs, ..CloneConfig::default() };
        let r = measure(window, entries.len() as u64, || {
            std::hint::black_box(CloneIndex::build(&entries, config));
        });
        println!("  {name:<18} {:>10.0} sources/s", r.throughput_elem_per_s);
        configs.insert(name.to_string(), r);
    }

    // Query rates against the same warm index: banded-LSH lookup versus a
    // brute-force exact-Jaccard scan of all entries.
    let index = CloneIndex::build(&entries, CloneConfig::default());
    let probes: Vec<&str> = sources.iter().step_by(97).map(String::as_str).collect();
    let lsh = measure(window, probes.len() as u64, || {
        for p in &probes {
            std::hint::black_box(index.query(p).expect("probe lexes"));
        }
    });
    // Brute force is orders of magnitude slower; a fraction of the probe
    // set keeps the window honest while measuring the same per-query cost.
    let brute_probes: Vec<&str> = probes.iter().step_by(8).copied().collect();
    let brute = measure(window, brute_probes.len() as u64, || {
        for p in &brute_probes {
            std::hint::black_box(index.query_brute_force(p).expect("probe lexes"));
        }
    });
    let sublinearity = lsh.throughput_elem_per_s / brute.throughput_elem_per_s.max(1e-9);
    println!(
        "  lsh_query          {:>10.0} queries/s   brute_query {:>8.0} queries/s   ({sublinearity:.1}x)",
        lsh.throughput_elem_per_s, brute.throughput_elem_per_s
    );
    configs.insert("lsh_query".to_string(), lsh);
    configs.insert("brute_query".to_string(), brute);

    // Cold workflow passes over a duplicate-heavy labeled corpus: dedup off
    // analyzes every member, dedup on analyzes one representative per clone
    // class and propagates. Fresh engine per pass so each pass pays the
    // cold cost the dedup plan is meant to avoid.
    // Heavily duplicated (each base sample copied `variants` times): the
    // plan cost (index build + alignment) is paid once per corpus while
    // the avoided work grows with every extra near-duplicate, mirroring
    // the synthetic-duplication pathology the paper calls out.
    let (base_n, variants) = if full { (60, 9) } else { (20, 6) };
    let ds = duplicate_heavy_dataset(base_n, variants);
    let dup_window = window.min(Duration::from_secs(1));
    let mut results = BTreeMap::new();
    for (name, dedup) in [("dedup_off", false), ("dedup_on", true)] {
        let r = measure(dup_window, ds.len() as u64, || {
            std::hint::black_box(mk_engine(dedup).process(ds.samples()));
        });
        results.insert(name, r.throughput_elem_per_s);
        configs.insert(name.to_string(), r);
    }
    let dedup_speedup = results["dedup_on"] / results["dedup_off"].max(1e-9);
    println!(
        "  dedup_on           {:>10.0} samples/s   dedup_off   {:>8.0} samples/s   ({dedup_speedup:.1}x)",
        results["dedup_on"], results["dedup_off"]
    );

    let entry = Entry {
        label,
        unix_time: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        quick,
        corpus: sources.len(),
        configs,
    };

    let mut trajectory = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str::<Trajectory>(&s).ok())
        .unwrap_or_else(|| Trajectory { benchmark: "clone_lsh".into(), history: Vec::new() });

    if check {
        let Some(committed) = trajectory.history.last() else {
            eprintln!("bench_lsh --check: no committed baseline in {out}");
            std::process::exit(2);
        };
        let key = "index_build_jobs1";
        let base = throughput(committed, key);
        let now = throughput(&entry, key);
        let ratio = if base > 0.0 { now / base } else { 1.0 };
        println!(
            "gate: {key} committed {base:.0} sources/s, measured {now:.0} sources/s ({:.1}%)",
            ratio * 100.0
        );
        // Same-machine noise on this measurement runs 30%+ (CPU-quota
        // throttling penalizes whichever run goes second); only a halving
        // is evidence of a real regression rather than scheduler noise.
        if ratio < 0.50 {
            eprintln!("bench_lsh --check: index build throughput fell below half the baseline");
            std::process::exit(1);
        }
        println!("gate: LSH query sublinearity {sublinearity:.1}x brute force (floor 2x)");
        if sublinearity < 2.0 {
            eprintln!("bench_lsh --check: LSH query fell below 2x brute force");
            std::process::exit(1);
        }
        println!("gate: dedup warm-path speedup {dedup_speedup:.2}x (floor 1.2x)");
        if dedup_speedup < 1.2 {
            eprintln!("bench_lsh --check: clone dedup speedup fell below 1.2x");
            std::process::exit(1);
        }
        println!("gate: within budget");
        return;
    }

    trajectory.history.push(entry);
    let json = serde_json::to_string_pretty(&trajectory).expect("trajectory serializes");
    std::fs::write(&out, json + "\n").expect("write trajectory file");
    println!(
        "wrote {out} ({} entr{})",
        trajectory.history.len(),
        if trajectory.history.len() == 1 { "y" } else { "ies" }
    );
}
