//! Binary wrapper for experiment `e04_customization` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e04_customization::run(vulnman_bench::quick_from_args());
}
