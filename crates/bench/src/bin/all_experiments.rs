//! Runs the full experiment index E01–E16 in order (pass `--quick` for a
//! CI-sized run). This regenerates every table recorded in `EXPERIMENTS.md`.

fn main() {
    vulnman_bench::experiments::run_all(vulnman_bench::quick_from_args());
}
