//! Binary wrapper for experiment `e14_artifacts` (pass `--quick` for a CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e14_artifacts::run(vulnman_bench::quick_from_args());
}
