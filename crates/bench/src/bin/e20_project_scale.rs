//! Binary wrapper for experiment `e20_project_scale` (pass `--quick` for a
//! CI-sized run).

fn main() {
    let _ = vulnman_bench::experiments::e20_project_scale::run(vulnman_bench::quick_from_args());
}
