//! Binary wrapper for experiment `e20_project_scale` (pass `--quick` for a
//! CI-sized run, `--metrics-out FILE` to dump the observability snapshot
//! as JSON).

fn main() {
    let _ = vulnman_bench::experiments::e20_project_scale::run(vulnman_bench::quick_from_args());
}
