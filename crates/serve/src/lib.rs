//! # vulnman-serve
//!
//! `vulnman serve`: a long-running, std-only analysis service over TCP.
//! Clients stream newline-delimited JSON requests (`analyze`, `lint`,
//! `oracle`) down one connection — or fire a single HTTP `POST` for
//! curl-friendliness — and a bounded worker pool answers them concurrently.
//!
//! The industrial half of the paper's gap study is *operational*: a
//! vulnerability-management pipeline is a service teams resubmit code to
//! all day, not a batch job. This crate makes that workload real, and the
//! per-stage incremental cache in `vulnman-lang` (lex → parse → CFG →
//! summaries → findings, keyed per function) makes resubmission cheap:
//! editing one function re-runs only the stages whose input hashes changed.
//!
//! Three properties the test suite pins:
//!
//! * **Equivalence** — responses are byte-identical to a cold, full,
//!   single-threaded analysis, for any worker count, interleaving, or
//!   cache warmth (`tests/serve_incremental.rs`, `tests/serve_stress.rs`).
//! * **Bounded admission** — the queue never exceeds its configured bound;
//!   overload sheds deterministically into the degradation ledger instead
//!   of growing latency without limit.
//! * **Defensive framing** — every malformed input class gets a structured
//!   error response; nothing panics or wedges the connection.
//!
//! ## Quick start
//!
//! ```
//! use vulnman_obs::Registry;
//! use vulnman_serve::{spawn, Request, ServeConfig};
//!
//! let metrics = Registry::new();
//! let server = spawn("127.0.0.1:0", ServeConfig::default(), &metrics).unwrap();
//! // ... point clients at server.addr() ...
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod protocol;
pub mod server;
pub mod service;

pub use protocol::{
    parse_request, read_frame, Frame, Request, RequestError, Response, MAX_REQUEST_BYTES,
};
pub use server::{register_serve_instruments, spawn, ServeConfig, ServerHandle};
pub use service::{ServiceCore, SERVE_CACHE_ENTRY_LIMIT};
