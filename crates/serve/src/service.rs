//! The request executor shared by every worker thread: rule engine,
//! incremental semantic engine, and differential oracle over one shared
//! per-stage [`AnalysisCache`], plus the deterministic fault walk at
//! [`Site::ServeRequest`].
//!
//! Responses are intentionally free of timing, trace, or cache-state data:
//! two servers given the same request must produce byte-identical response
//! bodies regardless of worker count, request interleaving, or cache
//! warmth. That is what lets the stress suite compare concurrent runs
//! against single-threaded goldens.

use crate::protocol::{BlastEntry, GraphStats, Request, Response};
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use vulnman_analysis::corpusgraph::register_graph_instruments;
use vulnman_analysis::{
    register_audit_instruments, AuditConfig, AuditEngine, AuditReport, CorpusGraph,
    DifferentialOracle, OracleConfig, RuleEngine, SemanticEngine, UnitRef,
};
use vulnman_core::DegradationSummary;
use vulnman_faults::{site_key, FaultConfig, FaultKind, FaultPlan, Site};
use vulnman_lang::clone::{CloneConfig, CloneIndex};
use vulnman_lang::AnalysisCache;
use vulnman_obs::Registry;
use vulnman_synth::{Cwe, Sample, Tier};

/// FNV-1a, for hashing the request kind into the fault key.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Unit bound on the service's [`AnalysisCache`] (parse/analysis tables
/// hold this many entries; the per-function stage table scales by the
/// cache's fanout factor). A long-running
/// server sees an unbounded stream of distinct unit versions; retaining
/// every historical parse and stage artifact grows the heap without limit,
/// and past a few hundred megabytes that growth measurably taxes every
/// allocation the analysis makes. Epoch eviction at this bound keeps the
/// working set resident (one flush forces at most one cold analysis per
/// live unit) while holding memory — and allocator pressure — flat. The
/// flush volume is visible on the `cache.evictions` counter. Eviction never
/// changes a response, only whether a computation is repeated.
pub const SERVE_CACHE_ENTRY_LIMIT: usize = 512;

/// Blast-radius leaders included in a `graph` response.
const GRAPH_TOP_BLAST: usize = 5;

/// Scan fan-out for the server's audit matrix. The matrix is
/// byte-identical at any jobs count (verified by the audit engine's own
/// tests), so this only trades latency on the first `audit` request.
const AUDIT_JOBS: usize = 4;

/// Shared, thread-safe request executor.
pub struct ServiceCore {
    rules: RuleEngine,
    semantics: SemanticEngine,
    oracle: DifferentialOracle,
    cache: AnalysisCache,
    clone_index: Mutex<CloneIndex>,
    graph_units: Mutex<VecDeque<(u64, String)>>,
    audit_report: OnceLock<AuditReport>,
    metrics: Registry,
    plan: FaultPlan,
    max_retries: u32,
}

impl ServiceCore {
    /// Builds the executor: full rule suite, semantic engine, and oracle
    /// over one metrics-wired cache (bounded to
    /// [`SERVE_CACHE_ENTRY_LIMIT`] units), plus the fault plan
    /// from `fault`.
    pub fn new(metrics: &Registry, fault: &FaultConfig) -> Self {
        register_graph_instruments(metrics);
        register_audit_instruments(metrics);
        ServiceCore {
            rules: RuleEngine::default_suite(),
            semantics: SemanticEngine::new(),
            oracle: DifferentialOracle::with_metrics(OracleConfig::default(), metrics),
            cache: AnalysisCache::with_metrics(metrics).with_entry_limit(SERVE_CACHE_ENTRY_LIMIT),
            clone_index: Mutex::new(
                CloneIndex::new(CloneConfig::default()).with_entry_limit(SERVE_CACHE_ENTRY_LIMIT),
            ),
            graph_units: Mutex::new(VecDeque::new()),
            audit_report: OnceLock::new(),
            metrics: metrics.clone(),
            plan: FaultPlan::new(fault),
            max_retries: fault.max_retries,
        }
    }

    /// The shared per-stage cache (exposed so tests can inspect stage
    /// counters after a request mix).
    pub fn cache(&self) -> &AnalysisCache {
        &self.cache
    }

    /// Whether the fault plan degrades request `id` of `kind` — a pure
    /// function of the request coordinates, so the answer is identical for
    /// any worker count (used by tests to precompute expected statuses).
    pub fn degrades(&self, id: u64, kind: &str) -> bool {
        self.plan.exhausts(Site::ServeRequest, site_key(id, fnv(kind.as_bytes())), self.max_retries)
    }

    /// Handles one admitted request: fault walk first, then the operation.
    /// All degradation accounting lands in `ledger`.
    pub fn handle(&self, req: &Request, ledger: &Mutex<DegradationSummary>) -> Response {
        if self.fault_walk(req, ledger) {
            return Response::degraded(req.id);
        }
        match req.kind.as_str() {
            "analyze" => self.analyze(req),
            "lint" => self.lint(req),
            "oracle" => self.oracle(req),
            "clones" => self.clones(req),
            "graph" => self.graph(req),
            "audit" => self.audit(req),
            other => Response::error(req.id, format!("unknown kind {other:?}")),
        }
    }

    /// Walks the retry loop of the fault plan at [`Site::ServeRequest`],
    /// keyed by `(request id, kind)`. Returns `true` when the request must
    /// degrade (crash, or every attempt faulted). Mirrors
    /// [`FaultPlan::exhausts`] so [`ServiceCore::degrades`] predicts the
    /// outcome exactly.
    fn fault_walk(&self, req: &Request, ledger: &Mutex<DegradationSummary>) -> bool {
        if self.plan.rate() <= 0.0 {
            return false;
        }
        let key = site_key(req.id, fnv(req.kind.as_bytes()));
        let mut led = ledger.lock().unwrap_or_else(|e| e.into_inner());
        for attempt in 0..=self.max_retries {
            match self.plan.decide(Site::ServeRequest, key, attempt) {
                None => {
                    if attempt > 0 {
                        led.recovered += 1;
                    }
                    return false;
                }
                Some(kind) => {
                    match kind {
                        FaultKind::Transient => led.transient += 1,
                        FaultKind::Timeout => led.timeout += 1,
                        FaultKind::Corrupt => led.corrupt += 1,
                        FaultKind::Crash => led.crash += 1,
                    }
                    if kind == FaultKind::Crash {
                        led.assessments_lost += 1;
                        return true;
                    }
                    if attempt < self.max_retries {
                        led.retries += 1;
                    }
                }
            }
        }
        led.exhausted += 1;
        led.assessments_lost += 1;
        true
    }

    /// Rule-based findings followed by semantic findings, each produced
    /// through the shared cache (rules through the whole-sample table,
    /// semantics through the per-stage incremental driver). Family
    /// double-reports — a rule match and a semantic proof of the same
    /// defect at the same span — collapse to the evidence-bearing finding
    /// via [`vulnman_analysis::dedupe_findings`].
    fn analyze(&self, req: &Request) -> Response {
        let key = AnalysisCache::content_key(&req.source);
        let mut findings = match self.rules.scan_source_cached_keyed(key, &req.source, &self.cache)
        {
            Ok(f) => f,
            Err(e) => return Response::error(req.id, format!("parse error: {e}")),
        };
        match self.semantics.scan_source_incremental(&req.source, &self.cache) {
            Ok(scan) => findings.extend(scan.findings),
            Err(e) => return Response::error(req.id, format!("parse error: {e}")),
        }
        Response::ok_findings(req.id, vulnman_analysis::dedupe_findings(findings))
    }

    /// Semantic (absint) findings only, through the incremental driver.
    fn lint(&self, req: &Request) -> Response {
        match self.semantics.scan_source_incremental(&req.source, &self.cache) {
            Ok(scan) => Response::ok_findings(req.id, scan.findings),
            Err(e) => Response::error(req.id, format!("parse error: {e}")),
        }
    }

    /// Differential-oracle classification of the submitted sample.
    fn oracle(&self, req: &Request) -> Response {
        let cwe = match &req.cwe {
            None => None,
            Some(name) => match serde_json::from_str::<Cwe>(&format!("{name:?}")) {
                Ok(c) => Some(c),
                Err(_) => return Response::error(req.id, format!("unknown cwe {name:?}")),
            },
        };
        let label = req.label.unwrap_or(false);
        let sample = Sample {
            id: req.id,
            source: req.source.clone(),
            label,
            observed_label: label,
            cwe,
            target_fn: String::new(),
            team: "serve".into(),
            project: "serve".into(),
            tier: Tier::Curated,
            duplicate_of: None,
            artifacts: Default::default(),
        };
        Response::ok_disagreements(req.id, self.oracle.classify_sample(&sample))
    }

    /// Registers `source` in the shared clone index and returns the ids of
    /// previously registered sources that are verified near-clones.
    ///
    /// Query-before-insert: the response covers everything registered before
    /// this request, so for a fixed registration order it is deterministic.
    /// Like the analysis cache, the index is bounded (epoch eviction at
    /// [`SERVE_CACHE_ENTRY_LIMIT`] entries), so a long-lived server holds
    /// memory flat; a flush only forgets *old* registrations, it never
    /// corrupts a response.
    fn clones(&self, req: &Request) -> Response {
        let mut index = self.clone_index.lock().unwrap_or_else(|e| e.into_inner());
        let mut matches = match index.query(&req.source) {
            Ok(ids) => ids,
            Err(e) => return Response::error(req.id, format!("parse error: {e}")),
        };
        matches.sort_unstable();
        if index.insert(req.id, &req.source).is_err() {
            unreachable!("query already lexed the source");
        }
        Response::ok_clones(req.id, matches)
    }

    /// Folds `source` into the server's shared corpus graph (all serve
    /// units form one linkage domain, so calls resolve across requests) and
    /// returns the graph's post-fold statistics: size counters, the
    /// submitted unit's functions, and the corpus-wide blast-radius
    /// leaders.
    ///
    /// Like the clone index, the unit store is bounded (FIFO eviction at
    /// [`SERVE_CACHE_ENTRY_LIMIT`] units) so a long-lived server holds
    /// memory flat. The store lock is held across the rebuild, so for a
    /// fixed registration order the response is deterministic regardless of
    /// worker count; a unit that fails to parse is rejected without being
    /// registered.
    fn graph(&self, req: &Request) -> Response {
        let mut store = self.graph_units.lock().unwrap_or_else(|e| e.into_inner());
        let mut units: Vec<UnitRef<'_>> = store
            .iter()
            .map(|(id, source)| UnitRef { id: *id, project: "serve", source })
            .collect();
        units.push(UnitRef { id: req.id, project: "serve", source: &req.source });
        let graph = match CorpusGraph::build_with(&units, &self.cache, 1, &self.metrics) {
            Ok(g) => g,
            Err(e) => return Response::error(req.id, format!("parse error: {e}")),
        };
        store.push_back((req.id, req.source.clone()));
        if store.len() > SERVE_CACHE_ENTRY_LIMIT {
            store.pop_front();
        }
        drop(store);

        let unit_functions =
            graph.nodes().iter().filter(|n| n.unit == req.id).map(|n| n.name.clone()).collect();
        let top_blast = graph
            .blast_ranked()
            .into_iter()
            .take(GRAPH_TOP_BLAST)
            .map(|(function, blast)| BlastEntry { function, blast })
            .collect();
        Response::ok_graph(
            req.id,
            GraphStats {
                nodes: graph.nodes().len(),
                edges: graph.edge_count(),
                cross_unit_edges: graph.cross_unit_edge_count(),
                unit_functions,
                top_blast,
            },
        )
    }

    /// The detector coverage × precision matrix over the default audit
    /// corpus, with the tool-augmented ML model as the fifth column.
    ///
    /// The report is a pure function of [`AuditConfig::default`], so it is
    /// computed once (first request pays corpus generation, scanning, and
    /// ML training) and served from the cache afterwards — every audit
    /// response body is byte-identical regardless of worker count or
    /// request order.
    fn audit(&self, req: &Request) -> Response {
        let report = self.audit_report.get_or_init(|| {
            let config = AuditConfig { jobs: AUDIT_JOBS, ..AuditConfig::default() };
            AuditEngine::new(config)
                .with_ml(vulnman_core::audit_ml_verdict(config.seed))
                .run_with_metrics(&self.metrics)
        });
        Response::ok_audit(req.id, report.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(rate: f64) -> ServiceCore {
        ServiceCore::new(&Registry::new(), &FaultConfig::with_rate(7, rate))
    }

    fn req(id: u64, kind: &str, source: &str) -> Request {
        Request { id, kind: kind.into(), source: source.into(), label: None, cwe: None }
    }

    const VULN: &str = r#"void f() { char* id = http_param("id"); exec_query(id); }"#;

    #[test]
    fn analyze_merges_rule_and_semantic_findings() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let resp = core.handle(&req(1, "analyze", VULN), &ledger);
        assert_eq!(resp.status, "ok");
        assert!(!resp.findings.as_ref().unwrap().is_empty());
        // Deterministic across cache states: a warm repeat is identical.
        let again = core.handle(&req(1, "analyze", VULN), &ledger);
        assert_eq!(resp, again);
    }

    #[test]
    fn lint_reports_semantic_findings_only() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let clean = core.handle(&req(2, "lint", VULN), &ledger);
        assert_eq!(clean.status, "ok");
        let div = core.handle(&req(3, "lint", "int f() { int z = 0; return 10 / z; }"), &ledger);
        assert!(!div.findings.as_ref().unwrap().is_empty(), "divide-by-zero is semantic");
    }

    #[test]
    fn parse_errors_are_structured_not_panics() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let resp = core.handle(&req(4, "analyze", "int f( {"), &ledger);
        assert_eq!(resp.status, "error");
        assert!(resp.error.unwrap().contains("parse error"));
    }

    #[test]
    fn oracle_classifies_and_rejects_unknown_cwe() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let mut r = req(5, "oracle", VULN);
        r.label = Some(true);
        r.cwe = Some("SqlInjection".into());
        let resp = core.handle(&r, &ledger);
        assert_eq!(resp.status, "ok");
        assert!(resp.disagreements.is_some());
        r.cwe = Some("NotACwe".into());
        let resp = core.handle(&r, &ledger);
        assert_eq!(resp.status, "error");
    }

    #[test]
    fn clones_requests_build_a_cross_request_clone_index() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        // First registration has no earlier near-clones.
        let first = core.handle(&req(10, "clones", VULN), &ledger);
        assert_eq!(first.status, "ok");
        assert_eq!(first.clones, Some(vec![]));
        // An alpha-renamed near-clone matches the earlier registration.
        let renamed = r#"void f() { char* uid = http_param("id"); exec_query(uid); }"#;
        let second = core.handle(&req(11, "clones", renamed), &ledger);
        assert_eq!(second.clones, Some(vec![10]));
        // An unrelated source matches nothing.
        let other =
            core.handle(&req(12, "clones", "int add(int a, int b) { return a + b; }"), &ledger);
        assert_eq!(other.clones, Some(vec![]));
        // A third clone sees both earlier members, in id order.
        let third = core.handle(&req(13, "clones", VULN), &ledger);
        assert_eq!(third.clones, Some(vec![10, 11]));
    }

    #[test]
    fn clones_request_rejects_unlexable_source() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let resp = core.handle(&req(14, "clones", "int x = \x01;"), &ledger);
        assert_eq!(resp.status, "error");
        assert!(resp.error.unwrap().contains("parse error"));
    }

    #[test]
    fn graph_requests_link_units_across_requests() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        // First unit defines a helper; nothing to link against yet.
        let first = core.handle(&req(20, "graph", "void helper() {\n}\n"), &ledger);
        assert_eq!(first.status, "ok");
        let stats = first.graph.unwrap();
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.cross_unit_edges, 0);
        assert_eq!(stats.unit_functions, vec!["helper".to_string()]);
        // Second unit calls into the first: the shared graph gains a
        // cross-unit edge, and the helper leads the blast ranking.
        let second = core.handle(&req(21, "graph", "void entry() {\n    helper();\n}\n"), &ledger);
        let stats = second.graph.unwrap();
        assert_eq!(stats.nodes, 2);
        assert_eq!(stats.edges, 1);
        assert_eq!(stats.cross_unit_edges, 1);
        assert_eq!(stats.unit_functions, vec!["entry".to_string()]);
        assert!(!stats.top_blast.is_empty());
        assert!(stats.top_blast[0].blast > 0.0);
    }

    #[test]
    fn graph_request_rejects_unparseable_source_without_registering_it() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let bad = core.handle(&req(30, "graph", "void broken( {"), &ledger);
        assert_eq!(bad.status, "error");
        assert!(bad.error.unwrap().contains("parse error"));
        // The rejected unit left no trace in the shared graph.
        let ok = core.handle(&req(31, "graph", "void f() {\n}\n"), &ledger);
        assert_eq!(ok.graph.unwrap().nodes, 1);
    }

    #[test]
    fn audit_requests_serve_one_cached_byte_identical_matrix() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        let first = core.handle(&req(40, "audit", ""), &ledger);
        assert_eq!(first.status, "ok");
        let report = first.audit.as_ref().unwrap();
        assert!(report.ml_model.is_some(), "serve wires the ML column");
        assert!(report.blind_classes().is_empty(), "no class is invisible to every family");
        // The matrix is computed once; repeats are byte-identical apart
        // from the echoed id.
        let second = core.handle(&req(40, "audit", "ignored"), &ledger);
        assert_eq!(first.encode(), second.encode());
    }

    #[test]
    fn fault_walk_matches_degrades_prediction_and_fills_ledger() {
        let core = core(0.35);
        let ledger = Mutex::new(DegradationSummary::default());
        let mut degraded = 0;
        for id in 0..200 {
            let resp = core.handle(&req(id, "lint", "void f() {\n}\n"), &ledger);
            let expect = core.degrades(id, "lint");
            assert_eq!(resp.status == "degraded", expect, "request {id}");
            if expect {
                degraded += 1;
            }
        }
        assert!(degraded > 0, "a 35% plan should degrade something in 200 requests");
        let led = ledger.lock().unwrap();
        assert_eq!(led.assessments_lost, degraded);
        assert!(led.transient + led.timeout + led.corrupt + led.crash > 0);
    }

    #[test]
    fn zero_rate_never_touches_the_ledger() {
        let core = core(0.0);
        let ledger = Mutex::new(DegradationSummary::default());
        for id in 0..50 {
            assert_eq!(core.handle(&req(id, "lint", "void f() {\n}\n"), &ledger).status, "ok");
        }
        assert_eq!(*ledger.lock().unwrap(), DegradationSummary::default());
    }
}
