//! Wire protocol of `vulnman serve`: newline-delimited JSON requests over a
//! TCP stream, plus a minimal HTTP/1.1 POST bridge so `curl` works.
//!
//! Framing is defensive by construction. Every way a client can hand the
//! server garbage maps to exactly one [`RequestError`] class — oversized
//! line, invalid UTF-8, malformed JSON, unknown request kind — and each
//! class produces a structured error [`Response`] instead of a panic or a
//! wedged connection. `tests` below pin one regression test per class.

use serde::{Deserialize, Serialize};
use std::io::BufRead;
use vulnman_analysis::{AuditReport, Disagreement, Finding};

/// Default cap on one JSONL request line (bytes, newline excluded).
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// One request line. `kind` selects the operation:
///
/// * `"analyze"` — rule-based detectors plus the semantic (absint) checker
///   suite over `source`; returns merged findings.
/// * `"lint"` — semantic checkers only.
/// * `"oracle"` — differential-oracle classification of `source` against
///   the optional recorded `label`/`cwe`; returns disagreements.
/// * `"clones"` — registers `source` in the server's shared MinHash/LSH
///   clone index and returns the ids of previously registered sources that
///   are verified near-clones of it.
/// * `"graph"` — registers `source` as a corpus-graph unit and returns
///   graph statistics over everything registered so far (cross-unit edges,
///   this unit's functions, the corpus-wide blast-radius leaders).
/// * `"audit"` — the detector coverage × precision matrix over the seeded
///   audit corpus (`source` is ignored). The matrix is computed once per
///   server and cached, so every audit response is byte-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen id echoed in the response (and used as the fault-plan
    /// key, so injected degradation is deterministic per request).
    pub id: u64,
    /// Operation: `analyze`, `lint`, `oracle`, `clones`, `graph`, or
    /// `audit`.
    pub kind: String,
    /// Mini-C translation unit to analyze. May be omitted on the wire for
    /// kinds that ignore it (`audit`); defaults to empty.
    #[serde(default)]
    pub source: String,
    /// Recorded vulnerability label (oracle requests; defaults to `false`).
    pub label: Option<bool>,
    /// Recorded CWE class name (oracle requests), e.g. `"SqlInjection"`.
    pub cwe: Option<String>,
}

/// One blast-radius ranking entry in a graph response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlastEntry {
    /// Unit-qualified function name (`u<id>::<fn>`).
    pub function: String,
    /// Blast-radius score in `[0, 1]`.
    pub blast: f64,
}

/// Corpus-graph statistics returned by a `graph` request: the state of the
/// server's shared graph after this unit is folded in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Function nodes in the corpus graph.
    pub nodes: usize,
    /// Resolved call edges.
    pub edges: usize,
    /// Edges crossing unit boundaries.
    pub cross_unit_edges: usize,
    /// Functions defined by the submitted unit, in definition order.
    pub unit_functions: Vec<String>,
    /// Corpus-wide blast-radius leaders (descending, capped).
    pub top_blast: Vec<BlastEntry>,
}

/// One response line, echoed with the request id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The request id (0 when the request was too malformed to carry one).
    pub id: u64,
    /// `ok`, `error`, `shed`, or `degraded`.
    pub status: String,
    /// Human-readable detail for non-`ok` statuses.
    pub error: Option<String>,
    /// Findings (analyze/lint).
    pub findings: Option<Vec<Finding>>,
    /// Oracle disagreements (oracle).
    pub disagreements: Option<Vec<Disagreement>>,
    /// Ids of previously registered verified near-clones (clones).
    pub clones: Option<Vec<u64>>,
    /// Corpus-graph statistics (graph).
    pub graph: Option<GraphStats>,
    /// Detector coverage × precision matrix (audit).
    pub audit: Option<AuditReport>,
}

impl Response {
    /// Successful analyze/lint response.
    pub fn ok_findings(id: u64, findings: Vec<Finding>) -> Self {
        Response {
            id,
            status: "ok".into(),
            error: None,
            findings: Some(findings),
            disagreements: None,
            clones: None,
            graph: None,
            audit: None,
        }
    }

    /// Successful oracle response.
    pub fn ok_disagreements(id: u64, disagreements: Vec<Disagreement>) -> Self {
        Response {
            id,
            status: "ok".into(),
            error: None,
            findings: None,
            disagreements: Some(disagreements),
            clones: None,
            graph: None,
            audit: None,
        }
    }

    /// Successful clones response.
    pub fn ok_clones(id: u64, clones: Vec<u64>) -> Self {
        Response {
            id,
            status: "ok".into(),
            error: None,
            findings: None,
            disagreements: None,
            clones: Some(clones),
            graph: None,
            audit: None,
        }
    }

    /// Successful graph response.
    pub fn ok_graph(id: u64, graph: GraphStats) -> Self {
        Response {
            id,
            status: "ok".into(),
            error: None,
            findings: None,
            disagreements: None,
            clones: None,
            graph: Some(graph),
            audit: None,
        }
    }

    /// Successful audit response.
    pub fn ok_audit(id: u64, audit: AuditReport) -> Self {
        Response {
            id,
            status: "ok".into(),
            error: None,
            findings: None,
            disagreements: None,
            clones: None,
            graph: None,
            audit: Some(audit),
        }
    }

    /// Structured rejection (bad input, parse error, unknown CWE, ...).
    pub fn error(id: u64, message: String) -> Self {
        Response {
            id,
            status: "error".into(),
            error: Some(message),
            findings: None,
            disagreements: None,
            clones: None,
            graph: None,
            audit: None,
        }
    }

    /// Load-shed rejection from admission control.
    pub fn shed(id: u64) -> Self {
        Response {
            id,
            status: "shed".into(),
            error: Some("server overloaded: request shed by admission control".into()),
            findings: None,
            disagreements: None,
            clones: None,
            graph: None,
            audit: None,
        }
    }

    /// Fault-plan degradation: the request's retry budget exhausted (or a
    /// crash fired) before the work could run.
    pub fn degraded(id: u64) -> Self {
        Response {
            id,
            status: "degraded".into(),
            error: Some("request degraded: fault budget exhausted".into()),
            findings: None,
            disagreements: None,
            clones: None,
            graph: None,
            audit: None,
        }
    }

    /// Serializes to one JSONL line (trailing newline included).
    pub fn encode(&self) -> String {
        let mut line = serde_json::to_string(self).expect("response serializes");
        line.push('\n');
        line
    }
}

/// Why a request line was rejected before reaching the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The line exceeded the configured byte cap.
    Oversized {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// The line was not valid UTF-8.
    BadUtf8,
    /// The line was not a valid JSON request object.
    BadJson(String),
    /// The request's `kind` is not one of the supported operations.
    UnknownKind(String),
}

impl RequestError {
    /// Stable class label (used for `serve.reject.<class>` counters).
    pub fn class(&self) -> &'static str {
        match self {
            RequestError::Oversized { .. } => "oversized",
            RequestError::BadUtf8 => "bad_utf8",
            RequestError::BadJson(_) => "bad_json",
            RequestError::UnknownKind(_) => "unknown_kind",
        }
    }

    /// Human-readable rejection message for the error response.
    pub fn message(&self) -> String {
        match self {
            RequestError::Oversized { limit } => {
                format!("request rejected: line exceeds {limit} bytes")
            }
            RequestError::BadUtf8 => "request rejected: line is not valid UTF-8".into(),
            RequestError::BadJson(detail) => format!("request rejected: invalid JSON: {detail}"),
            RequestError::UnknownKind(kind) => format!(
                "request rejected: unknown kind {kind:?} (expected analyze, lint, oracle, clones, graph, or audit)"
            ),
        }
    }
}

/// One framing step over a buffered stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped, possibly the final unterminated
    /// line before EOF).
    Line(Vec<u8>),
    /// The line exceeded `limit`; its remainder has been drained up to the
    /// next newline so the connection stays usable.
    Oversized {
        /// The cap that was exceeded.
        limit: usize,
    },
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-delimited frame, enforcing the byte cap without ever
/// buffering more than `limit` bytes of an abusive line.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn read_frame(reader: &mut impl BufRead, limit: usize) -> std::io::Result<Frame> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() { Frame::Eof } else { Frame::Line(line) });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > limit {
                    reader.consume(pos + 1);
                    return Ok(Frame::Oversized { limit });
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Ok(Frame::Line(line));
            }
            None => {
                let take = buf.len();
                if line.len() + take > limit {
                    reader.consume(take);
                    drain_to_newline(reader)?;
                    return Ok(Frame::Oversized { limit });
                }
                line.extend_from_slice(buf);
                reader.consume(take);
            }
        }
    }
}

/// Discards stream bytes up to and including the next newline (or EOF), so
/// an oversized line cannot wedge the frames behind it.
fn drain_to_newline(reader: &mut impl BufRead) -> std::io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let take = buf.len();
                reader.consume(take);
            }
        }
    }
}

/// Decodes and validates one request line.
///
/// # Errors
///
/// Returns the [`RequestError`] class the line falls into.
pub fn parse_request(line: &[u8]) -> Result<Request, RequestError> {
    let text = std::str::from_utf8(line).map_err(|_| RequestError::BadUtf8)?;
    let req: Request =
        serde_json::from_str(text.trim()).map_err(|e| RequestError::BadJson(e.to_string()))?;
    match req.kind.as_str() {
        "analyze" | "lint" | "oracle" | "clones" | "graph" | "audit" => Ok(req),
        other => Err(RequestError::UnknownKind(other.to_string())),
    }
}

/// Whether a first frame looks like an HTTP/1.x request line rather than
/// JSONL (requests start with `{`; HTTP starts with a method token).
pub fn looks_like_http(line: &[u8]) -> bool {
    [&b"POST "[..], b"GET ", b"PUT ", b"HEAD ", b"DELETE ", b"OPTIONS ", b"PATCH "]
        .iter()
        .any(|m| line.starts_with(m))
}

/// A parsed HTTP request head: method plus declared body length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpHead {
    /// Request method (`POST`, `GET`, ...).
    pub method: String,
    /// `Content-Length`, when declared.
    pub content_length: Option<usize>,
}

/// Reads HTTP header lines (after the request line) up to the blank line,
/// extracting the pieces the bridge needs.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn read_http_head(request_line: &[u8], reader: &mut impl BufRead) -> std::io::Result<HttpHead> {
    let method =
        String::from_utf8_lossy(request_line).split_whitespace().next().unwrap_or("").to_string();
    let mut content_length = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            break;
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    Ok(HttpHead { method, content_length })
}

/// Reads exactly `len` body bytes.
///
/// # Errors
///
/// Propagates I/O errors, including unexpected EOF mid-body.
pub fn read_http_body(reader: &mut impl BufRead, len: usize) -> std::io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Renders a minimal `Connection: close` HTTP response around a JSON body.
pub fn http_response(status: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frames(input: &[u8], limit: usize) -> Vec<Frame> {
        let mut reader = BufReader::with_capacity(8, input);
        let mut out = Vec::new();
        loop {
            let frame = read_frame(&mut reader, limit).unwrap();
            let done = frame == Frame::Eof;
            out.push(frame);
            if done {
                return out;
            }
        }
    }

    #[test]
    fn frames_split_on_newlines_and_keep_final_partial_line() {
        let got = frames(b"abc\ndef\nghi", 100);
        assert_eq!(
            got,
            vec![
                Frame::Line(b"abc".to_vec()),
                Frame::Line(b"def".to_vec()),
                Frame::Line(b"ghi".to_vec()),
                Frame::Eof,
            ]
        );
    }

    #[test]
    fn oversized_line_is_drained_without_wedging_the_next_frame() {
        // Regression: rejected class `oversized`. The 40-byte line blows a
        // 10-byte cap, but the following line must still arrive intact.
        let mut input = vec![b'x'; 40];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = frames(&input, 10);
        assert_eq!(
            got,
            vec![Frame::Oversized { limit: 10 }, Frame::Line(b"ok".to_vec()), Frame::Eof]
        );
    }

    #[test]
    fn oversized_final_unterminated_line_reaches_eof() {
        let input = vec![b'x'; 64];
        let got = frames(&input, 16);
        assert_eq!(got, vec![Frame::Oversized { limit: 16 }, Frame::Eof]);
    }

    #[test]
    fn exactly_at_the_limit_is_accepted() {
        let got = frames(b"12345\n", 5);
        assert_eq!(got, vec![Frame::Line(b"12345".to_vec()), Frame::Eof]);
    }

    #[test]
    fn non_utf8_line_is_a_structured_bad_utf8_error() {
        // Regression: rejected class `bad_utf8`.
        let err = parse_request(&[0xff, 0xfe, b'{', b'}']).unwrap_err();
        assert_eq!(err, RequestError::BadUtf8);
        assert_eq!(err.class(), "bad_utf8");
        assert!(err.message().contains("UTF-8"));
    }

    #[test]
    fn malformed_json_is_a_structured_bad_json_error() {
        // Regression: rejected class `bad_json`, covering truncated JSON
        // (a cut-off line) and type/field mismatches.
        for bad in ["{\"id\": 1, \"kind\"", "not json at all", "{}", "{\"id\": \"x\"}"] {
            let err = parse_request(bad.as_bytes()).unwrap_err();
            assert_eq!(err.class(), "bad_json", "input {bad:?} should be bad_json, got {err:?}");
        }
    }

    #[test]
    fn unknown_kind_is_a_structured_unknown_kind_error() {
        // Regression: rejected class `unknown_kind`.
        let line = br#"{"id": 7, "kind": "explode", "source": "", "label": null, "cwe": null}"#;
        let err = parse_request(line).unwrap_err();
        assert_eq!(err, RequestError::UnknownKind("explode".into()));
        assert_eq!(err.class(), "unknown_kind");
        assert!(err.message().contains("explode"));
    }

    #[test]
    fn request_roundtrips_through_jsonl() {
        let req = Request {
            id: 42,
            kind: "analyze".into(),
            source: "void f() {\n}\n".into(),
            label: Some(true),
            cwe: Some("SqlInjection".into()),
        };
        let line = serde_json::to_string(&req).unwrap();
        assert_eq!(parse_request(line.as_bytes()).unwrap(), req);
    }

    #[test]
    fn graph_request_is_accepted_and_stats_round_trip() {
        let line = br#"{"id": 3, "kind": "graph", "source": "void f() {\n}\n", "label": null, "cwe": null}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.kind, "graph");

        let stats = GraphStats {
            nodes: 4,
            edges: 3,
            cross_unit_edges: 1,
            unit_functions: vec!["f".into()],
            top_blast: vec![BlastEntry { function: "u000001::f".into(), blast: 0.5 }],
        };
        let encoded = Response::ok_graph(3, stats.clone()).encode();
        let back: Response = serde_json::from_str(encoded.trim()).unwrap();
        assert_eq!(back.status, "ok");
        assert_eq!(back.graph, Some(stats));
    }

    #[test]
    fn audit_request_is_accepted_and_report_round_trips() {
        // `source` may be omitted entirely for kinds that ignore it.
        let line = br#"{"id": 4, "kind": "audit"}"#;
        let req = parse_request(line).unwrap();
        assert_eq!(req.kind, "audit");
        assert_eq!(req.source, "");

        let report = vulnman_analysis::AuditEngine::new(vulnman_analysis::AuditConfig {
            seed: 5,
            samples_per_class: 2,
            jobs: 1,
        })
        .run();
        let encoded = Response::ok_audit(4, report.clone()).encode();
        let back: Response = serde_json::from_str(encoded.trim()).unwrap();
        assert_eq!(back.status, "ok");
        assert_eq!(back.audit, Some(report));
    }

    #[test]
    fn response_encodes_as_one_line() {
        let line = Response::error(9, "nope".into()).encode();
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        let back: Response = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(back.id, 9);
        assert_eq!(back.status, "error");
    }

    #[test]
    fn http_preamble_detection() {
        assert!(looks_like_http(b"POST /analyze HTTP/1.1"));
        assert!(looks_like_http(b"GET / HTTP/1.1"));
        assert!(!looks_like_http(br#"{"id": 1}"#));
    }

    #[test]
    fn http_head_extracts_method_and_length() {
        let headers = b"Host: localhost\r\nContent-Length: 12\r\n\r\nrest";
        let mut reader = BufReader::new(&headers[..]);
        let head = read_http_head(b"POST / HTTP/1.1", &mut reader).unwrap();
        assert_eq!(head, HttpHead { method: "POST".into(), content_length: Some(12) });
        assert_eq!(read_http_body(&mut reader, 4).unwrap(), b"rest");
    }
}
