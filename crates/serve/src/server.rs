//! The concurrent TCP front end: accept thread, per-connection framing
//! threads, and a bounded worker pool behind an admission-controlled queue.
//!
//! ## Backpressure policy
//!
//! Admission is a single atomic depth counter CAS-guarded at the configured
//! queue bound. A request that finds the queue full is *shed* — answered
//! immediately with status `shed`, counted on `serve.shed`, and recorded in
//! the degradation ledger's `shed` field — rather than queued without bound
//! or left to time out. The channel behind the counter has `queue + workers`
//! slots, so a successfully admitted request never blocks the connection
//! thread. `serve.queue_depth` tracks the live depth and
//! `serve.queue_depth_peak` the high-water mark, which by construction
//! never exceeds the bound.

use crate::protocol::{
    http_response, looks_like_http, parse_request, read_frame, read_http_body, read_http_head,
    Frame, Request, RequestError, Response, MAX_REQUEST_BYTES,
};
use crate::service::ServiceCore;
use crossbeam::channel;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use vulnman_core::DegradationSummary;
use vulnman_faults::FaultConfig;
use vulnman_obs::Registry;

/// Server knobs. `Default` suits tests: loopback, 4 workers, a 64-deep
/// queue, faults off.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission bound: requests queued beyond this are shed.
    pub queue: usize,
    /// Per-line byte cap (JSONL) and body cap (HTTP).
    pub max_request_bytes: usize,
    /// Fault injection at [`vulnman_faults::Site::ServeRequest`].
    pub fault: FaultConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue: 64,
            max_request_bytes: MAX_REQUEST_BYTES,
            fault: FaultConfig::default(),
        }
    }
}

/// Pre-registers every `serve.*` instrument, so the exported metrics schema
/// is identical whether or not a given run sheds, degrades, or rejects
/// anything (the same schema-stability pattern as `fault.*`/`oracle.*`).
pub fn register_serve_instruments(metrics: &Registry) {
    metrics.counter("serve.connections");
    metrics.counter("serve.requests");
    metrics.counter("serve.responses");
    metrics.counter("serve.shed");
    metrics.counter("serve.degraded");
    metrics.counter("serve.errors");
    for class in ["oversized", "bad_utf8", "bad_json", "unknown_kind"] {
        metrics.counter(&format!("serve.reject.{class}"));
    }
    metrics.gauge("serve.queue_depth");
    metrics.gauge("serve.queue_depth_peak");
    metrics.histogram("serve.latency_micros");
}

/// One admitted unit of work: the request plus the connection's shared
/// writer to answer on.
struct Job {
    req: Request,
    writer: Arc<Mutex<TcpStream>>,
}

/// Everything the connection and worker threads share.
struct Shared {
    core: ServiceCore,
    ledger: Mutex<DegradationSummary>,
    metrics: Registry,
    depth: AtomicI64,
    peak: AtomicI64,
    queue_bound: i64,
    max_request_bytes: usize,
}

impl Shared {
    /// Observes one finished response on the status counters.
    fn count_response(&self, resp: &Response) {
        self.metrics.counter("serve.responses").inc();
        if resp.status == "degraded" {
            self.metrics.counter("serve.degraded").inc();
        }
    }
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server reports through.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Snapshot of the degradation ledger (injected faults + load shed).
    pub fn ledger(&self) -> DegradationSummary {
        self.shared.ledger.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stops accepting, then joins the accept thread and worker pool.
    /// Connections still open keep their framing threads until the peer
    /// closes, but no new work is admitted.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and spawns the accept thread and
/// worker pool. All instruments land in `metrics`.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn spawn(addr: &str, config: ServeConfig, metrics: &Registry) -> std::io::Result<ServerHandle> {
    register_serve_instruments(metrics);
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let workers = config.workers.max(1);
    let shared = Arc::new(Shared {
        core: ServiceCore::new(metrics, &config.fault),
        ledger: Mutex::new(DegradationSummary::default()),
        metrics: metrics.clone(),
        depth: AtomicI64::new(0),
        peak: AtomicI64::new(0),
        queue_bound: config.queue.max(1) as i64,
        max_request_bytes: config.max_request_bytes,
    });
    let stop = Arc::new(AtomicBool::new(false));

    // `queue + workers` slots: depth admission keeps at most `queue` jobs
    // pending, so a post-admission send always finds room even while every
    // worker holds one job it has not finished writing out.
    let (tx, rx) = channel::bounded::<Job>(config.queue.max(1) + workers);
    let rx = Arc::new(Mutex::new(rx));

    let mut worker_handles = Vec::with_capacity(workers);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&rx);
        worker_handles.push(std::thread::spawn(move || worker_loop(&shared, &rx)));
    }

    let accept = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    shared.metrics.counter("serve.connections").inc();
                    let _ = serve_connection(&shared, &tx, stream);
                });
            }
            // `tx` master drops here; workers exit once connection clones go.
        })
    };

    Ok(ServerHandle { addr: local, shared, stop, accept: Some(accept), workers: worker_handles })
}

/// Executes queued jobs until every sender is gone.
fn worker_loop(shared: &Shared, rx: &Mutex<channel::Receiver<Job>>) {
    loop {
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        let depth = shared.depth.fetch_sub(1, Ordering::AcqRel) - 1;
        shared.metrics.gauge("serve.queue_depth").set(depth);
        let start = Instant::now();
        let resp = shared.core.handle(&job.req, &shared.ledger);
        shared
            .metrics
            .histogram("serve.latency_micros")
            .observe(start.elapsed().as_micros() as u64);
        shared.count_response(&resp);
        write_line(&job.writer, &resp);
    }
}

/// Appends one encoded response under the connection's writer lock.
fn write_line(writer: &Mutex<TcpStream>, resp: &Response) {
    if let Ok(mut stream) = writer.lock() {
        let _ = stream.write_all(resp.encode().as_bytes());
        let _ = stream.flush();
    }
}

/// Frames one connection: JSONL lines go through admission and the worker
/// queue; an HTTP preamble diverts to the one-shot bridge.
fn serve_connection(
    shared: &Shared,
    tx: &channel::Sender<Job>,
    stream: TcpStream,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let writer = Arc::new(Mutex::new(stream));
    let mut first = true;
    loop {
        match read_frame(&mut reader, shared.max_request_bytes)? {
            Frame::Eof => return Ok(()),
            Frame::Oversized { limit } => {
                reject(shared, &writer, &RequestError::Oversized { limit });
            }
            Frame::Line(line) => {
                if first && looks_like_http(&line) {
                    return serve_http(shared, &line, &mut reader, &writer);
                }
                match parse_request(&line) {
                    Err(err) => reject(shared, &writer, &err),
                    Ok(req) => submit(shared, tx, &writer, req),
                }
            }
        }
        first = false;
    }
}

/// Answers a rejected line with its structured error (id 0: the line never
/// parsed far enough to carry one).
fn reject(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, err: &RequestError) {
    shared.metrics.counter("serve.errors").inc();
    shared.metrics.counter(&format!("serve.reject.{}", err.class())).inc();
    write_line(writer, &Response::error(0, err.message()));
}

/// Admission control: CAS the depth below the bound or shed.
fn submit(
    shared: &Shared,
    tx: &channel::Sender<Job>,
    writer: &Arc<Mutex<TcpStream>>,
    req: Request,
) {
    shared.metrics.counter("serve.requests").inc();
    let admitted = loop {
        let cur = shared.depth.load(Ordering::Acquire);
        if cur >= shared.queue_bound {
            break false;
        }
        if shared.depth.compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
        {
            shared.metrics.gauge("serve.queue_depth").set(cur + 1);
            shared.peak.fetch_max(cur + 1, Ordering::AcqRel);
            shared.metrics.gauge("serve.queue_depth_peak").set(shared.peak.load(Ordering::Acquire));
            break true;
        }
    };
    if !admitted {
        shed(shared, writer, req.id);
        return;
    }
    if tx.try_send(Job { req, writer: Arc::clone(writer) }).is_err() {
        // Workers are gone (shutdown race); undo the admission and shed.
        shared.depth.fetch_sub(1, Ordering::AcqRel);
        shed(shared, writer, 0);
    }
}

/// Records and answers one shed request.
fn shed(shared: &Shared, writer: &Arc<Mutex<TcpStream>>, id: u64) {
    shared.metrics.counter("serve.shed").inc();
    shared.ledger.lock().unwrap_or_else(|e| e.into_inner()).shed += 1;
    let resp = Response::shed(id);
    shared.count_response(&resp);
    write_line(writer, &resp);
}

/// One-shot HTTP bridge: `POST` with a JSON request body, answered with a
/// JSON response body and `Connection: close`. HTTP requests are executed
/// inline on the connection thread (the admission queue governs JSONL
/// streams, the sustained-load path).
fn serve_http(
    shared: &Shared,
    request_line: &[u8],
    reader: &mut BufReader<TcpStream>,
    writer: &Arc<Mutex<TcpStream>>,
) -> std::io::Result<()> {
    let head = read_http_head(request_line, reader)?;
    let (status, body) = if head.method != "POST" {
        ("405 Method Not Allowed", Response::error(0, "use POST with a JSON request body".into()))
    } else {
        match head.content_length {
            None => ("411 Length Required", Response::error(0, "Content-Length required".into())),
            Some(len) if len > shared.max_request_bytes => {
                shared.metrics.counter("serve.errors").inc();
                shared.metrics.counter("serve.reject.oversized").inc();
                let err = RequestError::Oversized { limit: shared.max_request_bytes };
                ("413 Payload Too Large", Response::error(0, err.message()))
            }
            Some(len) => {
                let raw = read_http_body(reader, len)?;
                match parse_request(&raw) {
                    Err(err) => {
                        shared.metrics.counter("serve.errors").inc();
                        shared.metrics.counter(&format!("serve.reject.{}", err.class())).inc();
                        ("400 Bad Request", Response::error(0, err.message()))
                    }
                    Ok(req) => {
                        shared.metrics.counter("serve.requests").inc();
                        let start = Instant::now();
                        let resp = shared.core.handle(&req, &shared.ledger);
                        shared
                            .metrics
                            .histogram("serve.latency_micros")
                            .observe(start.elapsed().as_micros() as u64);
                        shared.count_response(&resp);
                        ("200 OK", resp)
                    }
                }
            }
        }
    };
    let payload = http_response(status, serde_json::to_string(&body).expect("serializes").as_str());
    if let Ok(mut stream) = writer.lock() {
        let _ = stream.write_all(payload.as_bytes());
        let _ = stream.flush();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Read, Write};

    fn start(config: ServeConfig) -> ServerHandle {
        spawn("127.0.0.1:0", config, &Registry::new()).expect("bind loopback")
    }

    fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Response> {
        let mut stream = TcpStream::connect(addr).unwrap();
        for line in lines {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(stream);
        reader.lines().map(|l| serde_json::from_str(&l.unwrap()).unwrap()).collect()
    }

    #[test]
    fn jsonl_roundtrip_analyze_and_lint() {
        let server = start(ServeConfig::default());
        let req = |id: u64, kind: &str| {
            serde_json::to_string(&Request {
                id,
                kind: kind.into(),
                source: "int f() { int z = 0; return 10 / z; }".into(),
                label: None,
                cwe: None,
            })
            .unwrap()
        };
        let mut responses = roundtrip(server.addr(), &[req(1, "analyze"), req(2, "lint")]);
        assert_eq!(responses.len(), 2);
        for resp in &responses {
            assert_eq!(resp.status, "ok", "{resp:?}");
            assert!(!resp.findings.as_ref().unwrap().is_empty());
        }
        // Workers answer concurrently, so correlate by echoed id, not order.
        responses.sort_by_key(|r| r.id);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(server.metrics().counter("serve.requests").get(), 2);
        assert_eq!(server.metrics().counter("serve.responses").get(), 2);
        server.shutdown();
    }

    #[test]
    fn malformed_lines_get_structured_errors_and_do_not_wedge() {
        let server = start(ServeConfig { max_request_bytes: 256, ..ServeConfig::default() });
        let ok = serde_json::to_string(&Request {
            id: 9,
            kind: "lint".into(),
            source: "void f() {\n}\n".into(),
            label: None,
            cwe: None,
        })
        .unwrap();
        let huge = "x".repeat(1024);
        let lines = vec!["{\"id\": 1, \"kind\"".to_string(), huge, ok];
        let responses = roundtrip(server.addr(), &lines);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].status, "error");
        assert_eq!(responses[1].status, "error");
        assert_eq!(responses[2].status, "ok");
        assert_eq!(responses[2].id, 9);
        assert_eq!(server.metrics().counter("serve.reject.bad_json").get(), 1);
        assert_eq!(server.metrics().counter("serve.reject.oversized").get(), 1);
        server.shutdown();
    }

    #[test]
    fn http_bridge_answers_a_post() {
        let server = start(ServeConfig::default());
        let body = serde_json::to_string(&Request {
            id: 3,
            kind: "lint".into(),
            source: "void f() {\n}\n".into(),
            label: None,
            cwe: None,
        })
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(
            stream,
            "POST /v1/requests HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        let json = raw.split("\r\n\r\n").nth(1).unwrap();
        let resp: Response = serde_json::from_str(json).unwrap();
        assert_eq!(resp.id, 3);
        assert_eq!(resp.status, "ok");
        server.shutdown();
    }

    #[test]
    fn http_bridge_rejects_non_post_and_missing_length() {
        let server = start(ServeConfig::default());
        for (head, expect) in [
            ("GET / HTTP/1.1\r\nHost: x\r\n\r\n", "405"),
            ("POST / HTTP/1.1\r\nHost: x\r\n\r\n", "411"),
        ] {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(head.as_bytes()).unwrap();
            let mut raw = String::new();
            stream.read_to_string(&mut raw).unwrap();
            assert!(raw.starts_with(&format!("HTTP/1.1 {expect}")), "{raw}");
        }
        server.shutdown();
    }
}
