//! The seeded fault plan: a pure function from call coordinates to fault
//! decisions.
//!
//! Every decision is a function of `(seed, site, key, attempt)` and nothing
//! else — not wall-clock time, not call order, not thread identity. Two
//! consequences the rest of the workspace leans on:
//!
//! * **Reproducibility.** A run that degrades under `--fault-seed 7` degrades
//!   identically on one worker or eight, today or in CI next week.
//! * **Rate monotonicity.** Whether a coordinate faults is decided by
//!   comparing one hash draw against the rate, and *which kind* of fault it
//!   is comes from a second, independent draw. Raising the rate therefore
//!   only ever adds faults (the fault set at rate `r1` is a subset of the
//!   set at `r2 >= r1`, with identical kinds), which is what makes
//!   "degradation is monotone in the fault rate" a testable property.

/// The kind of failure injected at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultKind {
    /// A transient failure (lost RPC, flaky analyzer): retrying may succeed.
    Transient,
    /// The operation exceeded its stage budget; charged the timeout budget
    /// on the virtual clock and retried.
    Timeout,
    /// The response failed validation (checksum/shape mismatch); discarded
    /// and retried.
    Corrupt,
    /// The component died. Not retryable: the caller must degrade.
    Crash,
}

impl FaultKind {
    /// Every kind, in severity order.
    pub const ALL: [FaultKind; 4] =
        [FaultKind::Transient, FaultKind::Timeout, FaultKind::Corrupt, FaultKind::Crash];

    /// Stable lowercase name (used for metric keys).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::Timeout => "timeout",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Crash => "crash",
        }
    }

    /// Whether a bounded retry can recover from this kind.
    pub fn is_retryable(self) -> bool {
        !matches!(self, FaultKind::Crash)
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A named injection site: one class of operation faults can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Site {
    /// One detector invocation on one sample.
    DetectorCall,
    /// A lookup in the content-addressed analysis cache (a faulted get is
    /// served as a miss).
    CacheGet,
    /// A store into the analysis cache (a faulted put is dropped).
    CachePut,
    /// A shard worker thread of the parallel workflow engine.
    ShardWorker,
    /// One ML model prediction.
    MlPredict,
    /// One semantic (abstract-interpretation) checker invocation.
    CheckerCall,
    /// One request handled by the `vulnman serve` analysis service (keyed
    /// by request id, so degradation is identical across worker counts).
    ServeRequest,
    /// One clone-index membership decision in the workflow engine's
    /// dedup-before-analyze pass (keyed by sample index). A faulted
    /// decision drops the sample out of its clone class, so the engine
    /// analyzes it directly — like a faulted cache get, the cost is
    /// recomputation, never a changed result.
    CloneIndex,
}

impl Site {
    /// Every site.
    pub const ALL: [Site; 8] = [
        Site::DetectorCall,
        Site::CacheGet,
        Site::CachePut,
        Site::ShardWorker,
        Site::MlPredict,
        Site::CheckerCall,
        Site::ServeRequest,
        Site::CloneIndex,
    ];

    /// Stable lowercase name (used for metric keys).
    pub fn as_str(self) -> &'static str {
        match self {
            Site::DetectorCall => "detector_call",
            Site::CacheGet => "cache_get",
            Site::CachePut => "cache_put",
            Site::ShardWorker => "shard_worker",
            Site::MlPredict => "ml_predict",
            Site::CheckerCall => "checker_call",
            Site::ServeRequest => "serve_request",
            Site::CloneIndex => "clone_index",
        }
    }

    /// Stable per-site hash tag, so two sites never share a decision stream.
    fn tag(self) -> u64 {
        match self {
            Site::DetectorCall => 0x01,
            Site::CacheGet => 0x02,
            Site::CachePut => 0x03,
            Site::ShardWorker => 0x04,
            Site::MlPredict => 0x05,
            Site::CheckerCall => 0x06,
            Site::ServeRequest => 0x07,
            Site::CloneIndex => 0x08,
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Relative weights of the four fault kinds. Weights are normalized at
/// decision time; they choose *which* fault fires, never *whether* one does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultMix {
    /// Weight of [`FaultKind::Transient`].
    pub transient: f64,
    /// Weight of [`FaultKind::Timeout`].
    pub timeout: f64,
    /// Weight of [`FaultKind::Corrupt`].
    pub corrupt: f64,
    /// Weight of [`FaultKind::Crash`].
    pub crash: f64,
}

impl FaultMix {
    /// The production-shaped default: mostly transient hiccups, a few
    /// timeouts and corruptions, rare crashes.
    pub fn standard() -> Self {
        FaultMix { transient: 0.70, timeout: 0.15, corrupt: 0.10, crash: 0.05 }
    }

    /// Only recoverable transient faults — the differential-testing mix,
    /// where every injected fault must be invisible to verdicts.
    pub fn transient_only() -> Self {
        FaultMix { transient: 1.0, timeout: 0.0, corrupt: 0.0, crash: 0.0 }
    }

    /// Only crashes — the mix that exercises quarantine and shard-worker
    /// recovery paths directly.
    pub fn crash_only() -> Self {
        FaultMix { transient: 0.0, timeout: 0.0, corrupt: 0.0, crash: 1.0 }
    }

    /// Picks a kind from a uniform draw in `[0, 1)`.
    fn pick(&self, u: f64) -> FaultKind {
        let total = self.transient + self.timeout + self.corrupt + self.crash;
        if total <= 0.0 {
            return FaultKind::Transient;
        }
        let x = u * total;
        if x < self.transient {
            FaultKind::Transient
        } else if x < self.transient + self.timeout {
            FaultKind::Timeout
        } else if x < self.transient + self.timeout + self.corrupt {
            FaultKind::Corrupt
        } else {
            FaultKind::Crash
        }
    }
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix::standard()
    }
}

/// Everything a resilience layer needs to know about how to fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault plan (independent of the corpus seed).
    pub seed: u64,
    /// Probability that any given `(site, key, attempt)` coordinate faults.
    pub rate: f64,
    /// Relative kind weights.
    pub mix: FaultMix,
    /// Retries allowed after the first failed attempt (total attempts =
    /// `max_retries + 1`).
    pub max_retries: u32,
    /// First backoff delay, on the virtual clock.
    pub base_backoff_micros: u64,
    /// Backoff ceiling, on the virtual clock.
    pub max_backoff_micros: u64,
    /// Virtual time charged by a [`FaultKind::Timeout`] before the retry
    /// (the per-stage timeout budget).
    pub timeout_budget_micros: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            rate: 0.0,
            mix: FaultMix::standard(),
            max_retries: 3,
            base_backoff_micros: 100,
            max_backoff_micros: 100_000,
            timeout_budget_micros: 50_000,
        }
    }
}

impl FaultConfig {
    /// A plan-bearing config at `rate` with everything else default.
    pub fn with_rate(seed: u64, rate: f64) -> Self {
        FaultConfig { seed, rate, ..Default::default() }
    }
}

/// The deterministic fault plan: decides, per `(site, key, attempt)`,
/// whether and how to fail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
    mix: FaultMix,
}

/// splitmix64 finalizer.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Maps a u64 to a uniform f64 in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Combines two identifying values into one decision key (e.g. a detector
/// index and a sample index). Pure and collision-scattered.
pub fn site_key(a: u64, b: u64) -> u64 {
    mix64(mix64(a) ^ b.wrapping_mul(0x9e3779b97f4a7c15))
}

impl FaultPlan {
    /// Builds the plan for a config.
    pub fn new(config: &FaultConfig) -> Self {
        FaultPlan { seed: config.seed, rate: config.rate.clamp(0.0, 1.0), mix: config.mix }
    }

    /// The configured fault probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The decision draw for one coordinate, independent of the rate.
    fn draw(&self, site: Site, key: u64, attempt: u32, salt: u64) -> f64 {
        let mut h = mix64(self.seed ^ salt);
        h = mix64(h ^ site.tag());
        h = mix64(h ^ key);
        h = mix64(h ^ attempt as u64);
        unit(h)
    }

    /// Whether (and how) the coordinate `(site, key, attempt)` faults.
    ///
    /// Pure: the same plan and coordinates always return the same decision.
    /// Monotone in the rate: if this returns `Some` at rate `r`, it returns
    /// the *same* `Some(kind)` at every rate above `r` (whether-to-fault and
    /// which-kind come from independent draws).
    pub fn decide(&self, site: Site, key: u64, attempt: u32) -> Option<FaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        if self.draw(site, key, attempt, 0xFA01) >= self.rate {
            return None;
        }
        Some(self.mix.pick(self.draw(site, key, attempt, 0xFA02)))
    }

    /// Whether a bounded retry loop over `(site, key)` exhausts its budget:
    /// `true` when every one of the `max_retries + 1` attempts faults, or a
    /// [`FaultKind::Crash`] fires before any attempt succeeds. This is the
    /// same walk [`crate::FaultInjector::run`] performs, precomputable
    /// without running anything — which is how quarantine points stay
    /// identical across worker counts.
    pub fn exhausts(&self, site: Site, key: u64, max_retries: u32) -> bool {
        for attempt in 0..=max_retries {
            match self.decide(site, key, attempt) {
                None => return false,
                Some(FaultKind::Crash) => return true,
                Some(_) => {}
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan::new(&FaultConfig::with_rate(7, 0.3));
        for key in 0..200 {
            for attempt in 0..4 {
                let a = plan.decide(Site::DetectorCall, key, attempt);
                let b = plan.decide(Site::DetectorCall, key, attempt);
                assert_eq!(a, b);
                // A separately constructed identical plan agrees too.
                let other = FaultPlan::new(&FaultConfig::with_rate(7, 0.3));
                assert_eq!(a, other.decide(Site::DetectorCall, key, attempt));
            }
        }
    }

    #[test]
    fn zero_rate_never_faults() {
        let plan = FaultPlan::new(&FaultConfig::with_rate(3, 0.0));
        for key in 0..1000 {
            assert_eq!(plan.decide(Site::DetectorCall, key, 0), None);
            assert!(!plan.exhausts(Site::DetectorCall, key, 3));
        }
    }

    #[test]
    fn full_rate_always_faults() {
        let plan = FaultPlan::new(&FaultConfig::with_rate(3, 1.0));
        for key in 0..100 {
            assert!(plan.decide(Site::MlPredict, key, 0).is_some());
            assert!(plan.exhausts(Site::MlPredict, key, 3));
        }
    }

    #[test]
    fn sites_have_independent_streams() {
        let plan = FaultPlan::new(&FaultConfig::with_rate(11, 0.5));
        let a: Vec<bool> = (0..256).map(|k| plan.decide(Site::CacheGet, k, 0).is_some()).collect();
        let b: Vec<bool> = (0..256).map(|k| plan.decide(Site::CachePut, k, 0).is_some()).collect();
        assert_ne!(a, b, "distinct sites must not share decisions");
    }

    #[test]
    fn rate_monotonicity_preserves_kind() {
        let lo = FaultPlan::new(&FaultConfig::with_rate(5, 0.1));
        let hi = FaultPlan::new(&FaultConfig::with_rate(5, 0.4));
        let mut nested = 0;
        for key in 0..2000 {
            for attempt in 0..3 {
                if let Some(kind) = lo.decide(Site::DetectorCall, key, attempt) {
                    nested += 1;
                    assert_eq!(
                        hi.decide(Site::DetectorCall, key, attempt),
                        Some(kind),
                        "higher rate must keep every lower-rate fault, same kind"
                    );
                }
            }
        }
        assert!(nested > 100, "the low-rate plan should fault somewhere: {nested}");
    }

    #[test]
    fn mix_pick_covers_all_kinds() {
        let mix = FaultMix::standard();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000 {
            seen.insert(mix.pick(i as f64 / 1000.0));
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(FaultMix::transient_only().pick(0.999), FaultKind::Transient);
        assert_eq!(FaultMix::crash_only().pick(0.0), FaultKind::Crash);
        // A degenerate all-zero mix still returns something retryable.
        let zero = FaultMix { transient: 0.0, timeout: 0.0, corrupt: 0.0, crash: 0.0 };
        assert_eq!(zero.pick(0.5), FaultKind::Transient);
    }

    #[test]
    fn site_key_scatters() {
        assert_ne!(site_key(0, 1), site_key(1, 0));
        assert_ne!(site_key(2, 3), site_key(3, 2));
        assert_eq!(site_key(7, 9), site_key(7, 9));
    }
}
