//! Bounded retry with deterministic, virtual-clock exponential backoff.
//!
//! Nothing here sleeps or reads a wall clock: backoff delays are *charged*
//! to an observer (which typically feeds a histogram and a virtual-time
//! counter), so retry decisions are reproducible and free. The injector is
//! the single shared accounting path for every resilience loop in the
//! workspace — the workflow engine's detector retries, the ML pipeline's
//! prediction guard, and the chaos tests all run through it.

use crate::plan::{FaultConfig, FaultKind, FaultPlan, Site};

/// Deterministic exponential backoff schedule on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base_micros: u64,
    max_micros: u64,
}

impl Backoff {
    /// A schedule doubling from `base_micros` up to `max_micros`.
    pub fn new(base_micros: u64, max_micros: u64) -> Self {
        Backoff { base_micros, max_micros: max_micros.max(base_micros) }
    }

    /// The delay charged before retry number `attempt + 1`: `base <<
    /// attempt`, saturating, capped at the ceiling. Non-decreasing in
    /// `attempt` by construction.
    pub fn delay_micros(&self, attempt: u32) -> u64 {
        let shifted =
            if attempt >= 63 { u64::MAX } else { self.base_micros.saturating_mul(1u64 << attempt) };
        shifted.min(self.max_micros)
    }
}

/// Per-kind injected-fault counts. Plain data, deterministically mergeable
/// in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultTally {
    /// Injected [`FaultKind::Transient`] faults.
    pub transient: u64,
    /// Injected [`FaultKind::Timeout`] faults.
    pub timeout: u64,
    /// Injected [`FaultKind::Corrupt`] faults.
    pub corrupt: u64,
    /// Injected [`FaultKind::Crash`] faults.
    pub crash: u64,
}

impl FaultTally {
    /// Counts one injected fault.
    pub fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Transient => self.transient += 1,
            FaultKind::Timeout => self.timeout += 1,
            FaultKind::Corrupt => self.corrupt += 1,
            FaultKind::Crash => self.crash += 1,
        }
    }

    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &FaultTally) {
        self.transient += other.transient;
        self.timeout += other.timeout;
        self.corrupt += other.corrupt;
        self.crash += other.crash;
    }

    /// Total injected faults across kinds.
    pub fn total(&self) -> u64 {
        self.transient + self.timeout + self.corrupt + self.crash
    }
}

/// Why a fault-injected operation did not produce a value: the error
/// taxonomy of graceful degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// Every attempt in the retry budget faulted.
    Exhausted {
        /// Site of the operation.
        site: Site,
        /// Attempts consumed (always `max_retries + 1`).
        attempts: u32,
        /// Kind injected on the final attempt.
        last: FaultKind,
    },
    /// A [`FaultKind::Crash`] fired; retrying is pointless.
    Crashed {
        /// Site of the operation.
        site: Site,
        /// Attempt at which the crash fired.
        attempt: u32,
    },
}

impl FaultError {
    /// Site the failure happened at.
    pub fn site(&self) -> Site {
        match self {
            FaultError::Exhausted { site, .. } | FaultError::Crashed { site, .. } => *site,
        }
    }
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Exhausted { site, attempts, last } => {
                write!(f, "{site} exhausted {attempts} attempts (last fault: {last})")
            }
            FaultError::Crashed { site, attempt } => {
                write!(f, "{site} crashed at attempt {attempt}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// A successful (possibly retried) operation, with its resilience
/// accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attempted<T> {
    /// The operation's value.
    pub value: T,
    /// Retries consumed before success (0 = first attempt succeeded).
    pub retries: u32,
    /// Faults injected along the way.
    pub faults: FaultTally,
}

/// Receives resilience events as they happen. Implementations bridge to a
/// metrics registry; the default methods make observation optional.
pub trait FaultObserver: Send + Sync {
    /// A fault was injected at `site` on attempt `attempt`.
    fn on_fault(&self, site: Site, kind: FaultKind, attempt: u32) {
        let _ = (site, kind, attempt);
    }

    /// `micros` of virtual backoff (or timeout budget) were charged before a
    /// retry at `site`.
    fn on_backoff(&self, site: Site, micros: u64) {
        let _ = (site, micros);
    }

    /// An operation at `site` succeeded after `retries` retries.
    fn on_recovered(&self, site: Site, retries: u32) {
        let _ = (site, retries);
    }

    /// An operation at `site` gave up (crash or exhausted budget).
    fn on_exhausted(&self, site: Site) {
        let _ = site;
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl FaultObserver for NoopObserver {}

/// Runs operations under a fault plan with bounded retry and deterministic
/// backoff.
pub struct FaultInjector {
    plan: FaultPlan,
    max_retries: u32,
    backoff: Backoff,
    timeout_budget_micros: u64,
    observer: std::sync::Arc<dyn FaultObserver>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("max_retries", &self.max_retries)
            .field("backoff", &self.backoff)
            .finish()
    }
}

impl FaultInjector {
    /// Builds an injector with a no-op observer.
    pub fn new(config: &FaultConfig) -> Self {
        FaultInjector::with_observer(config, std::sync::Arc::new(NoopObserver))
    }

    /// Builds an injector reporting every event to `observer`.
    pub fn with_observer(
        config: &FaultConfig,
        observer: std::sync::Arc<dyn FaultObserver>,
    ) -> Self {
        FaultInjector {
            plan: FaultPlan::new(config),
            max_retries: config.max_retries,
            backoff: Backoff::new(config.base_backoff_micros, config.max_backoff_micros),
            timeout_budget_micros: config.timeout_budget_micros,
            observer,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry budget (retries after the first attempt).
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The backoff schedule.
    pub fn backoff(&self) -> Backoff {
        self.backoff
    }

    /// Consults the plan for one attempt and, when a fault fires, performs
    /// the bookkeeping (`on_fault`, plus the backoff/timeout charge for
    /// retryable kinds). External retry loops that cannot use
    /// [`FaultInjector::run`] directly call this so their accounting matches.
    pub fn attempt(&self, site: Site, key: u64, attempt: u32) -> Option<FaultKind> {
        let kind = self.plan.decide(site, key, attempt)?;
        self.observer.on_fault(site, kind, attempt);
        if kind.is_retryable() {
            let micros = if kind == FaultKind::Timeout {
                self.timeout_budget_micros
            } else {
                self.backoff.delay_micros(attempt)
            };
            self.observer.on_backoff(site, micros);
        }
        Some(kind)
    }

    /// Reports a success after `retries` retries (see [`FaultObserver`]).
    pub fn note_recovered(&self, site: Site, retries: u32) {
        self.observer.on_recovered(site, retries);
    }

    /// Reports a give-up (see [`FaultObserver`]).
    pub fn note_exhausted(&self, site: Site) {
        self.observer.on_exhausted(site);
    }

    /// Runs `op` under the plan: attempts are consumed by injected faults
    /// until one attempt is fault-free (then `op` runs exactly once), the
    /// budget is exhausted, or a crash fires. `op` itself is never invoked
    /// on a faulted attempt — an injected fault stands for the operation
    /// failing.
    pub fn run<T>(
        &self,
        site: Site,
        key: u64,
        op: impl FnOnce() -> T,
    ) -> Result<Attempted<T>, FaultError> {
        let mut faults = FaultTally::default();
        for attempt in 0..=self.max_retries {
            match self.attempt(site, key, attempt) {
                None => {
                    let value = op();
                    self.note_recovered(site, attempt);
                    return Ok(Attempted { value, retries: attempt, faults });
                }
                Some(FaultKind::Crash) => {
                    faults.record(FaultKind::Crash);
                    self.note_exhausted(site);
                    return Err(FaultError::Crashed { site, attempt });
                }
                Some(kind) => faults.record(kind),
            }
        }
        self.note_exhausted(site);
        let last = self
            .plan
            .decide(site, key, self.max_retries)
            .expect("exhausted loops end on a faulted attempt");
        Err(FaultError::Exhausted { site, attempts: self.max_retries + 1, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_doubles_and_caps() {
        let b = Backoff::new(100, 1_000);
        assert_eq!(b.delay_micros(0), 100);
        assert_eq!(b.delay_micros(1), 200);
        assert_eq!(b.delay_micros(2), 400);
        assert_eq!(b.delay_micros(3), 800);
        assert_eq!(b.delay_micros(4), 1_000);
        assert_eq!(b.delay_micros(63), 1_000);
        assert_eq!(b.delay_micros(64), 1_000, "shift overflow saturates, then caps");
    }

    #[test]
    fn zero_rate_runs_op_once_first_try() {
        let inj = FaultInjector::new(&FaultConfig::with_rate(1, 0.0));
        let calls = AtomicU32::new(0);
        let out = inj
            .run(Site::DetectorCall, 42, || {
                calls.fetch_add(1, Ordering::Relaxed);
                "ok"
            })
            .unwrap();
        assert_eq!(out.value, "ok");
        assert_eq!(out.retries, 0);
        assert_eq!(out.faults.total(), 0);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_rate_never_runs_op() {
        let inj = FaultInjector::new(&FaultConfig { rate: 1.0, ..Default::default() });
        let err = inj.run(Site::DetectorCall, 42, || panic!("must not run")).unwrap_err();
        assert_eq!(err.site(), Site::DetectorCall);
    }

    #[test]
    fn crash_short_circuits_retries() {
        let cfg = FaultConfig {
            rate: 1.0,
            mix: crate::FaultMix::crash_only(),
            max_retries: 5,
            ..Default::default()
        };
        let inj = FaultInjector::new(&cfg);
        match inj.run(Site::ShardWorker, 0, || ()) {
            Err(FaultError::Crashed { attempt, .. }) => assert_eq!(attempt, 0),
            other => panic!("expected crash, got {other:?}"),
        }
    }

    #[test]
    fn run_agrees_with_plan_exhausts() {
        let cfg = FaultConfig { seed: 9, rate: 0.6, max_retries: 2, ..Default::default() };
        let inj = FaultInjector::new(&cfg);
        let plan = FaultPlan::new(&cfg);
        for key in 0..500 {
            let predicted = plan.exhausts(Site::DetectorCall, key, cfg.max_retries);
            let actual = inj.run(Site::DetectorCall, key, || ()).is_err();
            assert_eq!(predicted, actual, "key {key}");
        }
    }

    #[test]
    fn observer_sees_faults_backoffs_and_outcomes() {
        #[derive(Default)]
        struct Counting {
            faults: AtomicU64,
            backoff_micros: AtomicU64,
            recovered: AtomicU64,
            exhausted: AtomicU64,
        }
        impl FaultObserver for Counting {
            fn on_fault(&self, _: Site, _: FaultKind, _: u32) {
                self.faults.fetch_add(1, Ordering::Relaxed);
            }
            fn on_backoff(&self, _: Site, micros: u64) {
                self.backoff_micros.fetch_add(micros, Ordering::Relaxed);
            }
            fn on_recovered(&self, _: Site, _: u32) {
                self.recovered.fetch_add(1, Ordering::Relaxed);
            }
            fn on_exhausted(&self, _: Site) {
                self.exhausted.fetch_add(1, Ordering::Relaxed);
            }
        }
        let obs = Arc::new(Counting::default());
        let cfg = FaultConfig {
            seed: 4,
            rate: 0.5,
            mix: crate::FaultMix::transient_only(),
            max_retries: 3,
            ..Default::default()
        };
        let inj = FaultInjector::with_observer(&cfg, obs.clone());
        let mut oks = 0u64;
        let mut errs = 0u64;
        for key in 0..200 {
            match inj.run(Site::MlPredict, key, || ()) {
                Ok(_) => oks += 1,
                Err(_) => errs += 1,
            }
        }
        assert_eq!(obs.recovered.load(Ordering::Relaxed), oks);
        assert_eq!(obs.exhausted.load(Ordering::Relaxed), errs);
        assert!(obs.faults.load(Ordering::Relaxed) > 0);
        assert!(obs.backoff_micros.load(Ordering::Relaxed) > 0);
        assert!(errs > 0, "rate 0.5 with 4 attempts should exhaust sometimes");
    }

    #[test]
    fn retries_never_exceed_budget() {
        for max_retries in [0u32, 1, 3, 7] {
            let cfg = FaultConfig { seed: 2, rate: 0.7, max_retries, ..Default::default() };
            let inj = FaultInjector::new(&cfg);
            for key in 0..300 {
                match inj.run(Site::DetectorCall, key, || ()) {
                    Ok(a) => {
                        assert!(a.retries <= max_retries);
                        assert_eq!(u64::from(a.retries), a.faults.total());
                    }
                    Err(FaultError::Exhausted { attempts, .. }) => {
                        assert_eq!(attempts, max_retries + 1)
                    }
                    Err(FaultError::Crashed { attempt, .. }) => assert!(attempt <= max_retries),
                }
            }
        }
    }

    #[test]
    fn fault_error_displays() {
        let e = FaultError::Exhausted {
            site: Site::DetectorCall,
            attempts: 4,
            last: FaultKind::Transient,
        };
        assert!(e.to_string().contains("detector_call"));
        let c = FaultError::Crashed { site: Site::ShardWorker, attempt: 1 };
        assert!(c.to_string().contains("crashed"));
    }

    #[test]
    fn tally_merges() {
        let mut a = FaultTally { transient: 1, timeout: 2, corrupt: 3, crash: 4 };
        let b = FaultTally { transient: 10, timeout: 20, corrupt: 30, crash: 40 };
        a.merge(&b);
        assert_eq!(a, FaultTally { transient: 11, timeout: 22, corrupt: 33, crash: 44 });
        assert_eq!(a.total(), 110);
    }
}
