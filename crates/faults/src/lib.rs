//! # vulnman-faults
//!
//! Deterministic, seeded fault injection for the vulnerability-management
//! pipeline — the substrate of its graceful-degradation guarantees.
//!
//! Industrial vulnerability management keeps shipping verdicts even when
//! individual components are unreliable: partial rule suites, flaky
//! analyzers, and capacity limits are the norm (Gap Observations 1 and 4 of
//! the source paper). This crate supplies the machinery to *prove* that
//! property instead of hoping for it:
//!
//! * [`FaultPlan`] — a pure, seeded function from `(site, key, attempt)` to
//!   an optional [`FaultKind`]. No clocks, no global state, no call-order
//!   dependence: the same plan degrades a run identically on one worker or
//!   eight. Decisions are monotone in the rate (raising the rate only adds
//!   faults, never moves or re-kinds existing ones), so "degradation grows
//!   with the fault rate" is a testable property.
//! * [`FaultInjector`] — bounded retry with deterministic exponential
//!   [`Backoff`] on a **virtual clock** (delays are charged to an observer,
//!   never slept), per-attempt fault consultation, and the [`FaultError`]
//!   taxonomy callers degrade on.
//! * [`Site`] — the named injection sites: detector calls, cache get/put,
//!   shard workers, ML predictions.
//! * [`FaultObserver`] — the bridge to a metrics registry, kept as a trait
//!   so this crate stays dependency-free.
//!
//! ```
//! use vulnman_faults::{FaultConfig, FaultInjector, Site};
//!
//! let cfg = FaultConfig { seed: 7, rate: 0.2, ..Default::default() };
//! let injector = FaultInjector::new(&cfg);
//! match injector.run(Site::DetectorCall, 42, || "scanned") {
//!     Ok(done) => assert_eq!(done.value, "scanned"),
//!     Err(e) => println!("degrade: {e}"),
//! }
//! ```

#![warn(missing_docs)]

mod plan;
mod retry;

pub use plan::{site_key, FaultConfig, FaultKind, FaultMix, FaultPlan, Site};
pub use retry::{
    Attempted, Backoff, FaultError, FaultInjector, FaultObserver, FaultTally, NoopObserver,
};
