//! Property tests for the fault plan and retry loop: the invariants every
//! consumer of the crate leans on, checked over arbitrary seeds, rates,
//! and keys.
//!
//! * **Purity** — `decide` is a pure function of (config, site, key,
//!   attempt): rebuilding the plan never changes a decision.
//! * **Calibration** — the empirical injection frequency over many keys
//!   tracks the configured rate.
//! * **Nesting** — raising the rate only adds faults; every fault at a
//!   lower rate fires with the same kind at any higher rate (the property
//!   that makes degradation monotone in the rate).
//! * **Budget** — `run` never retries past `max_retries`, and an
//!   exhausted call used exactly `max_retries + 1` attempts.
//! * **Backoff** — delays are non-decreasing in the attempt number and
//!   never exceed the cap.

use proptest::prelude::*;
use vulnman_faults::{Backoff, FaultConfig, FaultError, FaultInjector, FaultPlan, Site};

fn site(idx: usize) -> Site {
    Site::ALL[idx % Site::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rebuilding a plan from the same config reproduces every decision.
    #[test]
    fn decide_is_pure(
        seed in any::<u64>(),
        rate_pct in 0u32..=100,
        site_idx in 0usize..5,
        key in any::<u64>(),
        attempt in 0u32..8,
    ) {
        let config = FaultConfig::with_rate(seed, f64::from(rate_pct) / 100.0);
        let a = FaultPlan::new(&config);
        let b = FaultPlan::new(&config);
        prop_assert_eq!(a.decide(site(site_idx), key, attempt), b.decide(site(site_idx), key, attempt));
    }

    /// The observed fault frequency over 4000 keys stays within 5
    /// percentage points of the configured rate (≥ 6σ for a Bernoulli
    /// sample of that size).
    #[test]
    fn empirical_rate_tracks_configured_rate(
        seed in any::<u64>(),
        rate_pct in 0u32..=50,
        site_idx in 0usize..5,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let plan = FaultPlan::new(&FaultConfig::with_rate(seed, rate));
        let n = 4000u64;
        let fired =
            (0..n).filter(|&key| plan.decide(site(site_idx), key, 0).is_some()).count() as f64;
        let empirical = fired / n as f64;
        prop_assert!(
            (empirical - rate).abs() < 0.05,
            "empirical {} vs configured {}", empirical, rate
        );
    }

    /// Fault sets nest: anything that fires at a lower rate fires with
    /// the same kind at any higher rate.
    #[test]
    fn fault_sets_nest_as_rate_rises(
        seed in any::<u64>(),
        lo_pct in 0u32..=50,
        extra_pct in 0u32..=50,
        site_idx in 0usize..5,
        key in any::<u64>(),
        attempt in 0u32..8,
    ) {
        let lo = f64::from(lo_pct) / 100.0;
        let hi = f64::from(lo_pct + extra_pct) / 100.0;
        let plan_lo = FaultPlan::new(&FaultConfig::with_rate(seed, lo));
        let plan_hi = FaultPlan::new(&FaultConfig::with_rate(seed, hi));
        if let Some(kind) = plan_lo.decide(site(site_idx), key, attempt) {
            prop_assert_eq!(plan_hi.decide(site(site_idx), key, attempt), Some(kind));
        }
    }

    /// `run` respects the retry budget: a success reports at most
    /// `max_retries` retries, an exhaustion used exactly
    /// `max_retries + 1` attempts, and a crash never retries past the
    /// attempt it fired on.
    #[test]
    fn run_never_exceeds_the_retry_budget(
        seed in any::<u64>(),
        rate_pct in 0u32..=90,
        max_retries in 0u32..6,
        key in any::<u64>(),
        site_idx in 0usize..5,
    ) {
        let config = FaultConfig {
            max_retries,
            ..FaultConfig::with_rate(seed, f64::from(rate_pct) / 100.0)
        };
        let inj = FaultInjector::new(&config);
        match inj.run(site(site_idx), key, || ()) {
            Ok(attempted) => prop_assert!(attempted.retries <= max_retries),
            Err(FaultError::Exhausted { attempts, .. }) => {
                prop_assert_eq!(attempts, max_retries + 1);
            }
            Err(FaultError::Crashed { attempt, .. }) => prop_assert!(attempt <= max_retries),
        }
    }

    /// Backoff delays are non-decreasing in the attempt number and capped.
    #[test]
    fn backoff_is_monotone_and_capped(
        base in 1u64..10_000,
        cap_extra in 0u64..1_000_000,
        attempt in 0u32..80,
    ) {
        let cap = base + cap_extra;
        let backoff = Backoff::new(base, cap);
        let here = backoff.delay_micros(attempt);
        let next = backoff.delay_micros(attempt + 1);
        prop_assert!(here <= next, "delay must not shrink: {} > {}", here, next);
        prop_assert!(next <= cap, "delay {} exceeds cap {}", next, cap);
    }
}
