//! Fuzzing campaigns over the sanitizer interpreter (the paper's third
//! deferred component: "feedback loop, vulnerability prioritization,
//! **fuzzing techniques** … as our future work").
//!
//! A single dynamic execution explores one input model; a campaign sweeps
//! the model — attacker string lengths, magnitudes, environment behaviours
//! (do lookups fail?) — and unions the observed faults. Different faults
//! manifest under different inputs: a short payload never overflows a large
//! buffer, and a use of a lookup result only faults as a *null deref* when
//! the lookup fails but as an *out-of-bounds write* when it succeeds.

use vulnman_lang::ast::Program;
use vulnman_lang::interp::{run_program, DynamicReport, InterpConfig};

/// A sweep of adversarial input models.
#[derive(Debug, Clone)]
pub struct FuzzCampaign {
    configs: Vec<InterpConfig>,
}

impl FuzzCampaign {
    /// Builds a campaign from explicit configurations.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty.
    pub fn new(configs: Vec<InterpConfig>) -> Self {
        assert!(!configs.is_empty(), "a campaign needs at least one configuration");
        FuzzCampaign { configs }
    }

    /// The standard sweep: short/typical/long payloads × small/huge integers
    /// × failing/succeeding lookups.
    pub fn standard() -> Self {
        let mut configs = Vec::new();
        for &len in &[8usize, 64, 300] {
            for &big in &[16i64, 600_000_000] {
                for &fail in &[true, false] {
                    configs.push(InterpConfig {
                        attacker_string_len: len,
                        attacker_int: big,
                        lookups_fail: fail,
                        ..InterpConfig::default()
                    });
                }
            }
        }
        FuzzCampaign { configs }
    }

    /// Number of configurations in the sweep.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Returns `true` if the campaign has no configurations.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Runs every configuration and unions the reports (events deduplicated
    /// by kind and function, entry lists merged).
    pub fn run(&self, program: &Program) -> DynamicReport {
        let mut union = DynamicReport::default();
        let mut seen_events = std::collections::HashSet::new();
        let mut seen_crashes = std::collections::HashSet::new();
        for config in &self.configs {
            let report = run_program(program, config);
            if union.entries_run.is_empty() {
                union.entries_run = report.entries_run.clone();
            }
            for e in report.events {
                if seen_events.insert((e.kind.clone(), e.function.clone())) {
                    union.events.push(e);
                }
            }
            for c in report.crashed {
                if seen_crashes.insert(c.clone()) {
                    union.crashed.push(c);
                }
            }
        }
        union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_lang::interp::DynamicEventKind;
    use vulnman_lang::parse;

    #[test]
    fn campaign_finds_faults_a_single_config_misses() {
        // Overflows only for payloads longer than 100 bytes.
        let p = parse(r#"void f() { char buf[100]; char* s = read_input(); strcpy(buf, s); }"#)
            .unwrap();
        let short = InterpConfig { attacker_string_len: 8, ..InterpConfig::default() };
        let single = run_program(&p, &short);
        assert!(!single.has(&DynamicEventKind::OutOfBoundsWrite), "short payload fits");
        let campaign = FuzzCampaign::standard().run(&p);
        assert!(campaign.has(&DynamicEventKind::OutOfBoundsWrite), "long payload overflows");
    }

    #[test]
    fn environment_sweep_reveals_both_failure_modes() {
        // Lookup result written past its real size: null-deref when the
        // lookup fails, out-of-bounds write when it succeeds (16-byte entry).
        let p = parse(r#"void f() { char* e = find_entry(1); e[32] = 'x'; }"#).unwrap();
        let failing =
            run_program(&p, &InterpConfig { lookups_fail: true, ..InterpConfig::default() });
        assert!(failing.has(&DynamicEventKind::NullDereference));
        assert!(!failing.has(&DynamicEventKind::OutOfBoundsWrite));
        let campaign = FuzzCampaign::standard().run(&p);
        assert!(campaign.has(&DynamicEventKind::NullDereference));
        assert!(campaign.has(&DynamicEventKind::OutOfBoundsWrite));
    }

    #[test]
    fn clean_code_survives_the_whole_sweep() {
        let p = parse(
            r#"void f() { char buf[32]; char* s = read_input(); int i = 0; while (s[i] != '\0' && i < 31) { buf[i] = s[i]; i++; } buf[i] = '\0'; consume(buf); }"#,
        )
        .unwrap();
        let campaign = FuzzCampaign::standard();
        assert_eq!(campaign.len(), 12);
        let report = campaign.run(&p);
        assert!(report.events.is_empty(), "{:?}", report.events);
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn empty_campaign_rejected() {
        let _ = FuzzCampaign::new(vec![]);
    }
}
