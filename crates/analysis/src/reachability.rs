//! Call-graph reachability and attack-surface classification.
//!
//! Figure 1 of the paper gates *manual security review* on threat modeling:
//! "surfaces with zero-click or one-click surfaces trigger an additional
//! phase of manual security review". This module derives that classification
//! from which input sources a function's call subtree touches.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet, VecDeque};
use vulnman_lang::Program;

/// How much attacker interaction is needed to reach a code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Surface {
    /// Reached by remote data with no user interaction (network/request
    /// sources such as `http_param`, `recv`).
    ZeroClick,
    /// Requires a local user action (`read_input`, `getenv`).
    OneClick,
    /// No external input reaches it.
    Local,
}

/// Sources classified as zero-click (remote, unauthenticated-style).
const ZERO_CLICK_SOURCES: [&str; 4] = ["http_param", "recv", "get_request_field", "deserialize"];
/// Sources classified as one-click (local interaction).
const ONE_CLICK_SOURCES: [&str; 3] = ["read_input", "getenv", "read_file"];

/// Static call graph over a program's functions.
///
/// Adjacency is stored in ordered maps/sets so that every traversal —
/// `reachable_from`, `external_calls_in_subtree`, and anything serialized
/// from them — iterates in a fixed order regardless of insertion order or
/// hasher seed. This module was the last `HashMap` holdout from the PR 1
/// determinism audit; the corpus graph built on top of it inherits the
/// ordering guarantee.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Adjacency: caller -> set of callees (only in-program functions).
    edges: BTreeMap<String, BTreeSet<String>>,
    /// All external (library) callees per function.
    externals: BTreeMap<String, BTreeSet<String>>,
    functions: Vec<String>,
}

impl CallGraph {
    /// Builds the call graph of `program`.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), vulnman_lang::ParseError> {
    /// use vulnman_analysis::reachability::CallGraph;
    /// let p = vulnman_lang::parse("void a() { b(); }\nvoid b() { lib(); }")?;
    /// let g = CallGraph::build(&p);
    /// assert!(g.calls("a", "b"));
    /// assert!(!g.calls("b", "a"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn build(program: &Program) -> CallGraph {
        let defined: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();
        let mut g = CallGraph::default();
        for f in &program.functions {
            g.functions.push(f.name.to_string());
            let entry = g.edges.entry(f.name.to_string()).or_default();
            let ext = g.externals.entry(f.name.to_string()).or_default();
            for callee in f.callees() {
                if defined.contains(callee.as_str()) {
                    entry.insert(callee.to_string());
                } else {
                    ext.insert(callee.to_string());
                }
            }
        }
        g
    }

    /// Returns `true` if `caller` directly calls `callee`.
    pub fn calls(&self, caller: &str, callee: &str) -> bool {
        self.edges.get(caller).is_some_and(|s| s.contains(callee))
    }

    /// Functions never called by another in-program function (entry points),
    /// in sorted order.
    pub fn roots(&self) -> Vec<String> {
        let called: BTreeSet<&String> = self.edges.values().flatten().collect();
        let mut roots: Vec<String> =
            self.functions.iter().filter(|f| !called.contains(f)).cloned().collect();
        roots.sort();
        roots
    }

    /// All in-program functions transitively reachable from `start`
    /// (including `start`), in sorted order.
    pub fn reachable_from(&self, start: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        if self.edges.contains_key(start) {
            seen.insert(start.to_string());
            queue.push_back(start.to_string());
        }
        while let Some(f) = queue.pop_front() {
            if let Some(next) = self.edges.get(&f) {
                for n in next {
                    if seen.insert(n.clone()) {
                        queue.push_back(n.clone());
                    }
                }
            }
        }
        seen
    }

    /// External (library) functions called anywhere in `start`'s call
    /// subtree, in sorted order.
    pub fn external_calls_in_subtree(&self, start: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for f in self.reachable_from(start) {
            if let Some(ext) = self.externals.get(&f) {
                out.extend(ext.iter().cloned());
            }
        }
        out
    }

    /// Classifies the attack surface of `function` by the most exposed input
    /// source its call subtree touches.
    pub fn surface(&self, function: &str) -> Surface {
        let ext = self.external_calls_in_subtree(function);
        ext.iter().filter_map(|s| Surface::of_source(s)).min().unwrap_or(Surface::Local)
    }

    /// Surface classification for every function, keyed in name order so
    /// iterating callers (report renderers) stay deterministic.
    pub fn surfaces(&self) -> BTreeMap<String, Surface> {
        self.functions.iter().map(|f| (f.clone(), self.surface(f))).collect()
    }
}

impl Surface {
    /// Classifies a single external (library) call name as an input source,
    /// or `None` if it is not one. Shared with the corpus graph so per-sample
    /// and cross-sample surface classification agree.
    pub fn of_source(name: &str) -> Option<Surface> {
        if ZERO_CLICK_SOURCES.contains(&name) {
            Some(Surface::ZeroClick)
        } else if ONE_CLICK_SOURCES.contains(&name) {
            Some(Surface::OneClick)
        } else {
            None
        }
    }

    /// Severity multiplier applied during prioritization.
    pub fn severity_multiplier(&self) -> f64 {
        match self {
            Surface::ZeroClick => 1.0,
            Surface::OneClick => 0.85,
            Surface::Local => 0.6,
        }
    }

    /// Whether Figure 1's workflow routes this surface to manual review.
    pub fn requires_manual_review(&self) -> bool {
        matches!(self, Surface::ZeroClick | Surface::OneClick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_lang::parse;

    fn graph(src: &str) -> CallGraph {
        CallGraph::build(&parse(src).unwrap())
    }

    #[test]
    fn roots_are_uncalled_functions() {
        let g = graph("void a() { b(); }\nvoid b() { }\nvoid main_loop() { a(); }");
        assert_eq!(g.roots(), vec!["main_loop"]);
    }

    #[test]
    fn roots_come_back_sorted_regardless_of_definition_order() {
        let g = graph("void zeta() { }\nvoid alpha() { }\nvoid mid() { }");
        assert_eq!(g.roots(), vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn traversals_iterate_in_sorted_order() {
        let g = graph("void z() { b(); a(); }\nvoid b() { z_lib(); }\nvoid a() { a_lib(); }");
        let reach: Vec<String> = g.reachable_from("z").into_iter().collect();
        assert_eq!(reach, vec!["a", "b", "z"]);
        let ext: Vec<String> = g.external_calls_in_subtree("z").into_iter().collect();
        assert_eq!(ext, vec!["a_lib", "z_lib"]);
    }

    #[test]
    fn transitive_reachability() {
        let g = graph("void a() { b(); }\nvoid b() { c(); }\nvoid c() { }\nvoid d() { }");
        let r = g.reachable_from("a");
        assert!(r.contains("c"));
        assert!(!r.contains("d"));
    }

    #[test]
    fn zero_click_via_transitive_source() {
        let g = graph(
            "void api() { helper(); }\nvoid helper() { char* x = http_param(\"q\"); use(x); }\nvoid tool() { char* x = getenv(\"HOME\"); use(x); }\nvoid pure() { compute(); }",
        );
        assert_eq!(g.surface("api"), Surface::ZeroClick);
        assert_eq!(g.surface("helper"), Surface::ZeroClick);
        assert_eq!(g.surface("tool"), Surface::OneClick);
        assert_eq!(g.surface("pure"), Surface::Local);
    }

    #[test]
    fn zero_click_dominates_one_click() {
        let g = graph("void f() { char* a = getenv(\"X\"); char* b = recv(); use(a, b); }");
        assert_eq!(g.surface("f"), Surface::ZeroClick);
    }

    #[test]
    fn review_gate_matches_figure1() {
        assert!(Surface::ZeroClick.requires_manual_review());
        assert!(Surface::OneClick.requires_manual_review());
        assert!(!Surface::Local.requires_manual_review());
    }

    #[test]
    fn multipliers_order() {
        assert!(Surface::ZeroClick.severity_multiplier() > Surface::OneClick.severity_multiplier());
        assert!(Surface::OneClick.severity_multiplier() > Surface::Local.severity_multiplier());
    }

    #[test]
    fn recursive_graph_terminates() {
        let g = graph("void a() { b(); }\nvoid b() { a(); lib(); }");
        let r = g.reachable_from("a");
        assert_eq!(r.len(), 2);
        assert!(g.external_calls_in_subtree("a").contains("lib"));
    }
}
