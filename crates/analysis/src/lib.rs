//! # vulnman-analysis
//!
//! The traditional, rule-based side of industry vulnerability management
//! (Figure 1 of the paper): specialized static detectors per CWE family,
//! CVSS-like severity scoring, call-graph reachability / attack-surface
//! classification, and rule-based auto-fix.
//!
//! These tools are the *baseline* the paper's AI models are compared
//! against, and also the ecosystem any adopted academic model must
//! integrate with (Gap Observation 2).
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), vulnman_lang::ParseError> {
//! use vulnman_analysis::detectors::RuleEngine;
//!
//! let engine = RuleEngine::default_suite();
//! let findings = engine.scan_source(
//!     r#"void f() { char* id = http_param("id"); exec_query(id); }"#,
//! )?;
//! assert_eq!(findings.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod autofix;
pub mod checkers;
pub mod corpusgraph;
pub mod detectors;
pub mod dynamic;
pub mod finding;
pub mod fuzz;
pub mod oracle;
pub mod reachability;
pub mod severity;

pub use audit::{register_audit_instruments, AuditConfig, AuditEngine, AuditReport, MlVerdict};
pub use autofix::AutoFixer;
pub use checkers::{
    register_absint_instruments, AbsintBaseline, BaselineEntry, IncrementalSemanticScan,
    SemanticEngine, SemanticScan,
};
pub use corpusgraph::{register_graph_instruments, CorpusGraph, CorpusGraphReport, UnitRef};
pub use detectors::{RuleEngine, StaticDetector};
pub use dynamic::DynamicSanitizer;
pub use finding::{dedupe_findings, Confidence, Finding};
pub use oracle::{
    DifferentialOracle, Disagreement, DisagreementKind, OracleConfig, OracleReport, View,
};
pub use reachability::{CallGraph, Surface};
pub use severity::{score, ScoredFinding};
