//! Rule-based static detectors — the "traditional rule-based analysis
//! tools" of the paper's Figure 1.
//!
//! Each detector targets specific CWE classes, mirroring the industry
//! practice the paper describes: "each tool selected is often specialized to
//! address certain vulnerabilities more effectively than others".

use crate::finding::{Confidence, Finding};
use vulnman_lang::ast::{
    BinOp, Expr, ExprKind, Function, LValue, Program, Stmt, StmtKind, Type, UnOp,
};
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_synth::cwe::Cwe;

/// A rule-based static analyzer.
///
/// Object-safe so heterogeneous suites can be registered in the workflow
/// engine.
pub trait StaticDetector: Send + Sync {
    /// Stable detector name (used in findings and reports).
    fn name(&self) -> &'static str;
    /// CWE classes this detector targets.
    fn cwes(&self) -> Vec<Cwe>;
    /// Scans a parsed program and returns findings.
    fn scan(&self, program: &Program) -> Vec<Finding>;
}

/// Runs every registered detector over a program.
#[derive(Default)]
pub struct RuleEngine {
    detectors: Vec<Box<dyn StaticDetector>>,
}

impl std::fmt::Debug for RuleEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleEngine").field("detectors", &self.detector_names()).finish()
    }
}

impl RuleEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        RuleEngine::default()
    }

    /// The standard industry suite: one specialized tool per CWE family.
    pub fn default_suite() -> Self {
        let mut e = RuleEngine::syntactic_suite();
        e.detectors.insert(0, Box::new(TaintDetector::default_config()));
        e
    }

    /// The purely syntactic detectors — [`RuleEngine::default_suite`] minus
    /// the taint dataflow pass. The audit matrix reports this family
    /// separately from taint so each column isolates one technique.
    pub fn syntactic_suite() -> Self {
        let mut e = RuleEngine::new();
        e.register(Box::new(BoundsDetector));
        e.register(Box::new(UseAfterFreeDetector));
        e.register(Box::new(OverflowDetector));
        e.register(Box::new(NullDerefDetector));
        e.register(Box::new(CredentialDetector));
        e.register(Box::new(RaceDetector));
        e
    }

    /// The full automated-assessment stack of Figure 1: the static rule
    /// suite plus the sanitizer-instrumented dynamic analysis.
    pub fn full_suite() -> Self {
        let mut e = RuleEngine::default_suite();
        e.register(Box::new(crate::dynamic::DynamicSanitizer::new()));
        e
    }

    /// Adds a detector to the suite.
    pub fn register(&mut self, d: Box<dyn StaticDetector>) -> &mut Self {
        self.detectors.push(d);
        self
    }

    /// Names of registered detectors.
    pub fn detector_names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Scans a parsed program with every detector.
    pub fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out: Vec<Finding> = Vec::new();
        for d in &self.detectors {
            out.extend(d.scan(program));
        }
        out.sort_by_key(|f| (f.span.start, f.cwe.id()));
        out
    }

    /// Scans a parsed program with only the detectors whose advertised
    /// [`StaticDetector::cwes`] cover `cwe` — the targeted core of autofix
    /// verification, where findings of every other class are filtered out
    /// anyway. Findings of class `cwe` are exactly those of a full
    /// [`RuleEngine::scan`]; other classes may be missing.
    pub fn scan_cwe(&self, program: &Program, cwe: Cwe) -> Vec<Finding> {
        let mut out: Vec<Finding> = Vec::new();
        for d in self.detectors.iter().filter(|d| d.cwes().contains(&cwe)) {
            out.extend(d.scan(program));
        }
        out.sort_by_key(|f| (f.span.start, f.cwe.id()));
        out
    }

    /// Parses and scans source text.
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source(&self, source: &str) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        Ok(self.scan(&vulnman_lang::parse(source)?))
    }

    /// A 64-bit fingerprint of the suite's configuration (its detector
    /// lineup), used as the cache config key: two engines with the same
    /// detectors share memoized findings, different lineups never collide.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        for name in self.detector_names() {
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h = (h ^ 0x1f).wrapping_mul(PRIME); // name separator
        }
        h
    }

    /// Parses and scans source text through a content-addressed cache:
    /// textually identical sources (duplicated corpus slices, repeated
    /// scans) are parsed and analyzed once. Results are identical to
    /// [`RuleEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source_cached(
        &self,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        self.scan_source_cached_keyed(
            vulnman_lang::AnalysisCache::content_key(source),
            source,
            cache,
        )
    }

    /// [`RuleEngine::scan_source_cached`] with a precomputed
    /// [`content_key`](vulnman_lang::AnalysisCache::content_key), so callers
    /// that consult several cache tables for the same sample hash its source
    /// once. Results are identical to [`RuleEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source_cached_keyed(
        &self,
        content_key: u64,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        let program = cache.parse_keyed(content_key, source)?;
        let findings =
            cache.analysis_keyed(content_key, "rule-findings", self.fingerprint(), || {
                self.scan(&program)
            });
        Ok((*findings).clone())
    }
}

// ---------------------------------------------------------------------------
// Taint detector (injection family + tainted memory ops)
// ---------------------------------------------------------------------------

/// Flags source→sink taint flows (SQL/command/XSS/path/format plus tainted
/// `strcpy`/`memcpy`), using the interprocedural engine from `vulnman-lang`.
#[derive(Debug)]
pub struct TaintDetector {
    config: TaintConfig,
}

impl TaintDetector {
    /// Uses the workspace-default source/sink vocabulary.
    pub fn default_config() -> Self {
        TaintDetector { config: TaintConfig::default_config() }
    }

    /// Uses a custom taint vocabulary.
    pub fn with_config(config: TaintConfig) -> Self {
        TaintDetector { config }
    }
}

/// Maps a taint sink category label (the `kind` strings of
/// [`TaintConfig`]) to the CWE class it evidences. `None` for kinds outside
/// the built-in vocabulary (team-specific categories).
///
/// Shared by the static taint-flow detector, the dynamic sanitizer, and the
/// differential oracle so all three views agree on the mapping by
/// construction.
pub fn sink_kind_to_cwe(kind: &str) -> Option<Cwe> {
    Some(match kind {
        "sql" => Cwe::SqlInjection,
        "command" | "injection" => Cwe::CommandInjection,
        "xss" => Cwe::CrossSiteScripting,
        "path" => Cwe::PathTraversal,
        "format" => Cwe::FormatString,
        "memory" => Cwe::OutOfBoundsWrite,
        _ => return None,
    })
}

impl StaticDetector for TaintDetector {
    fn name(&self) -> &'static str {
        "taint-flow"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![
            Cwe::SqlInjection,
            Cwe::CommandInjection,
            Cwe::CrossSiteScripting,
            Cwe::PathTraversal,
            Cwe::FormatString,
            Cwe::OutOfBoundsWrite,
        ]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let analysis = TaintAnalysis::run(program, &self.config);
        analysis
            .findings
            .iter()
            .filter_map(|f| {
                let cwe = sink_kind_to_cwe(&f.sink_kind)?;
                Some(Finding {
                    cwe,
                    function: f.function.clone(),
                    span: f.span,
                    detector: "taint-flow".into(),
                    message: format!(
                        "attacker-controlled data reaches `{}` ({} sink{})",
                        f.call,
                        f.sink_kind,
                        if f.interprocedural { ", via wrapper" } else { "" }
                    ),
                    confidence: Confidence::High,
                    evidence: None,
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Shared statement-flattening helpers
// ---------------------------------------------------------------------------

/// Pre-order flattened view of a function body (source order).
fn flatten(func: &Function) -> Vec<&Stmt> {
    let mut v = Vec::new();
    func.walk_stmts(&mut |s| v.push(s));
    v
}

/// Returns `true` if `expr` (recursively) reads variable `var`.
fn expr_reads(expr: &Expr, var: &str) -> bool {
    expr.read_vars().contains(&var)
}

/// Returns `true` if the statement dereferences/indexes `var` anywhere
/// (read or write through the pointer).
fn stmt_uses_pointer(s: &Stmt, var: &str) -> bool {
    let mut used = false;
    let mut check_expr = |e: &Expr| {
        e.walk(&mut |sub| match &sub.kind {
            ExprKind::Index(base, _) => {
                if let ExprKind::Var(v) = &base.kind {
                    if v == var {
                        used = true;
                    }
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                if let ExprKind::Var(v) = &inner.kind {
                    if v == var {
                        used = true;
                    }
                }
            }
            ExprKind::Call(_, args) => {
                // Passing the pointer to a function counts as a use.
                for a in args {
                    if let ExprKind::Var(v) = &a.kind {
                        if v == var {
                            used = true;
                        }
                    }
                }
            }
            _ => {}
        });
    };
    for e in s.exprs() {
        check_expr(e);
    }
    if let StmtKind::Assign { target, .. } = &s.kind {
        match target {
            LValue::Index(b, _) => {
                if let ExprKind::Var(v) = &b.kind {
                    if v == var {
                        used = true;
                    }
                }
            }
            LValue::Deref(e) => {
                if let ExprKind::Var(v) = &e.kind {
                    if v == var {
                        used = true;
                    }
                }
            }
            LValue::Var(_) => {}
        }
    }
    used
}

/// Returns the call arguments if `expr` contains a call to `name` anywhere.
fn find_call<'a>(expr: &'a Expr, name: &str) -> Option<&'a [Expr]> {
    let mut found: Option<&'a [Expr]> = None;
    expr.walk(&mut |e| {
        if found.is_none() {
            if let ExprKind::Call(n, args) = &e.kind {
                if n == name {
                    found = Some(args.as_slice());
                }
            }
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Bounds detector (CWE-787 loop copies, CWE-125 unchecked reads)
// ---------------------------------------------------------------------------

/// Flags unbounded index writes in loops (CWE-787) and table reads with
/// unvalidated external indices (CWE-125).
#[derive(Debug, Default)]
pub struct BoundsDetector;

impl BoundsDetector {
    fn scan_function(func: &Function, out: &mut Vec<Finding>) {
        let stmts = flatten(func);
        // Arrays declared locally with fixed size.
        let arrays: Vec<&str> = stmts
            .iter()
            .filter_map(|s| match &s.kind {
                StmtKind::Decl { name, ty: Type::Array(_, _), .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();

        // CWE-787: while-loop writing arr[i] where the condition never
        // bounds i from above.
        func.walk_stmts(&mut |s| {
            if let StmtKind::While { cond, body } = &s.kind {
                for inner in body {
                    if let StmtKind::Assign { target: LValue::Index(base, idx), .. } = &inner.kind
                    {
                        let (ExprKind::Var(b), ExprKind::Var(i)) = (&base.kind, &idx.kind) else {
                            continue;
                        };
                        if !arrays.contains(&b.as_str()) {
                            continue;
                        }
                        if !cond_bounds_var(cond, i) {
                            out.push(Finding {
                                cwe: Cwe::OutOfBoundsWrite,
                                function: func.name.to_string(),
                                span: inner.span,
                                detector: "bounds-check".into(),
                                message: format!(
                                    "loop writes `{b}[{i}]` but the loop condition never bounds `{i}`"
                                ),
                                confidence: Confidence::High,
                                evidence: None,
                            });
                        }
                    }
                }
            }
        });

        // CWE-125: arr[idx] read where idx is derived from external input
        // and no earlier branch validates idx.
        let external_indices: Vec<(&str, usize)> = stmts
            .iter()
            .enumerate()
            .filter_map(|(pos, s)| match &s.kind {
                StmtKind::Decl { name, init: Some(init), .. }
                    if find_call(init, "to_int").is_some() =>
                {
                    Some((name.as_str(), pos))
                }
                _ => None,
            })
            .collect();
        for (idx_var, decl_pos) in external_indices {
            for (pos, s) in stmts.iter().enumerate().skip(decl_pos + 1) {
                // A validating branch before the use suppresses the finding.
                if let StmtKind::If { cond, .. } = &s.kind {
                    if expr_reads(cond, idx_var) {
                        break;
                    }
                }
                let mut read = false;
                for e in s.exprs() {
                    e.walk(&mut |sub| {
                        if let ExprKind::Index(base, i) = &sub.kind {
                            if let (ExprKind::Var(b), ExprKind::Var(iv)) = (&base.kind, &i.kind) {
                                if iv == idx_var && arrays.contains(&b.as_str()) {
                                    read = true;
                                }
                            }
                        }
                    });
                }
                if read {
                    out.push(Finding {
                        cwe: Cwe::OutOfBoundsRead,
                        function: func.name.to_string(),
                        span: stmts[pos].span,
                        detector: "bounds-check".into(),
                        message: format!(
                            "external index `{idx_var}` used for table read without validation"
                        ),
                        confidence: Confidence::Medium,
                        evidence: None,
                    });
                    break;
                }
            }
        }
    }
}

/// Returns `true` if `cond` constrains `var` from above (`var < x`,
/// `var <= x`, `x > var`, `x >= var`), anywhere in the condition.
fn cond_bounds_var(cond: &Expr, var: &str) -> bool {
    let mut bounded = false;
    cond.walk(&mut |e| {
        if let ExprKind::Binary(op, l, r) = &e.kind {
            let l_is_var = matches!(&l.kind, ExprKind::Var(v) if v == var);
            let r_is_var = matches!(&r.kind, ExprKind::Var(v) if v == var);
            match op {
                BinOp::Lt | BinOp::Le if l_is_var => bounded = true,
                BinOp::Gt | BinOp::Ge if r_is_var => bounded = true,
                _ => {}
            }
        }
    });
    bounded
}

impl StaticDetector for BoundsDetector {
    fn name(&self) -> &'static str {
        "bounds-check"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![Cwe::OutOfBoundsWrite, Cwe::OutOfBoundsRead]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for f in &program.functions {
            Self::scan_function(f, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Use-after-free detector (CWE-416)
// ---------------------------------------------------------------------------

/// Flags uses of a pointer after `free_mem(p)` in source order.
#[derive(Debug, Default)]
pub struct UseAfterFreeDetector;

impl StaticDetector for UseAfterFreeDetector {
    fn name(&self) -> &'static str {
        "lifetime-order"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![Cwe::UseAfterFree]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for func in &program.functions {
            let stmts = flatten(func);
            for (pos, s) in stmts.iter().enumerate() {
                let freed = s.exprs().iter().find_map(|e| {
                    find_call(e, "free_mem").and_then(|args| match args.first().map(|a| &a.kind) {
                        Some(ExprKind::Var(v)) => Some(v.clone()),
                        _ => None,
                    })
                });
                let Some(var) = freed else { continue };
                for later in stmts.iter().skip(pos + 1) {
                    // Reassignment ends the dangling window.
                    if let StmtKind::Assign { target: LValue::Var(v), .. } = &later.kind {
                        if *v == var {
                            break;
                        }
                    }
                    if stmt_uses_pointer(later, &var) {
                        out.push(Finding {
                            cwe: Cwe::UseAfterFree,
                            function: func.name.to_string(),
                            span: later.span,
                            detector: "lifetime-order".into(),
                            message: format!("`{var}` used after `free_mem({var})`"),
                            confidence: Confidence::High,
                            evidence: None,
                        });
                        break;
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Integer-overflow detector (CWE-190)
// ---------------------------------------------------------------------------

/// Flags external counts multiplied into allocation sizes without a
/// preceding range check.
#[derive(Debug, Default)]
pub struct OverflowDetector;

const EXTERNAL_INT_WRAPPERS: [&str; 1] = ["to_int"];

impl StaticDetector for OverflowDetector {
    fn name(&self) -> &'static str {
        "int-range"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![Cwe::IntegerOverflow]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for func in &program.functions {
            let stmts = flatten(func);
            // counts: var name -> decl position.
            let counts: Vec<(&str, usize)> = stmts
                .iter()
                .enumerate()
                .filter_map(|(pos, s)| match &s.kind {
                    StmtKind::Decl { name, init: Some(init), .. }
                        if EXTERNAL_INT_WRAPPERS.iter().any(|w| find_call(init, w).is_some()) =>
                    {
                        Some((name.as_str(), pos))
                    }
                    _ => None,
                })
                .collect();
            for (count_var, decl_pos) in counts {
                let mut checked = false;
                for (pos, s) in stmts.iter().enumerate().skip(decl_pos + 1) {
                    if let StmtKind::If { cond, .. } = &s.kind {
                        if expr_reads(cond, count_var) {
                            checked = true;
                        }
                    }
                    // total = count * k (either operand order).
                    let mul_target: Option<&str> = match &s.kind {
                        StmtKind::Decl { name, init: Some(init), .. } => {
                            is_mul_of(init, count_var).then_some(name.as_str())
                        }
                        StmtKind::Assign { target: LValue::Var(name), value, .. } => {
                            is_mul_of(value, count_var).then_some(name.as_str())
                        }
                        _ => None,
                    };
                    let Some(total_var) = mul_target else { continue };
                    if checked {
                        break;
                    }
                    // The product must feed an allocation to be dangerous.
                    let feeds_alloc = stmts.iter().skip(pos + 1).any(|later| {
                        later.exprs().iter().any(|e| {
                            find_call(e, "alloc_buffer").is_some_and(|args| {
                                args.first().is_some_and(
                                    |a| matches!(&a.kind, ExprKind::Var(v) if v == total_var),
                                )
                            })
                        })
                    });
                    if feeds_alloc {
                        out.push(Finding {
                            cwe: Cwe::IntegerOverflow,
                            function: func.name.to_string(),
                            span: s.span,
                            detector: "int-range".into(),
                            message: format!(
                                "external count `{count_var}` multiplied into allocation size without range check"
                            ),
                            confidence: Confidence::Medium,
                            evidence: None,
                        });
                    }
                    break;
                }
            }
        }
        out
    }
}

fn is_mul_of(e: &Expr, var: &str) -> bool {
    let mut found = false;
    e.walk(&mut |sub| {
        if let ExprKind::Binary(BinOp::Mul, l, r) = &sub.kind {
            let hit = matches!(&l.kind, ExprKind::Var(v) if v == var)
                || matches!(&r.kind, ExprKind::Var(v) if v == var);
            if hit {
                found = true;
            }
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Null-dereference detector (CWE-476)
// ---------------------------------------------------------------------------

/// Flags maybe-null lookup results used without a null check.
#[derive(Debug, Default)]
pub struct NullDerefDetector;

const MAYBE_NULL_FNS: [&str; 4] = ["find_entry", "lookup_user", "get_config", "find_session"];

impl StaticDetector for NullDerefDetector {
    fn name(&self) -> &'static str {
        "null-guard"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![Cwe::NullDereference]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for func in &program.functions {
            let stmts = flatten(func);
            for (pos, s) in stmts.iter().enumerate() {
                let StmtKind::Decl { name, init: Some(init), .. } = &s.kind else { continue };
                if !MAYBE_NULL_FNS.iter().any(|f| find_call(init, f).is_some()) {
                    continue;
                }
                for later in stmts.iter().skip(pos + 1) {
                    if let StmtKind::If { cond, .. } = &later.kind {
                        if is_null_check(cond, name) {
                            break;
                        }
                    }
                    if stmt_uses_pointer(later, name) {
                        out.push(Finding {
                            cwe: Cwe::NullDereference,
                            function: func.name.to_string(),
                            span: later.span,
                            detector: "null-guard".into(),
                            message: format!("`{name}` may be null here (lookup result unchecked)"),
                            confidence: Confidence::Medium,
                            evidence: None,
                        });
                        break;
                    }
                }
            }
        }
        out
    }
}

fn is_null_check(cond: &Expr, var: &str) -> bool {
    let mut found = false;
    cond.walk(&mut |e| {
        if let ExprKind::Binary(op, l, r) = &e.kind {
            if matches!(op, BinOp::Eq | BinOp::Ne) {
                let var_zero = |a: &Expr, b: &Expr| {
                    matches!(&a.kind, ExprKind::Var(v) if v == var)
                        && matches!(&b.kind, ExprKind::Int(0))
                };
                if var_zero(l, r) || var_zero(r, l) {
                    found = true;
                }
            }
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Hard-coded credential detector (CWE-798)
// ---------------------------------------------------------------------------

/// Flags secret-shaped string literals outside the secret store.
#[derive(Debug, Default)]
pub struct CredentialDetector;

const AUTH_FNS: [&str; 4] = ["connect_service", "authenticate", "open_session", "check_secret"];

/// Heuristic: secret-shaped literals are long, spaceless, path-free, and mix
/// letters with digits.
fn secret_like(s: &str) -> bool {
    s.len() >= 10
        && !s.contains(' ')
        && !s.contains('/')
        && !s.contains('%')
        && s.chars().any(|c| c.is_ascii_digit())
        && s.chars().any(|c| c.is_ascii_alphabetic())
}

impl StaticDetector for CredentialDetector {
    fn name(&self) -> &'static str {
        "secret-scan"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![Cwe::HardcodedCredentials]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for func in &program.functions {
            func.walk_stmts(&mut |s| {
                for root in s.exprs() {
                    root.walk(&mut |e| {
                        if let ExprKind::Call(name, args) = &e.kind {
                            if name == "load_secret" {
                                return; // sanctioned path
                            }
                            let in_auth = AUTH_FNS.contains(&name.as_str());
                            for a in args {
                                if let ExprKind::Str(lit) = &a.kind {
                                    if secret_like(lit) {
                                        out.push(Finding {
                                            cwe: Cwe::HardcodedCredentials,
                                            function: func.name.to_string(),
                                            span: a.span,
                                            detector: "secret-scan".into(),
                                            message: format!(
                                                "secret-shaped literal passed to `{name}`"
                                            ),
                                            confidence: if in_auth {
                                                Confidence::High
                                            } else {
                                                Confidence::Medium
                                            },
                                            evidence: None,
                                        });
                                    }
                                }
                            }
                        }
                    });
                }
                // Declarations initialized with secret-shaped literals.
                if let StmtKind::Decl {
                    init: Some(Expr { kind: ExprKind::Str(lit), span }), ..
                } = &s.kind
                {
                    if secret_like(lit) {
                        out.push(Finding {
                            cwe: Cwe::HardcodedCredentials,
                            function: func.name.to_string(),
                            span: *span,
                            detector: "secret-scan".into(),
                            message: "secret-shaped literal in declaration".to_string(),
                            confidence: Confidence::Medium,
                            evidence: None,
                        });
                    }
                }
            });
        }
        // One finding per (function, literal) is enough.
        out.sort_by_key(|f| (f.function.clone(), f.span.start));
        out.dedup_by_key(|f| (f.function.clone(), f.span.start));
        out
    }
}

// ---------------------------------------------------------------------------
// TOCTOU race detector (CWE-362)
// ---------------------------------------------------------------------------

/// Flags check-then-open patterns on the same path variable.
#[derive(Debug, Default)]
pub struct RaceDetector;

const OPENERS: [&str; 2] = ["open_file", "fopen_path"];

impl StaticDetector for RaceDetector {
    fn name(&self) -> &'static str {
        "toctou"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![Cwe::RaceCondition]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        let mut out = Vec::new();
        for func in &program.functions {
            func.walk_stmts(&mut |s| {
                let StmtKind::If { cond, then_branch, .. } = &s.kind else { return };
                let Some(args) = find_call(cond, "file_exists") else { return };
                let Some(ExprKind::Var(path_var)) = args.first().map(|a| &a.kind) else { return };
                let mut opened = false;
                for inner in then_branch {
                    inner.walk(&mut |t| {
                        for e in t.exprs() {
                            for opener in OPENERS {
                                if let Some(oargs) = find_call(e, opener) {
                                    if oargs.first().is_some_and(
                                        |a| matches!(&a.kind, ExprKind::Var(v) if v == path_var),
                                    ) {
                                        opened = true;
                                    }
                                }
                            }
                        }
                    });
                }
                if opened {
                    out.push(Finding {
                        cwe: Cwe::RaceCondition,
                        function: func.name.to_string(),
                        span: s.span,
                        detector: "toctou".into(),
                        message: format!(
                            "`file_exists({path_var})` check races with the subsequent open"
                        ),
                        confidence: Confidence::Medium,
                        evidence: None,
                    });
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_synth::emit::EmitCtx;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::templates;
    use vulnman_synth::tier::Tier;

    fn scan(src: &str) -> Vec<Finding> {
        RuleEngine::default_suite().scan_source(src).unwrap()
    }

    #[test]
    fn suite_catches_every_template_class_and_passes_fixes() {
        let engine = RuleEngine::default_suite();
        let style = StyleProfile::mainstream();
        // The semantic classes are out of scope by design: their templates
        // exist precisely because no syntactic rule fires on them (see
        // `crate::checkers`).
        for cwe in Cwe::ALL.into_iter().filter(|c| !c.requires_semantic_analysis()) {
            let mut caught = 0;
            let mut clean = 0;
            let n = 6;
            for seed in 0..n {
                let mut rng = StdRng::seed_from_u64(seed * 31 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = templates::generate(cwe, &mut ctx);
                let fv = engine.scan_source(&pair.vulnerable).unwrap();
                let ff = engine.scan_source(&pair.fixed).unwrap();
                if fv.iter().any(|f| f.cwe == cwe && f.function == pair.target_fn) {
                    caught += 1;
                }
                if !ff.iter().any(|f| f.cwe == cwe && f.function == pair.target_fn) {
                    clean += 1;
                }
            }
            assert_eq!(caught, n, "{cwe}: all vulnerable variants must be caught");
            assert_eq!(clean, n, "{cwe}: no fixed variant may be flagged");
        }
    }

    #[test]
    fn bounds_write_detected_and_bounded_loop_clean() {
        let vuln = r#"void f() { char buf[8]; char* s = read_input(); int i = 0; while (s[i] != '\0') { buf[i] = s[i]; i++; } }"#;
        let fixed = r#"void f() { char buf[8]; char* s = read_input(); int i = 0; while (s[i] != '\0' && i < 7) { buf[i] = s[i]; i++; } }"#;
        assert!(scan(vuln).iter().any(|f| f.cwe == Cwe::OutOfBoundsWrite));
        assert!(scan(fixed).iter().all(|f| f.cwe != Cwe::OutOfBoundsWrite));
    }

    #[test]
    fn oob_read_needs_external_index() {
        let internal =
            r#"void f() { int t[4]; init_table(t, 4); int i = 2; int v = t[i]; use(v); }"#;
        assert!(scan(internal).is_empty(), "constant index is fine");
        let external = r#"void f() { int t[4]; init_table(t, 4); int i = to_int(http_param("x")); int v = t[i]; use(v); }"#;
        assert!(scan(external).iter().any(|f| f.cwe == Cwe::OutOfBoundsRead));
    }

    #[test]
    fn uaf_reassignment_clears_window() {
        let ok = r#"void f() { char* p = alloc_buffer(8); free_mem(p); p = alloc_buffer(8); p[0] = 'x'; free_mem(p); }"#;
        assert!(scan(ok).iter().all(|f| f.cwe != Cwe::UseAfterFree), "{:?}", scan(ok));
        let bad = r#"void f() { char* p = alloc_buffer(8); free_mem(p); p[0] = 'x'; }"#;
        assert!(scan(bad).iter().any(|f| f.cwe == Cwe::UseAfterFree));
    }

    #[test]
    fn overflow_requires_alloc_feed() {
        let harmless =
            r#"void f() { int c = to_int(read_input()); int t = c * 8; record_metric("t", t); }"#;
        assert!(scan(harmless).iter().all(|f| f.cwe != Cwe::IntegerOverflow));
        let bad = r#"void f() { int c = to_int(read_input()); int t = c * 8; char* b = alloc_buffer(t); fill_items(b, c); }"#;
        assert!(scan(bad).iter().any(|f| f.cwe == Cwe::IntegerOverflow));
    }

    #[test]
    fn null_check_suppresses() {
        let bad = r#"void f() { char* e = find_entry(3); e[0] = 'x'; }"#;
        assert!(scan(bad).iter().any(|f| f.cwe == Cwe::NullDereference));
        let ok = r#"void f() { char* e = find_entry(3); if (e == 0) { return; } e[0] = 'x'; }"#;
        assert!(scan(ok).iter().all(|f| f.cwe != Cwe::NullDereference));
        let ok2 = r#"void f() { char* e = find_entry(3); if (0 == e) { return; } e[0] = 'x'; }"#;
        assert!(scan(ok2).iter().all(|f| f.cwe != Cwe::NullDereference));
    }

    #[test]
    fn secret_heuristic_ignores_benign_strings() {
        let benign = r#"void f() { log_event("state ok"); char* q = concat("SELECT * FROM users WHERE id = ", "5"); exec_query(escape_sql(q)); char* k = load_secret("billing_api_key"); use(k); }"#;
        assert!(
            scan(benign).iter().all(|f| f.cwe != Cwe::HardcodedCredentials),
            "{:?}",
            scan(benign)
        );
        let bad = r#"void f() { int c = connect_service("x", "sk_live_9aF3xQ81LmZz"); use(c); }"#;
        assert!(scan(bad).iter().any(|f| f.cwe == Cwe::HardcodedCredentials));
    }

    #[test]
    fn toctou_requires_same_variable() {
        let bad = r#"void f(char* p, char* q) { if (file_exists(p)) { int fd = open_file(p); read_all(fd); } }"#;
        assert!(scan(bad).iter().any(|f| f.cwe == Cwe::RaceCondition));
        let different = r#"void f(char* p, char* q) { if (file_exists(p)) { int fd = open_file(q); read_all(fd); } }"#;
        assert!(scan(different).iter().all(|f| f.cwe != Cwe::RaceCondition));
    }

    #[test]
    fn benign_corpus_has_low_false_positive_rate() {
        use vulnman_synth::generator::SampleGenerator;
        let engine = RuleEngine::default_suite();
        let mut g = SampleGenerator::new(99, StyleProfile::mainstream());
        let mut fps = 0;
        let n = 60;
        for _ in 0..n {
            let b = g.benign(Tier::RealWorld, "p");
            if !engine.scan_source(&b.source).unwrap().is_empty() {
                fps += 1;
            }
        }
        assert!(fps <= n / 20, "too many FPs on benign code: {fps}/{n}");
    }

    #[test]
    fn full_suite_includes_dynamic_analysis() {
        let e = RuleEngine::full_suite();
        assert!(e.detector_names().contains(&"dynamic-sanitizer"));
        assert_eq!(
            e.detector_names().len(),
            RuleEngine::default_suite().detector_names().len() + 1
        );
    }

    #[test]
    fn engine_is_extensible() {
        struct Nop;
        impl StaticDetector for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn cwes(&self) -> Vec<Cwe> {
                vec![]
            }
            fn scan(&self, _: &Program) -> Vec<Finding> {
                vec![]
            }
        }
        let mut e = RuleEngine::new();
        e.register(Box::new(Nop));
        assert_eq!(e.detector_names(), vec!["nop"]);
        assert!(e.scan_source("void f() { }").unwrap().is_empty());
    }

    #[test]
    fn findings_sorted_by_position() {
        let src = r#"void f() { char* a = read_input(); system(a); char* e = find_entry(1); e[0] = 'x'; }"#;
        let fs = scan(src);
        assert!(fs.len() >= 2);
        assert!(fs.windows(2).all(|w| w[0].span.start <= w[1].span.start));
    }
}
