//! Differential oracle: static × dynamic × ground-truth disagreement triage.
//!
//! The paper's Gap Observations 1 and 4 are both about *disagreement*:
//! leading models agree on only ~7% of verdicts, and up to 70% of labels in
//! OSS datasets are inaccurate. This module turns that observation into
//! correctness tooling for the platform itself. Every sample is assessed by
//! three fully independent views —
//!
//! 1. the rule-based static suite ([`RuleEngine`]),
//! 2. the sanitizer-instrumented dynamic interpreter ([`DynamicSanitizer`]),
//! 3. the interprocedural taint engine ([`TaintAnalysis`]) mapped through
//!    the shared sink vocabulary ([`sink_kind_to_cwe`]),
//!
//! — and cross-checked against the corpus ground truth. Each per-sample,
//! per-CWE disagreement is classified into a closed taxonomy
//! ([`DisagreementKind`]): a static false positive, a static blind spot, a
//! *documented* dynamic blind spot (the logic classes that cannot fault
//! under single-threaded execution), a label-noise artifact (the recorded
//! label is wrong, by the dataset's own provenance), or an analyzer defect
//! (everything that should never happen: parse failures, a dynamically
//! detectable fault the interpreter missed, a runtime fault in truly clean
//! code, or the taint engine diverging from the static taint-flow detector
//! that wraps the *same* engine).
//!
//! Disagreements that implicate an analyzer can be minimized with a
//! delta-debugging [shrinker](DifferentialOracle::shrink): statements, then
//! whole functions, then sub-expressions are removed greedily, re-checking
//! after every candidate (via the printer↔parser round-trip) that the
//! disagreement signature is preserved *and* that every view which
//! originally reported the CWE still reports it — the evidence-preservation
//! rule that keeps shrinking from collapsing a miss-type disagreement into
//! an empty program. Shrunk reproducers are persisted into the golden
//! corpus under `tests/golden_oracle/` (see [`GoldenCase`]) so every triaged
//! disagreement becomes a permanent regression test.
//!
//! The whole pass is deterministic: per-sample assessment is pure, shards
//! are contiguous chunks joined in order (the same discipline as the
//! workflow engine), so reports are byte-identical across `--jobs` settings.

use crate::detectors::{sink_kind_to_cwe, RuleEngine, StaticDetector};
use crate::dynamic::{dynamically_detectable, DynamicSanitizer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use vulnman_lang::ast::{Expr, ExprKind, LValue, Program, Stmt, StmtKind};
use vulnman_lang::clone::{CloneConfig, CloneIndex};
use vulnman_lang::printer::print_program;
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_lang::AnalysisCache;
use vulnman_obs::Registry;
use vulnman_synth::cwe::Cwe;
use vulnman_synth::sample::Sample;

// ---------------------------------------------------------------------------
// Taxonomy
// ---------------------------------------------------------------------------

/// One of the independent views the oracle cross-checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum View {
    /// The rule-based static suite ([`RuleEngine`]).
    StaticRules,
    /// The sanitizer-instrumented dynamic interpreter ([`DynamicSanitizer`]).
    Dynamic,
    /// The interprocedural taint engine, mapped through the shared sink
    /// vocabulary. A divergence here is always a defect, because the static
    /// taint-flow detector wraps the same engine and configuration.
    TaintEngine,
    /// The label recorded in the dataset (which label noise can corrupt).
    RecordedLabel,
    /// The abstract-interpretation checker suite
    /// ([`SemanticEngine`](crate::checkers::SemanticEngine)). A must-style
    /// prover: silence is expected over-approximation, never a defect.
    Absint,
    /// The clone-class cross-check: verified near-duplicate samples
    /// (MinHash/LSH candidates confirmed by exact Jaccard — see
    /// [`vulnman_lang::clone`]) whose per-view verdicts disagree. Not a
    /// per-source verdict — a corpus-level view over clone classes,
    /// populated by [`DifferentialOracle::run_with_clones`].
    CloneClass,
}

impl View {
    /// Stable kebab-case label used in reports and golden manifests.
    pub fn label(&self) -> &'static str {
        match self {
            View::StaticRules => "static-rules",
            View::Dynamic => "dynamic",
            View::TaintEngine => "taint-engine",
            View::RecordedLabel => "recorded-label",
            View::Absint => "absint",
            View::CloneClass => "clones",
        }
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification of one per-sample, per-CWE disagreement.
///
/// The taxonomy is closed: every disagreement the oracle finds carries
/// exactly one of these kinds, so the report always accounts for 100% of
/// the cross-view deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DisagreementKind {
    /// A static rule fired on a class the ground truth says is absent.
    /// Expected at some rate — static analysis over-approximates.
    StaticFalsePositive,
    /// Ground truth plants a class no static rule detects. Expected for
    /// patterns outside the rule set's reach.
    StaticBlindSpot,
    /// Ground truth plants a logic class that cannot fault under
    /// single-threaded execution (hard-coded credentials, TOCTOU races) —
    /// the dynamic sanitizer's *documented* blind spots, per `dynamic.rs`.
    DynamicBlindSpot,
    /// The recorded dataset label disagrees with the actual ground truth —
    /// explained entirely by the dataset's injected label noise
    /// (Gap Observation 4), not by any analyzer.
    LabelNoiseArtifact,
    /// A contradiction no documented limitation explains: a parse failure,
    /// a dynamically detectable fault the interpreter missed, a runtime
    /// fault observed in truly clean code, or the taint engine diverging
    /// from the static taint-flow detector. These are bugs; CI holds their
    /// count at or below the checked-in baseline.
    AnalyzerDefect,
    /// Ground truth plants a class inside the semantic suite's coverage,
    /// but the abstract-interpretation checkers prove nothing. Expected at
    /// some rate — the checkers are must-style and abstraction loses
    /// precision (e.g. a widened loop index). The detail records whether
    /// the rule suite caught it, making rule-vs-semantic gaps auditable.
    SemanticBlindSpot,
    /// The semantic checkers claim a proof of a class the ground truth says
    /// is absent. For a must-style prover this signals an unsound transfer
    /// function or refinement; tracked separately from
    /// [`DisagreementKind::AnalyzerDefect`] so the precision regression can
    /// be baselined on its own.
    SemanticFalsePositive,
    /// A view reports a class on some members of a verified clone class
    /// but not on others. Near-identical code with divergent verdicts is
    /// the paper's duplication pathology viewed from the analyzer side:
    /// either the corpus carries a vulnerable/fixed near-duplicate pair
    /// (a data-quality fact worth surfacing) or an analysis is unstable
    /// under renaming/layout — both warrant triage, neither is counted
    /// against the analyzer-defect baseline.
    CloneInconsistency,
}

impl DisagreementKind {
    /// Every kind, in report order.
    pub const ALL: [DisagreementKind; 8] = [
        DisagreementKind::StaticFalsePositive,
        DisagreementKind::StaticBlindSpot,
        DisagreementKind::DynamicBlindSpot,
        DisagreementKind::LabelNoiseArtifact,
        DisagreementKind::AnalyzerDefect,
        DisagreementKind::SemanticBlindSpot,
        DisagreementKind::SemanticFalsePositive,
        DisagreementKind::CloneInconsistency,
    ];

    /// Stable kebab-case label used in reports, metrics, and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            DisagreementKind::StaticFalsePositive => "static-false-positive",
            DisagreementKind::StaticBlindSpot => "static-blind-spot",
            DisagreementKind::DynamicBlindSpot => "dynamic-blind-spot",
            DisagreementKind::LabelNoiseArtifact => "label-noise-artifact",
            DisagreementKind::AnalyzerDefect => "analyzer-defect",
            DisagreementKind::SemanticBlindSpot => "semantic-blind-spot",
            DisagreementKind::SemanticFalsePositive => "semantic-false-positive",
            DisagreementKind::CloneInconsistency => "clone-inconsistency",
        }
    }
}

impl fmt::Display for DisagreementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One classified disagreement between a view and the ground truth (or
/// between two views).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Disagreement {
    /// Corpus id of the disagreeing sample (0 for ad-hoc sources).
    pub sample_id: u64,
    /// The CWE class in contention. `None` only for parse-failure defects,
    /// where no per-class verdict exists.
    pub cwe: Option<Cwe>,
    /// The view implicated by the disagreement.
    pub view: View,
    /// Taxonomy classification.
    pub kind: DisagreementKind,
    /// Human-readable explanation.
    pub detail: String,
}

impl Disagreement {
    /// The `(cwe, view, kind)` signature the shrinker must preserve.
    fn signature(&self) -> (Option<Cwe>, View, DisagreementKind) {
        (self.cwe, self.view, self.kind)
    }
}

/// Per-kind disagreement totals.
///
/// A named-field struct (not a map keyed by [`DisagreementKind`]) so the
/// serialized schema is fixed and every count appears even when zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomyCounts {
    /// [`DisagreementKind::StaticFalsePositive`] count.
    pub static_false_positive: usize,
    /// [`DisagreementKind::StaticBlindSpot`] count.
    pub static_blind_spot: usize,
    /// [`DisagreementKind::DynamicBlindSpot`] count.
    pub dynamic_blind_spot: usize,
    /// [`DisagreementKind::LabelNoiseArtifact`] count.
    pub label_noise_artifact: usize,
    /// [`DisagreementKind::AnalyzerDefect`] count.
    pub analyzer_defect: usize,
    /// [`DisagreementKind::SemanticBlindSpot`] count.
    pub semantic_blind_spot: usize,
    /// [`DisagreementKind::SemanticFalsePositive`] count.
    pub semantic_false_positive: usize,
    /// [`DisagreementKind::CloneInconsistency`] count.
    pub clone_inconsistency: usize,
}

impl TaxonomyCounts {
    /// Increments the counter for `kind`.
    pub fn record(&mut self, kind: DisagreementKind) {
        match kind {
            DisagreementKind::StaticFalsePositive => self.static_false_positive += 1,
            DisagreementKind::StaticBlindSpot => self.static_blind_spot += 1,
            DisagreementKind::DynamicBlindSpot => self.dynamic_blind_spot += 1,
            DisagreementKind::LabelNoiseArtifact => self.label_noise_artifact += 1,
            DisagreementKind::AnalyzerDefect => self.analyzer_defect += 1,
            DisagreementKind::SemanticBlindSpot => self.semantic_blind_spot += 1,
            DisagreementKind::SemanticFalsePositive => self.semantic_false_positive += 1,
            DisagreementKind::CloneInconsistency => self.clone_inconsistency += 1,
        }
    }

    /// The count for `kind`.
    pub fn count(&self, kind: DisagreementKind) -> usize {
        match kind {
            DisagreementKind::StaticFalsePositive => self.static_false_positive,
            DisagreementKind::StaticBlindSpot => self.static_blind_spot,
            DisagreementKind::DynamicBlindSpot => self.dynamic_blind_spot,
            DisagreementKind::LabelNoiseArtifact => self.label_noise_artifact,
            DisagreementKind::AnalyzerDefect => self.analyzer_defect,
            DisagreementKind::SemanticBlindSpot => self.semantic_blind_spot,
            DisagreementKind::SemanticFalsePositive => self.semantic_false_positive,
            DisagreementKind::CloneInconsistency => self.clone_inconsistency,
        }
    }

    /// Sum across all kinds.
    pub fn total(&self) -> usize {
        DisagreementKind::ALL.iter().map(|k| self.count(*k)).sum()
    }
}

/// The full, deterministic result of an oracle pass over a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleReport {
    /// Samples assessed.
    pub samples: usize,
    /// Samples on which all views and the ground truth fully agree.
    pub agreed: usize,
    /// Per-kind disagreement totals.
    pub taxonomy: TaxonomyCounts,
    /// Every disagreement, in corpus order (then classification order
    /// within a sample). Identical across `jobs` settings.
    pub disagreements: Vec<Disagreement>,
}

impl OracleReport {
    /// Number of [`DisagreementKind::AnalyzerDefect`] entries — the figure
    /// CI diffs against the committed baseline.
    pub fn analyzer_defects(&self) -> usize {
        self.taxonomy.analyzer_defect
    }

    /// Plain-text taxonomy summary for the CLI.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("differential oracle\n");
        out.push_str(&format!("  {:<24} {}\n", "samples", self.samples));
        out.push_str(&format!("  {:<24} {}\n", "agreed", self.agreed));
        out.push_str(&format!("  {:<24} {}\n", "disagreements", self.disagreements.len()));
        for kind in DisagreementKind::ALL {
            out.push_str(&format!("    {:<22} {}\n", kind.label(), self.taxonomy.count(kind)));
        }
        out
    }
}

/// One shrunk reproducer in the golden disagreement corpus
/// (`tests/golden_oracle/manifest.json`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenCase {
    /// Reproducer source file, relative to the manifest.
    pub file: String,
    /// Corpus id of the original sample.
    pub sample_id: u64,
    /// The CWE class in contention.
    pub cwe: Option<Cwe>,
    /// The implicated view.
    pub view: View,
    /// Taxonomy classification that must reproduce.
    pub kind: DisagreementKind,
    /// Ground-truth class of the original sample (`None` = clean).
    pub truth: Option<Cwe>,
    /// Whether the original sample's recorded label was noise-corrupted.
    pub mislabeled: bool,
    /// Explanation carried over from the original disagreement.
    pub detail: String,
}

/// The golden corpus manifest: every entry re-checked by the regression
/// test `tests/golden_oracle.rs`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenManifest {
    /// All committed reproducers.
    pub cases: Vec<GoldenCase>,
}

/// The checked-in defect ceiling CI diffs a fresh oracle run against
/// (`tests/golden_oracle/baseline.json`). The count is tied to the smoke
/// corpus parameters recorded alongside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectBaseline {
    /// Maximum tolerated [`DisagreementKind::AnalyzerDefect`] count.
    pub analyzer_defects: usize,
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// Execution knobs for [`DifferentialOracle::run`].
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Worker threads for the corpus pass. Reports are byte-identical for
    /// any value.
    pub jobs: usize,
    /// Whether to share a content-addressed [`AnalysisCache`] across views
    /// and shards (identical results either way).
    pub cache: bool,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { jobs: 1, cache: true }
    }
}

/// Pre-registers every `oracle.*` instrument so the exported metrics schema
/// does not depend on which disagreement kinds a particular corpus happens
/// to produce (the same schema-stability pattern as the engine's `fault.*`
/// instruments).
fn register_oracle_instruments(metrics: &Registry) {
    metrics.counter("oracle.samples");
    metrics.counter("oracle.agreed");
    metrics.counter("oracle.disagreements");
    for kind in DisagreementKind::ALL {
        metrics.counter(&format!("oracle.kind.{}", kind.label().replace('-', "_")));
    }
    metrics.counter("oracle.shrunk");
    metrics.histogram("oracle.shrink_steps");
    metrics.histogram("oracle.shrink_attempts");
    metrics.histogram("span.oracle.run");
    metrics.histogram("span.oracle.clone_view");
}

/// Internal per-source verdicts of every view.
#[derive(Debug, Default)]
struct Verdicts {
    /// Set when the source does not parse (all views are then undefined).
    parse_error: Option<String>,
    /// Classes flagged by the full static suite.
    statics: BTreeSet<Cwe>,
    /// Subset of `statics` produced by the taint-flow detector.
    static_taint: BTreeSet<Cwe>,
    /// Classes whose faults the dynamic sanitizer observed.
    dynamics: BTreeSet<Cwe>,
    /// Classes the interprocedural taint engine reports directly.
    taint: BTreeSet<Cwe>,
    /// Classes the abstract-interpretation checker suite proves.
    absints: BTreeSet<Cwe>,
}

impl Verdicts {
    /// Whether `view` reports `cwe` (the recorded label is not a source
    /// verdict and always reads as negative here).
    fn positive(&self, view: View, cwe: Cwe) -> bool {
        match view {
            View::StaticRules => self.statics.contains(&cwe),
            View::Dynamic => self.dynamics.contains(&cwe),
            View::TaintEngine => self.taint.contains(&cwe),
            View::RecordedLabel => false,
            View::Absint => self.absints.contains(&cwe),
            // Not a per-source verdict: clone consistency is a corpus-level
            // property over classes, never evidence on one source.
            View::CloneClass => false,
        }
    }

    /// The verdict set of one evidence view, for cross-member comparison.
    fn view_set(&self, view: View) -> Option<&BTreeSet<Cwe>> {
        match view {
            View::StaticRules => Some(&self.statics),
            View::Dynamic => Some(&self.dynamics),
            View::TaintEngine => Some(&self.taint),
            View::Absint => Some(&self.absints),
            View::RecordedLabel | View::CloneClass => None,
        }
    }
}

/// Result of shrinking one disagreeing sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// Minimized source, printed in canonical form.
    pub source: String,
    /// Accepted reduction steps.
    pub steps: usize,
    /// Candidate reductions tried (accepted + rejected).
    pub attempts: usize,
}

/// Cap on candidate reductions per shrink, so pathological samples cannot
/// stall a triage run. Greedy shrinking of the synthetic corpus's samples
/// converges far below this.
const MAX_SHRINK_ATTEMPTS: usize = 1024;

/// Cross-checks the static suite, the dynamic sanitizer, the taint engine,
/// and ground truth over a corpus, classifying every disagreement.
pub struct DifferentialOracle {
    statics: RuleEngine,
    dynamic: DynamicSanitizer,
    taint: TaintConfig,
    semantics: crate::checkers::SemanticEngine,
    cache: AnalysisCache,
    config: OracleConfig,
    metrics: Registry,
}

impl std::fmt::Debug for DifferentialOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DifferentialOracle").field("config", &self.config).finish()
    }
}

impl Default for DifferentialOracle {
    fn default() -> Self {
        DifferentialOracle::new()
    }
}

impl DifferentialOracle {
    /// Default suite, default config, private metrics registry.
    pub fn new() -> Self {
        DifferentialOracle::with_metrics(OracleConfig::default(), &Registry::new())
    }

    /// Default suite with execution knobs.
    pub fn with_config(config: OracleConfig) -> Self {
        DifferentialOracle::with_metrics(config, &Registry::new())
    }

    /// Default suite reporting through `metrics` under pre-registered
    /// `oracle.*` (and `cache.*`) instrument names.
    pub fn with_metrics(config: OracleConfig, metrics: &Registry) -> Self {
        register_oracle_instruments(metrics);
        let cache = if config.cache {
            AnalysisCache::with_metrics(metrics)
        } else {
            AnalysisCache::disabled_with_metrics(metrics)
        };
        DifferentialOracle {
            statics: RuleEngine::default_suite(),
            dynamic: DynamicSanitizer::new(),
            taint: TaintConfig::default_config(),
            semantics: crate::checkers::SemanticEngine::new(),
            cache,
            config,
            metrics: metrics.clone(),
        }
    }

    /// Runs all views over `source` through `cache`, hashing the source
    /// once for all five memoized views.
    fn verdicts(&self, source: &str, cache: &AnalysisCache) -> Verdicts {
        let key = AnalysisCache::content_key(source);
        let program = match cache.parse_keyed(key, source) {
            Ok(p) => p,
            Err(e) => return Verdicts { parse_error: Some(e.to_string()), ..Verdicts::default() },
        };
        let findings =
            cache.analysis_keyed(key, "rule-findings", self.statics.fingerprint(), || {
                self.statics.scan(&program)
            });
        let statics = findings.iter().map(|f| f.cwe).collect();
        let static_taint =
            findings.iter().filter(|f| f.detector == "taint-flow").map(|f| f.cwe).collect();
        let dynamics = cache.analysis_keyed(key, "oracle-dynamic", 0, || {
            self.dynamic.scan(&program).iter().map(|f| f.cwe).collect::<BTreeSet<Cwe>>()
        });
        let taint = cache.analysis_keyed(key, "oracle-taint", 0, || {
            TaintAnalysis::run(&program, &self.taint)
                .findings
                .iter()
                .filter_map(|f| sink_kind_to_cwe(&f.sink_kind))
                .collect::<BTreeSet<Cwe>>()
        });
        // Same cache kind and fingerprint as `SemanticEngine::
        // scan_source_cached`, so oracle runs and `vulnman lint` share warm
        // entries and a warm pass skips the fixpoint entirely.
        let semantic_findings =
            cache.analysis_keyed(key, "absint-findings", self.semantics.fingerprint(), || {
                self.semantics.analyze(&program).findings
            });
        let absints = semantic_findings.iter().map(|f| f.cwe).collect();
        Verdicts {
            parse_error: None,
            statics,
            static_taint,
            dynamics: (*dynamics).clone(),
            taint: (*taint).clone(),
            absints,
        }
    }

    /// Classifies every disagreement for one source against `truth`
    /// (`Some(c)` = the sample genuinely contains class `c`, `None` =
    /// genuinely clean) using the oracle's shared cache. `mislabeled` is
    /// the dataset's own noise provenance (see `Dataset::mislabeled_ids`).
    pub fn classify_source(
        &self,
        source: &str,
        truth: Option<Cwe>,
        mislabeled: bool,
    ) -> Vec<Disagreement> {
        self.classify(0, source, truth, mislabeled, &self.cache)
    }

    /// [`DifferentialOracle::classify_source`] with the sample's own id,
    /// ground truth, and noise provenance.
    pub fn classify_sample(&self, sample: &Sample) -> Vec<Disagreement> {
        let truth = if sample.label { sample.cwe } else { None };
        self.classify(sample.id, &sample.source, truth, sample.is_mislabeled(), &self.cache)
    }

    fn classify(
        &self,
        sample_id: u64,
        source: &str,
        truth: Option<Cwe>,
        mislabeled: bool,
        cache: &AnalysisCache,
    ) -> Vec<Disagreement> {
        let v = self.verdicts(source, cache);
        let mut out = Vec::new();
        if let Some(err) = &v.parse_error {
            // No view can assess an unparseable unit; the whole sample is
            // one defect (the corpus generator only emits valid mini-C, so
            // a parse failure is a parser or generator bug by definition).
            out.push(Disagreement {
                sample_id,
                cwe: None,
                view: View::StaticRules,
                kind: DisagreementKind::AnalyzerDefect,
                detail: format!("sample does not parse: {err}"),
            });
            if mislabeled {
                out.push(Self::noise_artifact(sample_id, truth));
            }
            return out;
        }
        let mut scope: BTreeSet<Cwe> = BTreeSet::new();
        scope.extend(&v.statics);
        scope.extend(&v.dynamics);
        scope.extend(&v.taint);
        scope.extend(&v.absints);
        scope.extend(truth);
        let semantic_coverage = self.semantics.cwes();
        for cwe in scope {
            let planted = truth == Some(cwe);
            if planted {
                if !v.statics.contains(&cwe) {
                    out.push(Disagreement {
                        sample_id,
                        cwe: Some(cwe),
                        view: View::StaticRules,
                        kind: DisagreementKind::StaticBlindSpot,
                        detail: format!("ground truth plants {cwe} but no static rule fires"),
                    });
                }
                if !v.dynamics.contains(&cwe) {
                    if dynamically_detectable(cwe) {
                        out.push(Disagreement {
                            sample_id,
                            cwe: Some(cwe),
                            view: View::Dynamic,
                            kind: DisagreementKind::AnalyzerDefect,
                            detail: format!(
                                "{cwe} is dynamically detectable but no runtime fault was \
                                 observed"
                            ),
                        });
                    } else {
                        out.push(Disagreement {
                            sample_id,
                            cwe: Some(cwe),
                            view: View::Dynamic,
                            kind: DisagreementKind::DynamicBlindSpot,
                            detail: format!(
                                "{cwe} is a logic class that cannot fault under \
                                 single-threaded execution"
                            ),
                        });
                    }
                }
            } else {
                if v.statics.contains(&cwe) {
                    out.push(Disagreement {
                        sample_id,
                        cwe: Some(cwe),
                        view: View::StaticRules,
                        kind: DisagreementKind::StaticFalsePositive,
                        detail: format!(
                            "static rules flag {cwe} but ground truth is clean for this class"
                        ),
                    });
                }
                if v.dynamics.contains(&cwe) {
                    out.push(Disagreement {
                        sample_id,
                        cwe: Some(cwe),
                        view: View::Dynamic,
                        kind: DisagreementKind::AnalyzerDefect,
                        detail: format!(
                            "runtime fault observed for {cwe} in a sample whose ground truth \
                             is clean for this class"
                        ),
                    });
                }
            }
            // Rule-vs-semantic cross-check. The semantic suite is a
            // must-style prover, so a miss inside its coverage is an
            // expected precision gap (never a defect) and a hit on a
            // clean class questions its soundness; both details record
            // the rule suite's verdict so the gap between syntax and
            // semantics stays auditable per sample.
            if planted && semantic_coverage.contains(&cwe) && !v.absints.contains(&cwe) {
                out.push(Disagreement {
                    sample_id,
                    cwe: Some(cwe),
                    view: View::Absint,
                    kind: DisagreementKind::SemanticBlindSpot,
                    detail: format!(
                        "ground truth plants {cwe} but the semantic checkers prove nothing \
                         (static rules {})",
                        if v.statics.contains(&cwe) { "catch it" } else { "miss it too" }
                    ),
                });
            }
            if !planted && v.absints.contains(&cwe) {
                out.push(Disagreement {
                    sample_id,
                    cwe: Some(cwe),
                    view: View::Absint,
                    kind: DisagreementKind::SemanticFalsePositive,
                    detail: format!(
                        "semantic checkers claim a proof of {cwe} but ground truth is clean \
                         for this class (static rules {})",
                        if v.statics.contains(&cwe) {
                            "agree with the claim"
                        } else {
                            "stay silent"
                        }
                    ),
                });
            }
            // The static taint-flow detector wraps the same engine and
            // configuration as the direct taint view, so any divergence
            // between them is a defect regardless of ground truth.
            if v.taint.contains(&cwe) != v.static_taint.contains(&cwe) {
                out.push(Disagreement {
                    sample_id,
                    cwe: Some(cwe),
                    view: View::TaintEngine,
                    kind: DisagreementKind::AnalyzerDefect,
                    detail: format!(
                        "taint engine and static taint-flow detector diverge on {cwe} despite \
                         sharing engine and configuration"
                    ),
                });
            }
        }
        if mislabeled {
            out.push(Self::noise_artifact(sample_id, truth));
        }
        out
    }

    fn noise_artifact(sample_id: u64, truth: Option<Cwe>) -> Disagreement {
        let detail = match truth {
            Some(cwe) => format!(
                "recorded label says clean but the sample genuinely contains {cwe} \
                 (injected label noise)"
            ),
            None => "recorded label says vulnerable but the sample is genuinely clean \
                     (injected label noise)"
                .to_string(),
        };
        Disagreement {
            sample_id,
            cwe: truth,
            view: View::RecordedLabel,
            kind: DisagreementKind::LabelNoiseArtifact,
            detail,
        }
    }

    /// Assesses every sample, preserving corpus order regardless of `jobs`.
    fn assess_all(&self, samples: &[Sample]) -> Vec<Vec<Disagreement>> {
        let jobs = self.config.jobs.max(1);
        if jobs == 1 || samples.len() <= 1 {
            return samples.iter().map(|s| self.classify_sample(s)).collect();
        }
        // Contiguous chunks joined in spawn order: the same determinism
        // discipline as the workflow engine's sharded path.
        let chunk = samples.len().div_ceil(jobs);
        let mut out = Vec::with_capacity(samples.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = samples
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        slice.iter().map(|s| self.classify_sample(s)).collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("oracle shard panicked"));
            }
        });
        out
    }

    /// Runs the full differential pass over a corpus.
    ///
    /// Deterministic: the report is byte-identical across `jobs` and cache
    /// settings for a fixed corpus.
    pub fn run(&self, samples: &[Sample]) -> OracleReport {
        let span = self.metrics.span("oracle.run");
        let per_sample = self.assess_all(samples);
        let mut taxonomy = TaxonomyCounts::default();
        let mut disagreements = Vec::new();
        let mut agreed = 0usize;
        for sample_result in per_sample {
            if sample_result.is_empty() {
                agreed += 1;
            }
            for d in sample_result {
                taxonomy.record(d.kind);
                disagreements.push(d);
            }
        }
        self.metrics.counter("oracle.samples").add(samples.len() as u64);
        self.metrics.counter("oracle.agreed").add(agreed as u64);
        self.metrics.counter("oracle.disagreements").add(disagreements.len() as u64);
        for kind in DisagreementKind::ALL {
            self.metrics
                .counter(&format!("oracle.kind.{}", kind.label().replace('-', "_")))
                .add(taxonomy.count(kind) as u64);
        }
        drop(span);
        OracleReport { samples: samples.len(), agreed, taxonomy, disagreements }
    }

    /// [`DifferentialOracle::run`] plus the sixth, corpus-level `clones`
    /// view: verified near-duplicate clone classes whose members get
    /// *different* verdicts from the same evidence view. A view that flags a
    /// CWE on one member of a clone class but stays silent on an
    /// alpha-renamed near-clone is sensitive to surface spelling rather than
    /// structure — a robustness defect no per-sample cross-check can see.
    ///
    /// Clone inconsistencies are appended after the per-sample
    /// disagreements; `agreed` keeps its per-sample meaning (class-level
    /// observations don't demote a sample from "all views agreed").
    /// Deterministic: classes in submission order, views and CWEs in fixed
    /// order.
    pub fn run_with_clones(&self, samples: &[Sample]) -> OracleReport {
        let mut report = self.run(samples);
        let clones = self.clone_view(samples);
        self.metrics.counter("oracle.disagreements").add(clones.len() as u64);
        self.metrics.counter("oracle.kind.clone_inconsistency").add(clones.len() as u64);
        for d in clones {
            report.taxonomy.record(d.kind);
            report.disagreements.push(d);
        }
        report
    }

    /// The clone-class cross-check behind
    /// [`DifferentialOracle::run_with_clones`]: one [`Disagreement`] per
    /// `(class, view, CWE)` where members of a verified clone class split
    /// positive/negative.
    fn clone_view(&self, samples: &[Sample]) -> Vec<Disagreement> {
        let span = self.metrics.span("oracle.clone_view");
        let sources: Vec<(u64, &str)> =
            samples.iter().enumerate().map(|(i, s)| (i as u64, s.source.as_str())).collect();
        let index = CloneIndex::build(&sources, CloneConfig::default());
        let mut out = Vec::new();
        for class in index.classes() {
            if class.len() < 2 {
                continue;
            }
            let members: Vec<&Sample> =
                class.iter().map(|&e| &samples[index.entries()[e as usize].id as usize]).collect();
            // Parse failures have no view verdicts to compare; they are
            // already surfaced per-sample as analyzer defects.
            let verdicts: Vec<(&Sample, Verdicts)> = members
                .iter()
                .map(|s| (*s, self.verdicts(&s.source, &self.cache)))
                .filter(|(_, v)| v.parse_error.is_none())
                .collect();
            if verdicts.len() < 2 {
                continue;
            }
            for view in [View::StaticRules, View::Dynamic, View::TaintEngine, View::Absint] {
                let union: BTreeSet<Cwe> = verdicts
                    .iter()
                    .flat_map(|(_, v)| v.view_set(view).into_iter().flatten().copied())
                    .collect();
                for cwe in union {
                    let (mut hits, mut misses) = (Vec::new(), Vec::new());
                    for (s, v) in &verdicts {
                        if v.view_set(view).is_some_and(|set| set.contains(&cwe)) {
                            hits.push(s.id);
                        } else {
                            misses.push(s.id);
                        }
                    }
                    if hits.is_empty() || misses.is_empty() {
                        continue;
                    }
                    out.push(Disagreement {
                        sample_id: verdicts[0].0.id,
                        cwe: Some(cwe),
                        view: View::CloneClass,
                        kind: DisagreementKind::CloneInconsistency,
                        detail: format!(
                            "{} reports {:?} on clone-class members {:?} but not on \
                             near-clones {:?}; verdicts within a verified clone class \
                             should agree",
                            view.label(),
                            cwe,
                            hits,
                            misses
                        ),
                    });
                }
            }
        }
        drop(span);
        out
    }

    // -----------------------------------------------------------------------
    // Shrinker
    // -----------------------------------------------------------------------

    /// Delta-debugs `source` down to a minimal reproducer of `d`.
    ///
    /// Greedily removes statements (innermost-first within each sweep),
    /// then whole functions, then simplifies sub-expressions (binary →
    /// left operand, unary/index/call → inner operand), re-validating every
    /// candidate through the printer↔parser round-trip. A candidate is
    /// accepted only if
    ///
    /// 1. it still parses,
    /// 2. re-classification (same truth and noise provenance) still yields
    ///    a disagreement with `d`'s `(cwe, view, kind)` signature, and
    /// 3. every view that reported the CWE on the original source still
    ///    reports it — the *evidence-preservation* rule. Without it, a
    ///    miss-type disagreement (e.g. a blind spot, where the interesting
    ///    behavior is a view staying silent) would shrink to a trivial
    ///    empty program.
    ///
    /// Returns `None` when the disagreement has no shrinkable evidence: the
    /// source does not parse, the disagreement is a label-noise artifact
    /// (nothing in the source encodes the recorded label), or no view
    /// reports the CWE at all (truth is an external annotation, so the
    /// predicate would be vacuous).
    pub fn shrink(
        &self,
        source: &str,
        d: &Disagreement,
        truth: Option<Cwe>,
        mislabeled: bool,
    ) -> Option<ShrinkOutcome> {
        let cwe = d.cwe?;
        if d.kind == DisagreementKind::LabelNoiseArtifact
            || d.kind == DisagreementKind::CloneInconsistency
            || d.view == View::RecordedLabel
            || d.view == View::CloneClass
        {
            // Label-noise artifacts and clone inconsistencies are corpus-level
            // observations; no single source encodes the evidence.
            return None;
        }
        // Candidates are one-shot sources; memoizing them would only grow
        // the main cache, so shrinking runs against a pass-through cache.
        let scratch = AnalysisCache::disabled_with_metrics(&Registry::noop());
        let original = self.verdicts(source, &scratch);
        if original.parse_error.is_some() {
            return None;
        }
        let evidence: Vec<View> =
            [View::StaticRules, View::Dynamic, View::TaintEngine, View::Absint]
                .into_iter()
                .filter(|view| original.positive(*view, cwe))
                .collect();
        if evidence.is_empty() {
            return None;
        }
        let signature = d.signature();
        let holds = |candidate: &str| -> bool {
            let v = self.verdicts(candidate, &scratch);
            if v.parse_error.is_some() {
                return false;
            }
            if !evidence.iter().all(|view| v.positive(*view, cwe)) {
                return false;
            }
            self.classify(d.sample_id, candidate, truth, mislabeled, &scratch)
                .iter()
                .any(|c| c.signature() == signature)
        };

        let mut program = (*self.cache.parse(source).ok()?).clone();
        // Normalize through the printer first; if canonical form already
        // loses the disagreement, the round-trip invariant is broken and
        // shrinking would chase a moving target.
        if !holds(&print_program(&program)) {
            return None;
        }
        let mut steps = 0usize;
        let mut attempts = 0usize;
        loop {
            let mut progressed = false;
            // Pass 1: statement removal, restarting after each acceptance
            // (indices shift as statements disappear).
            'stmts: loop {
                let slots = stmt_slots(&mut program);
                for target in 0..slots {
                    if attempts >= MAX_SHRINK_ATTEMPTS {
                        break 'stmts;
                    }
                    let mut candidate = program.clone();
                    if !remove_stmt(&mut candidate, target) {
                        continue;
                    }
                    attempts += 1;
                    if holds(&print_program(&candidate)) {
                        program = candidate;
                        steps += 1;
                        progressed = true;
                        continue 'stmts;
                    }
                }
                break;
            }
            // Pass 2: whole-function removal.
            'funcs: loop {
                for idx in 0..program.functions.len() {
                    if attempts >= MAX_SHRINK_ATTEMPTS {
                        break 'funcs;
                    }
                    let mut candidate = program.clone();
                    candidate.functions.remove(idx);
                    attempts += 1;
                    if holds(&print_program(&candidate)) {
                        program = candidate;
                        steps += 1;
                        progressed = true;
                        continue 'funcs;
                    }
                }
                break;
            }
            // Pass 3: expression simplification.
            'exprs: loop {
                let slots = expr_slots(&mut program);
                for target in 0..slots {
                    if attempts >= MAX_SHRINK_ATTEMPTS {
                        break 'exprs;
                    }
                    let mut candidate = program.clone();
                    if !simplify_expr_at(&mut candidate, target) {
                        continue;
                    }
                    attempts += 1;
                    if holds(&print_program(&candidate)) {
                        program = candidate;
                        steps += 1;
                        progressed = true;
                        continue 'exprs;
                    }
                }
                break;
            }
            if !progressed || attempts >= MAX_SHRINK_ATTEMPTS {
                break;
            }
        }
        self.metrics.counter("oracle.shrunk").inc();
        self.metrics.histogram("oracle.shrink_steps").observe(steps as u64);
        self.metrics.histogram("oracle.shrink_attempts").observe(attempts as u64);
        Some(ShrinkOutcome { source: print_program(&program), steps, attempts })
    }
}

// ---------------------------------------------------------------------------
// Shrinker AST surgery
// ---------------------------------------------------------------------------

/// Removes the `target`-th removable statement (pre-order over vector
/// bodies, including nested branches and loop bodies). With
/// `target = usize::MAX` this is a pure statement count via `counter`.
fn remove_stmt_in(stmts: &mut Vec<Stmt>, counter: &mut usize, target: usize) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        if *counter == target {
            stmts.remove(i);
            return true;
        }
        *counter += 1;
        let removed_nested = match &mut stmts[i].kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                remove_stmt_in(then_branch, counter, target)
                    || else_branch.as_mut().is_some_and(|els| remove_stmt_in(els, counter, target))
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                remove_stmt_in(body, counter, target)
            }
            _ => false,
        };
        if removed_nested {
            return true;
        }
        i += 1;
    }
    false
}

fn remove_stmt(program: &mut Program, target: usize) -> bool {
    let mut counter = 0;
    for f in &mut program.functions {
        if remove_stmt_in(&mut f.body, &mut counter, target) {
            return true;
        }
    }
    false
}

/// Number of statement-removal slots (uses the never-matching target).
fn stmt_slots(program: &mut Program) -> usize {
    let mut counter = 0;
    for f in &mut program.functions {
        remove_stmt_in(&mut f.body, &mut counter, usize::MAX);
    }
    counter
}

/// Simplifies the `target`-th simplifiable expression node: a binary op is
/// replaced by its left operand, unary/index by the inner operand, and a
/// call by its first argument. With `target = usize::MAX` this is a pure
/// count via `counter`.
fn simplify_expr_in(e: &mut Expr, counter: &mut usize, target: usize) -> bool {
    let simplifiable =
        matches!(&e.kind, ExprKind::Unary(..) | ExprKind::Binary(..) | ExprKind::Index(..))
            || matches!(&e.kind, ExprKind::Call(_, args) if !args.is_empty());
    if simplifiable {
        if *counter == target {
            let replacement = match &mut e.kind {
                ExprKind::Unary(_, inner) => std::mem::replace(&mut **inner, Expr::int(0)),
                ExprKind::Binary(_, left, _) => std::mem::replace(&mut **left, Expr::int(0)),
                ExprKind::Index(base, _) => std::mem::replace(&mut **base, Expr::int(0)),
                ExprKind::Call(_, args) => args.remove(0),
                _ => unreachable!("guarded by `simplifiable`"),
            };
            *e = replacement;
            return true;
        }
        *counter += 1;
    }
    match &mut e.kind {
        ExprKind::Unary(_, inner) => simplify_expr_in(inner, counter, target),
        ExprKind::Binary(_, left, right) => {
            simplify_expr_in(left, counter, target) || simplify_expr_in(right, counter, target)
        }
        ExprKind::Index(base, index) => {
            simplify_expr_in(base, counter, target) || simplify_expr_in(index, counter, target)
        }
        ExprKind::Call(_, args) => {
            for a in args {
                if simplify_expr_in(a, counter, target) {
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

fn simplify_in_stmt(stmt: &mut Stmt, counter: &mut usize, target: usize) -> bool {
    match &mut stmt.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                if simplify_expr_in(e, counter, target) {
                    return true;
                }
            }
            false
        }
        StmtKind::Assign { target: lvalue, value, .. } => {
            let lvalue_exprs: Vec<&mut Expr> = match lvalue {
                LValue::Var(_) => Vec::new(),
                LValue::Deref(e) => vec![e],
                LValue::Index(base, index) => vec![base, index],
            };
            for e in lvalue_exprs {
                if simplify_expr_in(e, counter, target) {
                    return true;
                }
            }
            simplify_expr_in(value, counter, target)
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            if simplify_expr_in(cond, counter, target) {
                return true;
            }
            if simplify_in_stmts(then_branch, counter, target) {
                return true;
            }
            if let Some(els) = else_branch {
                if simplify_in_stmts(els, counter, target) {
                    return true;
                }
            }
            false
        }
        StmtKind::While { cond, body } => {
            simplify_expr_in(cond, counter, target) || simplify_in_stmts(body, counter, target)
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(s) = init {
                if simplify_in_stmt(s, counter, target) {
                    return true;
                }
            }
            if let Some(e) = cond {
                if simplify_expr_in(e, counter, target) {
                    return true;
                }
            }
            if let Some(s) = step {
                if simplify_in_stmt(s, counter, target) {
                    return true;
                }
            }
            simplify_in_stmts(body, counter, target)
        }
        StmtKind::Return(Some(e)) | StmtKind::Expr(e) => simplify_expr_in(e, counter, target),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => false,
    }
}

fn simplify_in_stmts(stmts: &mut [Stmt], counter: &mut usize, target: usize) -> bool {
    for s in stmts {
        if simplify_in_stmt(s, counter, target) {
            return true;
        }
    }
    false
}

fn simplify_expr_at(program: &mut Program, target: usize) -> bool {
    let mut counter = 0;
    for f in &mut program.functions {
        if simplify_in_stmts(&mut f.body, &mut counter, target) {
            return true;
        }
    }
    false
}

/// Number of expression-simplification slots (never-matching target).
fn expr_slots(program: &mut Program) -> usize {
    let mut counter = 0;
    for f in &mut program.functions {
        simplify_in_stmts(&mut f.body, &mut counter, usize::MAX);
    }
    counter
}

#[cfg(test)]
mod tests {
    use super::*;
    use vulnman_synth::dataset::DatasetBuilder;

    const CLEAN: &str = "int add(int a, int b) { return a + b; }";
    const SQLI: &str = r#"void handler() {
        int a = 1;
        int b = 2;
        char* id = http_param("id");
        if (a < b) { a = b; }
        exec_query(id);
    }"#;

    fn find(ds: &[Disagreement], kind: DisagreementKind) -> Vec<&Disagreement> {
        ds.iter().filter(|d| d.kind == kind).collect()
    }

    #[test]
    fn clean_sample_fully_agrees() {
        let oracle = DifferentialOracle::new();
        assert!(oracle.classify_source(CLEAN, None, false).is_empty());
    }

    #[test]
    fn static_false_positive_on_credential_literal() {
        // The credential detector fires on the literal; ground truth says
        // clean; the logic class cannot fault at runtime, so the only
        // disagreement is the static false positive.
        let oracle = DifferentialOracle::new();
        let src = r#"void setup() { char* password = "s3cr3tPassw0rd"; connect_db(password); }"#;
        let ds = oracle.classify_source(src, None, false);
        let fps = find(&ds, DisagreementKind::StaticFalsePositive);
        assert_eq!(fps.len(), 1, "{ds:?}");
        assert_eq!(fps[0].cwe, Some(Cwe::HardcodedCredentials));
        assert_eq!(fps[0].view, View::StaticRules);
        assert_eq!(ds.len(), 1, "no other kind applies: {ds:?}");
    }

    #[test]
    fn blind_spots_on_a_missed_logic_class() {
        // Ground truth plants a race no analyzer sees: the static miss is a
        // blind spot, and the dynamic miss is the *documented* blind spot,
        // not a defect.
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(CLEAN, Some(Cwe::RaceCondition), false);
        assert_eq!(ds.len(), 2, "{ds:?}");
        assert_eq!(find(&ds, DisagreementKind::StaticBlindSpot).len(), 1);
        assert_eq!(find(&ds, DisagreementKind::DynamicBlindSpot).len(), 1);
        assert_eq!(find(&ds, DisagreementKind::AnalyzerDefect).len(), 0);
    }

    #[test]
    fn missed_detectable_class_is_a_defect() {
        // If ground truth plants SQL injection and the interpreter observes
        // nothing, that is *not* a documented blind spot — it is a defect.
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(CLEAN, Some(Cwe::SqlInjection), false);
        let defects = find(&ds, DisagreementKind::AnalyzerDefect);
        assert_eq!(defects.len(), 1, "{ds:?}");
        assert_eq!(defects[0].view, View::Dynamic);
        assert_eq!(defects[0].cwe, Some(Cwe::SqlInjection));
    }

    #[test]
    fn label_noise_is_its_own_artifact() {
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(CLEAN, None, true);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].kind, DisagreementKind::LabelNoiseArtifact);
        assert_eq!(ds[0].view, View::RecordedLabel);
    }

    #[test]
    fn parse_failure_is_a_defect_with_no_class() {
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source("int f( {", None, false);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].kind, DisagreementKind::AnalyzerDefect);
        assert_eq!(ds[0].cwe, None);
    }

    #[test]
    fn true_vulnerable_sample_with_agreeing_views_is_agreement() {
        // All three source views and ground truth say SQL injection: no
        // disagreement at all.
        let oracle = DifferentialOracle::new();
        let src = r#"void f() { char* id = http_param("id"); exec_query(id); }"#;
        let ds = oracle.classify_source(src, Some(Cwe::SqlInjection), false);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn report_is_identical_across_jobs_and_cache_settings() {
        let corpus = DatasetBuilder::new(42)
            .vulnerable_count(16)
            .vulnerable_fraction(0.4)
            .label_noise(0.1)
            .build();
        let baseline = DifferentialOracle::with_config(OracleConfig { jobs: 1, cache: true })
            .run(corpus.samples());
        for (jobs, cache) in [(4, true), (1, false), (4, false)] {
            let report =
                DifferentialOracle::with_config(OracleConfig { jobs, cache }).run(corpus.samples());
            assert_eq!(report, baseline, "jobs={jobs} cache={cache}");
        }
        assert_eq!(baseline.samples, corpus.samples().len());
        assert_eq!(baseline.taxonomy.total(), baseline.disagreements.len());
    }

    #[test]
    fn every_noise_corrupted_sample_carries_an_artifact() {
        let corpus = DatasetBuilder::new(7)
            .vulnerable_count(20)
            .vulnerable_fraction(0.5)
            .label_noise(0.2)
            .build();
        let report = DifferentialOracle::new().run(corpus.samples());
        let noisy: BTreeSet<u64> = report
            .disagreements
            .iter()
            .filter(|d| d.kind == DisagreementKind::LabelNoiseArtifact)
            .map(|d| d.sample_id)
            .collect();
        let expected: BTreeSet<u64> =
            corpus.samples().iter().filter(|s| s.is_mislabeled()).map(|s| s.id).collect();
        assert_eq!(noisy, expected);
    }

    #[test]
    fn summary_table_names_every_kind() {
        let report = DifferentialOracle::new().run(&[]);
        let table = report.summary_table();
        for kind in DisagreementKind::ALL {
            assert!(table.contains(kind.label()), "{table}");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let corpus = DatasetBuilder::new(3).vulnerable_count(6).vulnerable_fraction(0.5).build();
        let report = DifferentialOracle::new().run(corpus.samples());
        let json = serde_json::to_string(&report).unwrap();
        let back: OracleReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn shrinker_minimizes_a_false_positive_to_its_core_flow() {
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(SQLI, None, false);
        let d = find(&ds, DisagreementKind::StaticFalsePositive)
            .into_iter()
            .find(|d| d.cwe == Some(Cwe::SqlInjection))
            .expect("static suite flags the flow")
            .clone();
        let shrunk = oracle.shrink(SQLI, &d, None, false).expect("shrinkable");
        assert!(shrunk.steps > 0, "junk statements must be removed: {shrunk:?}");
        assert!(shrunk.source.len() < SQLI.len());
        assert!(shrunk.source.contains("http_param"), "source kept: {}", shrunk.source);
        assert!(shrunk.source.contains("exec_query"), "sink kept: {}", shrunk.source);
        assert!(!shrunk.source.contains("int a"), "junk dropped: {}", shrunk.source);
        // The minimized form still reproduces the exact disagreement.
        let again = oracle.classify_source(&shrunk.source, None, false);
        assert!(
            again.iter().any(|c| c.cwe == d.cwe && c.view == d.view && c.kind == d.kind),
            "{again:?}"
        );
    }

    #[test]
    fn shrinker_is_deterministic() {
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(SQLI, None, false);
        let d =
            ds.iter().find(|d| d.kind == DisagreementKind::StaticFalsePositive).unwrap().clone();
        let a = oracle.shrink(SQLI, &d, None, false).unwrap();
        let b = oracle.shrink(SQLI, &d, None, false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shrinker_refuses_evidence_free_disagreements() {
        // Truth is an external annotation; with no view positive there is
        // nothing in the source to preserve, and shrinking would degenerate
        // to an empty program.
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(CLEAN, Some(Cwe::RaceCondition), false);
        for d in &ds {
            assert!(oracle.shrink(CLEAN, d, Some(Cwe::RaceCondition), false).is_none(), "{d:?}");
        }
    }

    #[test]
    fn shrinker_refuses_label_noise_artifacts() {
        let oracle = DifferentialOracle::new();
        let ds = oracle.classify_source(SQLI, None, true);
        let noise = ds.iter().find(|d| d.kind == DisagreementKind::LabelNoiseArtifact).unwrap();
        assert!(oracle.shrink(SQLI, noise, None, true).is_none());
    }

    #[test]
    fn oracle_instruments_are_schema_stable() {
        let metrics = Registry::new();
        let _ = DifferentialOracle::with_metrics(OracleConfig::default(), &metrics);
        let snapshot = metrics.snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        for key in [
            "oracle.samples",
            "oracle.agreed",
            "oracle.disagreements",
            "oracle.kind.static_false_positive",
            "oracle.kind.static_blind_spot",
            "oracle.kind.dynamic_blind_spot",
            "oracle.kind.label_noise_artifact",
            "oracle.kind.analyzer_defect",
            "oracle.kind.semantic_blind_spot",
            "oracle.kind.semantic_false_positive",
            "oracle.kind.clone_inconsistency",
            "oracle.shrunk",
            "oracle.shrink_steps",
            "oracle.shrink_attempts",
        ] {
            assert!(json.contains(key), "{key} must be pre-registered");
        }
    }

    fn clone_sample(id: u64, source: &str, cwe: Option<Cwe>) -> Sample {
        Sample {
            id,
            source: source.into(),
            label: cwe.is_some(),
            observed_label: cwe.is_some(),
            cwe,
            target_fn: String::new(),
            team: "test".into(),
            project: "test".into(),
            tier: vulnman_synth::tier::Tier::Curated,
            duplicate_of: None,
            artifacts: Default::default(),
        }
    }

    #[test]
    fn clones_view_flags_spelling_sensitive_verdicts() {
        // Structurally identical near-clones where only the *callee name*
        // differs: the token shingles normalize identifiers, so the pair is
        // a verified clone class, but every name-keyed view flags the
        // `exec_query` member and stays silent on the `run_query` one —
        // exactly the spelling sensitivity the clones view exists to catch.
        let flagged = r#"void f() { char* id = http_param("id"); exec_query(id); }"#;
        let silent = r#"void f() { char* id = http_param("id"); run_query(id); }"#;
        let samples =
            [clone_sample(1, flagged, Some(Cwe::SqlInjection)), clone_sample(2, silent, None)];
        let oracle = DifferentialOracle::new();
        let report = oracle.run_with_clones(&samples);
        let clones: Vec<_> = report
            .disagreements
            .iter()
            .filter(|d| d.kind == DisagreementKind::CloneInconsistency)
            .collect();
        assert!(!clones.is_empty(), "{report:?}");
        assert_eq!(report.taxonomy.clone_inconsistency, clones.len());
        assert_eq!(report.taxonomy.total(), report.disagreements.len());
        for d in &clones {
            assert_eq!(d.view, View::CloneClass);
            assert_eq!(d.cwe, Some(Cwe::SqlInjection));
            assert!(d.detail.contains("[1]") && d.detail.contains("[2]"), "{}", d.detail);
        }
        // The plain run never produces the corpus-level kind.
        assert_eq!(oracle.run(&samples).taxonomy.clone_inconsistency, 0);
    }

    #[test]
    fn clones_view_is_silent_when_clone_members_agree() {
        // Exact duplicates: every view gives both members the same verdicts,
        // so the clone class yields no inconsistency and `run_with_clones`
        // degenerates to `run`.
        let samples = [
            clone_sample(1, SQLI, Some(Cwe::SqlInjection)),
            clone_sample(2, SQLI, Some(Cwe::SqlInjection)),
        ];
        let oracle = DifferentialOracle::new();
        let with = oracle.run_with_clones(&samples);
        assert_eq!(with.taxonomy.clone_inconsistency, 0, "{with:?}");
        assert_eq!(with, oracle.run(&samples));
    }

    #[test]
    fn clones_report_is_deterministic_and_round_trips() {
        let flagged = r#"void f() { char* id = http_param("id"); exec_query(id); }"#;
        let silent = r#"void f() { char* id = http_param("id"); run_query(id); }"#;
        let samples = [
            clone_sample(1, flagged, Some(Cwe::SqlInjection)),
            clone_sample(2, silent, None),
            clone_sample(3, CLEAN, None),
        ];
        let a = DifferentialOracle::new().run_with_clones(&samples);
        let b = DifferentialOracle::with_config(OracleConfig { jobs: 4, cache: false })
            .run_with_clones(&samples);
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
        let back: OracleReport = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn clone_inconsistencies_refuse_to_shrink() {
        let flagged = r#"void f() { char* id = http_param("id"); exec_query(id); }"#;
        let silent = r#"void f() { char* id = http_param("id"); run_query(id); }"#;
        let samples =
            [clone_sample(1, flagged, Some(Cwe::SqlInjection)), clone_sample(2, silent, None)];
        let oracle = DifferentialOracle::new();
        let report = oracle.run_with_clones(&samples);
        let d = report
            .disagreements
            .iter()
            .find(|d| d.kind == DisagreementKind::CloneInconsistency)
            .expect("clone inconsistency present");
        assert!(oracle.shrink(flagged, d, Some(Cwe::SqlInjection), false).is_none());
    }

    #[test]
    fn statement_surgery_is_counter_indexed() {
        let src = "void f() { int a = 1; if (a) { int b = 2; } return; }";
        let mut p = vulnman_lang::parse(src).unwrap();
        assert_eq!(stmt_slots(&mut p), 4);
        let mut q = p.clone();
        assert!(remove_stmt(&mut q, 2), "nested statement is addressable");
        assert_eq!(stmt_slots(&mut q), 3);
        assert!(!remove_stmt(&mut p.clone(), 99));
    }

    #[test]
    fn expression_surgery_is_counter_indexed() {
        let src = "int f(int a) { return g(a + 1); }";
        let mut p = vulnman_lang::parse(src).unwrap();
        // Two simplifiable nodes: the call and the binary inside it.
        assert_eq!(expr_slots(&mut p), 2);
        let mut q = p.clone();
        assert!(simplify_expr_at(&mut q, 0), "call collapses to its argument");
        assert!(!print_program(&q).contains("g("));
        assert!(print_program(&q).contains("a + 1"));
    }
}
