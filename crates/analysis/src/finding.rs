//! Findings reported by static detectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use vulnman_lang::Span;
use vulnman_synth::cwe::Cwe;

/// Confidence a detector attaches to a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Confidence {
    /// Heuristic match; expect false positives.
    Low,
    /// Pattern match with supporting context.
    Medium,
    /// Data-flow-confirmed or structurally certain.
    High,
}

/// One abstract fact backing a semantic finding: a variable and its
/// abstract value at the report point, rendered by the domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceFact {
    /// Variable the fact is about.
    pub var: String,
    /// The domain's rendering of the abstract value (e.g. `[33, 33]`,
    /// `maybe-null`).
    pub value: String,
}

/// Machine-checkable evidence for a semantic (abstract-interpretation)
/// finding: the abstract state at the report point plus the claim the
/// checker derived from it. Re-running the named domain to the same program
/// point must reproduce every fact — that is what "machine-checkable"
/// means here, and what the differential oracle exploits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    /// Name of the abstract domain that proved the claim.
    pub domain: String,
    /// The abstract facts (variable states) at the report point.
    pub facts: Vec<EvidenceFact>,
    /// The checker's conclusion drawn from the facts.
    pub claim: String,
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} domain: {}", self.domain, self.claim)?;
        for fact in &self.facts {
            write!(f, "; {} = {}", fact.var, fact.value)?;
        }
        Ok(())
    }
}

/// A single static-analysis finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Vulnerability class.
    pub cwe: Cwe,
    /// Function the finding is located in.
    pub function: String,
    /// Source location of the flagged construct.
    pub span: Span,
    /// Name of the detector that produced this finding.
    pub detector: String,
    /// Human-readable explanation.
    pub message: String,
    /// Detector confidence.
    pub confidence: Confidence,
    /// Abstract-state evidence, present on semantic-checker findings
    /// (serialized as `null` elsewhere; absent keys also read as `None`).
    pub evidence: Option<Evidence>,
}

impl Finding {
    /// 1-based source line of the finding (0 when synthesized).
    pub fn line(&self) -> u32 {
        self.span.line
    }

    /// Identity of the underlying defect, independent of which detector
    /// family reported it: class, containing function, and exact source
    /// span. A rule detector and a semantic checker converging on the same
    /// construct collide here; distinct defects of one class never do.
    pub fn dedupe_key(&self) -> (u32, &str, usize, usize) {
        (self.cwe.id(), &self.function, self.span.start, self.span.end)
    }
}

/// Collapses detector-family double-reports: findings sharing a
/// [`Finding::dedupe_key`] are merged down to the single best report. The
/// evidence-bearing (semantic) finding wins over an evidence-free rule
/// match; among equals, higher confidence wins, then first-reported. The
/// survivor keeps the position of the key's first occurrence, so output
/// order is a pure function of the input — byte-identical across worker
/// counts and cache states.
pub fn dedupe_findings(findings: Vec<Finding>) -> Vec<Finding> {
    let mut first_slot: std::collections::BTreeMap<(u32, String, usize, usize), usize> =
        std::collections::BTreeMap::new();
    let mut slots: Vec<Option<Finding>> = Vec::with_capacity(findings.len());
    for f in findings {
        let (id, func, start, end) = f.dedupe_key();
        let key = (id, func.to_string(), start, end);
        match first_slot.get(&key) {
            None => {
                first_slot.insert(key, slots.len());
                slots.push(Some(f));
            }
            Some(&i) => {
                let held = slots[i].as_ref().expect("slot holds the current best");
                let wins = (f.evidence.is_some(), f.confidence)
                    > (held.evidence.is_some(), held.confidence);
                if wins {
                    slots[i] = Some(f);
                }
            }
        }
    }
    slots.into_iter().flatten().collect()
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {} in `{}` at {}: {} ({})",
            self.confidence, self.cwe, self.function, self.span, self.message, self.detector
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_orders() {
        assert!(Confidence::Low < Confidence::Medium);
        assert!(Confidence::Medium < Confidence::High);
    }

    fn finding(detector: &str, confidence: Confidence, evidence: Option<Evidence>) -> Finding {
        Finding {
            cwe: Cwe::UseAfterFree,
            function: "handle".into(),
            span: Span::new(10, 24, 3, 5),
            detector: detector.into(),
            message: "use after free".into(),
            confidence,
            evidence,
        }
    }

    #[test]
    fn dedupe_keeps_the_evidence_bearing_report() {
        let rule = finding("lifetime-order", Confidence::High, None);
        let semantic = finding(
            "absint-ownership",
            Confidence::High,
            Some(Evidence { domain: "ownership".into(), facts: vec![], claim: "freed".into() }),
        );
        // Same defect from two families: the proof survives, either order.
        let out = dedupe_findings(vec![rule.clone(), semantic.clone()]);
        assert_eq!(out, vec![semantic.clone()]);
        let out = dedupe_findings(vec![semantic.clone(), rule.clone()]);
        assert_eq!(out, vec![semantic.clone()]);
        // Distinct spans are distinct defects.
        let mut elsewhere = rule.clone();
        elsewhere.span = Span::new(40, 52, 7, 1);
        let out = dedupe_findings(vec![rule.clone(), elsewhere.clone()]);
        assert_eq!(out, vec![rule.clone(), elsewhere]);
        // Among evidence-free reports, higher confidence wins; position is
        // the first occurrence's.
        let low = finding("heuristic", Confidence::Low, None);
        let mut other = low.clone();
        other.span = Span::new(1, 2, 1, 1);
        let out = dedupe_findings(vec![other.clone(), low, rule.clone()]);
        assert_eq!(out, vec![other, rule]);
    }

    #[test]
    fn display_is_informative() {
        let f = Finding {
            cwe: Cwe::SqlInjection,
            function: "handle".into(),
            span: Span::new(0, 4, 3, 5),
            detector: "taint".into(),
            message: "tainted query".into(),
            confidence: Confidence::High,
            evidence: None,
        };
        let s = f.to_string();
        assert!(s.contains("CWE-89"));
        assert!(s.contains("handle"));
        assert!(s.contains("3:5"));
        assert_eq!(f.line(), 3);
    }
}
