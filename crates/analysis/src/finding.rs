//! Findings reported by static detectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use vulnman_lang::Span;
use vulnman_synth::cwe::Cwe;

/// Confidence a detector attaches to a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Confidence {
    /// Heuristic match; expect false positives.
    Low,
    /// Pattern match with supporting context.
    Medium,
    /// Data-flow-confirmed or structurally certain.
    High,
}

/// One abstract fact backing a semantic finding: a variable and its
/// abstract value at the report point, rendered by the domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceFact {
    /// Variable the fact is about.
    pub var: String,
    /// The domain's rendering of the abstract value (e.g. `[33, 33]`,
    /// `maybe-null`).
    pub value: String,
}

/// Machine-checkable evidence for a semantic (abstract-interpretation)
/// finding: the abstract state at the report point plus the claim the
/// checker derived from it. Re-running the named domain to the same program
/// point must reproduce every fact — that is what "machine-checkable"
/// means here, and what the differential oracle exploits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    /// Name of the abstract domain that proved the claim.
    pub domain: String,
    /// The abstract facts (variable states) at the report point.
    pub facts: Vec<EvidenceFact>,
    /// The checker's conclusion drawn from the facts.
    pub claim: String,
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} domain: {}", self.domain, self.claim)?;
        for fact in &self.facts {
            write!(f, "; {} = {}", fact.var, fact.value)?;
        }
        Ok(())
    }
}

/// A single static-analysis finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Vulnerability class.
    pub cwe: Cwe,
    /// Function the finding is located in.
    pub function: String,
    /// Source location of the flagged construct.
    pub span: Span,
    /// Name of the detector that produced this finding.
    pub detector: String,
    /// Human-readable explanation.
    pub message: String,
    /// Detector confidence.
    pub confidence: Confidence,
    /// Abstract-state evidence, present on semantic-checker findings
    /// (serialized as `null` elsewhere; absent keys also read as `None`).
    pub evidence: Option<Evidence>,
}

impl Finding {
    /// 1-based source line of the finding (0 when synthesized).
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {} in `{}` at {}: {} ({})",
            self.confidence, self.cwe, self.function, self.span, self.message, self.detector
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_orders() {
        assert!(Confidence::Low < Confidence::Medium);
        assert!(Confidence::Medium < Confidence::High);
    }

    #[test]
    fn display_is_informative() {
        let f = Finding {
            cwe: Cwe::SqlInjection,
            function: "handle".into(),
            span: Span::new(0, 4, 3, 5),
            detector: "taint".into(),
            message: "tainted query".into(),
            confidence: Confidence::High,
            evidence: None,
        };
        let s = f.to_string();
        assert!(s.contains("CWE-89"));
        assert!(s.contains("handle"));
        assert!(s.contains("3:5"));
        assert_eq!(f.line(), 3);
    }
}
