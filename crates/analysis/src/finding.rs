//! Findings reported by static detectors.

use serde::{Deserialize, Serialize};
use std::fmt;
use vulnman_lang::Span;
use vulnman_synth::cwe::Cwe;

/// Confidence a detector attaches to a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Confidence {
    /// Heuristic match; expect false positives.
    Low,
    /// Pattern match with supporting context.
    Medium,
    /// Data-flow-confirmed or structurally certain.
    High,
}

/// A single static-analysis finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// Vulnerability class.
    pub cwe: Cwe,
    /// Function the finding is located in.
    pub function: String,
    /// Source location of the flagged construct.
    pub span: Span,
    /// Name of the detector that produced this finding.
    pub detector: String,
    /// Human-readable explanation.
    pub message: String,
    /// Detector confidence.
    pub confidence: Confidence,
}

impl Finding {
    /// 1-based source line of the finding (0 when synthesized).
    pub fn line(&self) -> u32 {
        self.span.line
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {} in `{}` at {}: {} ({})",
            self.confidence, self.cwe, self.function, self.span, self.message, self.detector
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_orders() {
        assert!(Confidence::Low < Confidence::Medium);
        assert!(Confidence::Medium < Confidence::High);
    }

    #[test]
    fn display_is_informative() {
        let f = Finding {
            cwe: Cwe::SqlInjection,
            function: "handle".into(),
            span: Span::new(0, 4, 3, 5),
            detector: "taint".into(),
            message: "tainted query".into(),
            confidence: Confidence::High,
        };
        let s = f.to_string();
        assert!(s.contains("CWE-89"));
        assert!(s.contains("handle"));
        assert!(s.contains("3:5"));
        assert_eq!(f.line(), 3);
    }
}
