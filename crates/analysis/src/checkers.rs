//! Semantic checkers: detectors backed by the abstract-interpretation
//! framework in [`vulnman_lang::absint`].
//!
//! Where the rule-based suite in [`crate::detectors`] pattern-matches on
//! syntax (known source functions, known loop shapes), these checkers prove
//! facts about program *values* — an index interval entirely outside the
//! array, a pointer that is the literal null on some path, a variable read
//! before any initialization — and only report when the abstract state
//! constitutes a proof. Every finding therefore carries
//! [`Evidence`](crate::finding::Evidence): the abstract facts at the report
//! point plus the claim derived from them, reproducible by re-running the
//! named domain to the same point.
//!
//! The domains are tuned so "maybe" verdicts only arise from *tracked*
//! merges (a literal null joined with a non-null path; an initialized path
//! joined with an uninitialized one) — the lattice top is never
//! report-worthy. That keeps the suite false-positive-free on the synthetic
//! corpus while catching the semantic template classes the rule suite is
//! blind to by construction.

use crate::detectors::StaticDetector;
use crate::finding::{Confidence, Evidence, EvidenceFact, Finding};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use vulnman_lang::absint::domain::inst_reads;
use vulnman_lang::absint::ownership::FREE_FNS;
use vulnman_lang::absint::provenance::{KIND_COMMAND, KIND_FORMAT};
use vulnman_lang::absint::{
    analyze_program_parallel, Domain, DomainAnalysis, Env, Init, InitDomain, Interval,
    IntervalDomain, Nullness, NullnessDomain, Ownership, OwnershipDomain, Provenance,
    ProvenanceDomain, SolverConfig, SolverStats, Width, WidthDomain,
};
use vulnman_lang::ast::{BinOp, Expr, ExprKind, Function, LValue, Program, Type, UnOp};
use vulnman_lang::cfg::{Cfg, CfgInst};
use vulnman_lang::incremental::{
    analyze_program_incremental_in, IncrementalContext, IncrementalTrace,
};
use vulnman_obs::Registry;
use vulnman_synth::cwe::Cwe;

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// The full result of a semantic scan: findings plus solver telemetry.
#[derive(Debug, Clone)]
pub struct SemanticScan {
    /// Findings, sorted by `(span.start, cwe)`; each carries evidence.
    pub findings: Vec<Finding>,
    /// Accumulated fixpoint statistics across all three domain passes.
    pub stats: SolverStats,
    /// Wall time of the interval pass (solver + checker), in microseconds.
    pub interval_micros: u64,
    /// Wall time of the nullness pass, in microseconds.
    pub nullness_micros: u64,
    /// Wall time of the definite-initialization pass, in microseconds.
    pub init_micros: u64,
    /// Wall time of the ownership pass (including the trace-interleaving
    /// TOCTOU checker it hosts), in microseconds.
    pub ownership_micros: u64,
    /// Wall time of the width/truncation pass, in microseconds.
    pub width_micros: u64,
    /// Wall time of the provenance (kind-masked taint) pass, in
    /// microseconds.
    pub provenance_micros: u64,
}

/// The result of an incremental semantic scan: findings and statistics
/// byte-identical to [`SemanticEngine::analyze`], plus the per-function
/// recompute trace (no wall-clock fields — incremental results must stay
/// comparable across runs and cache states).
#[derive(Debug, Clone)]
pub struct IncrementalSemanticScan {
    /// Findings, sorted by `(span.start, cwe)`; each carries evidence.
    pub findings: Vec<Finding>,
    /// Accumulated fixpoint statistics across all three domain passes
    /// (cached components contribute their recorded statistics).
    pub stats: SolverStats,
    /// Which functions any domain pass re-solved vs. reused.
    pub trace: IncrementalTrace,
}

/// Runs the three abstract domains over a program and reports semantic
/// findings with machine-checkable evidence.
///
/// Implements [`StaticDetector`] so it plugs into the same registries as the
/// rule suite, but it is deliberately *not* part of
/// [`RuleEngine::default_suite`](crate::detectors::RuleEngine::default_suite):
/// the differential oracle treats rules and semantics as independent views.
#[derive(Debug, Clone, Copy)]
pub struct SemanticEngine {
    config: SolverConfig,
    jobs: usize,
}

impl SemanticEngine {
    /// An engine with the default solver configuration.
    pub fn new() -> Self {
        SemanticEngine { config: SolverConfig::default(), jobs: 1 }
    }

    /// An engine with custom widening/iteration knobs.
    pub fn with_config(config: SolverConfig) -> Self {
        SemanticEngine { config, jobs: 1 }
    }

    /// Solves per-function fixpoints on up to `jobs` worker threads via
    /// [`analyze_program_parallel`]. Findings, summaries, and statistics
    /// are byte-identical for every value, so `jobs` is deliberately not
    /// part of [`SemanticEngine::fingerprint`] — cached results are shared
    /// across worker counts. Small programs always solve sequentially.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// A 64-bit fingerprint of the engine configuration, used as the
    /// analysis-cache config key (same FNV construction as
    /// [`RuleEngine::fingerprint`](crate::detectors::RuleEngine::fingerprint)).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        for b in "semantic-suite".bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        for v in [self.config.widening_threshold as u64, self.config.max_iterations] {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Runs all three domain passes and returns findings plus telemetry.
    pub fn analyze(&self, program: &Program) -> SemanticScan {
        let mut findings = Vec::new();
        let mut stats = SolverStats { converged: true, ..SolverStats::default() };

        let t = Instant::now();
        let pa = analyze_program_parallel::<IntervalDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| IntervalDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_intervals(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let interval_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<NullnessDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| NullnessDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_nullness(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let nullness_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<InitDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |_| InitDomain,
            |func, cfg, domain, analysis| {
                check_init(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let init_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<OwnershipDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| OwnershipDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_ownership(func, cfg, domain, analysis, &mut findings);
                check_toctou(func, cfg, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let ownership_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<WidthDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| WidthDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_width(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let width_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<ProvenanceDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| ProvenanceDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_sinks(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let provenance_micros = t.elapsed().as_micros() as u64;

        findings.sort_by_key(|f| (f.span.start, f.cwe.id()));
        SemanticScan {
            findings,
            stats,
            interval_micros,
            nullness_micros,
            init_micros,
            ownership_micros,
            width_micros,
            provenance_micros,
        }
    }

    /// Parses and scans source text.
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source(&self, source: &str) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        Ok(self.scan(&vulnman_lang::parse(source)?))
    }

    /// Parses and scans through a content-addressed cache under the
    /// `"absint-findings"` kind: warm runs skip the fixpoint entirely.
    /// Results are identical to [`SemanticEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source_cached(
        &self,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        self.scan_source_cached_keyed(
            vulnman_lang::AnalysisCache::content_key(source),
            source,
            cache,
        )
    }

    /// [`SemanticEngine::scan_source_cached`] with a precomputed
    /// [`content_key`](vulnman_lang::AnalysisCache::content_key), so callers
    /// that consult several cache tables for the same sample hash its source
    /// once. Results are identical to [`SemanticEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source_cached_keyed(
        &self,
        content_key: u64,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        let program = cache.parse_keyed(content_key, source)?;
        let findings =
            cache.analysis_keyed(content_key, "absint-findings", self.fingerprint(), || {
                self.scan(&program)
            });
        Ok((*findings).clone())
    }

    /// [`SemanticEngine::analyze`] through the per-stage incremental
    /// tables of `cache`: CFGs, summaries, and findings of functions whose
    /// inputs are unchanged since a previous call are reused instead of
    /// re-solved (see [`vulnman_lang::incremental`]). Findings and solver
    /// statistics are byte-identical to the batch path; the returned trace
    /// says which functions were actually re-analyzed.
    pub fn analyze_incremental(
        &self,
        program: &Program,
        cache: &vulnman_lang::AnalysisCache,
    ) -> IncrementalSemanticScan {
        // The call graph and function fingerprints are pass-independent;
        // build them once and share across all three domain passes.
        self.analyze_incremental_in(&IncrementalContext::new(program), program, cache)
    }

    fn analyze_incremental_in(
        &self,
        ctx: &IncrementalContext,
        program: &Program,
        cache: &vulnman_lang::AnalysisCache,
    ) -> IncrementalSemanticScan {
        let base = self.fingerprint();
        let mut findings = Vec::new();
        let mut stats = SolverStats { converged: true, ..SolverStats::default() };
        let mut trace = IncrementalTrace::default();

        let run = analyze_program_incremental_in::<IntervalDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x01,
            |summaries| IntervalDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_intervals(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<NullnessDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x02,
            |summaries| NullnessDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_nullness(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<InitDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x03,
            |_| InitDomain,
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_init(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<OwnershipDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x04,
            |summaries| OwnershipDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_ownership(func, cfg, domain, analysis, &mut out);
                check_toctou(func, cfg, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<WidthDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x05,
            |summaries| WidthDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_width(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<ProvenanceDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x06,
            |summaries| ProvenanceDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_sinks(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        findings.sort_by_key(|f| (f.span.start, f.cwe.id()));
        IncrementalSemanticScan { findings, stats, trace }
    }

    /// Parses (through the [`Stage::Lex`](vulnman_lang::Stage) and
    /// [`Stage::Parse`](vulnman_lang::Stage) tables) and scans `source`
    /// incrementally. Results are identical to
    /// [`SemanticEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C (cached, so
    /// malformed resubmissions fail at the lex/parse stage without
    /// re-running anything downstream).
    pub fn scan_source_incremental(
        &self,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<IncrementalSemanticScan, vulnman_lang::ParseError> {
        let key = vulnman_lang::AnalysisCache::content_key(source);
        let lexed = cache.stage(vulnman_lang::Stage::Lex, key, || {
            vulnman_lang::lexer::lex(source).map(|out| out.tokens.len())
        });
        if let Err(e) = &*lexed {
            return Err(e.clone());
        }
        let program = cache.parse_stage(key, source)?;
        // The source is in hand, so fingerprint functions from their raw
        // source slices — far cheaper than rendering each AST.
        let ctx = IncrementalContext::with_source(&program, source);
        Ok(self.analyze_incremental_in(&ctx, &program, cache))
    }

    /// Scans and reports solver telemetry through the pre-registered
    /// `absint.*` instruments (see [`register_absint_instruments`]).
    pub fn scan_with_metrics(&self, program: &Program, metrics: &Registry) -> Vec<Finding> {
        let scan = self.analyze(program);
        metrics.counter("absint.solver.iterations").add(scan.stats.iterations);
        metrics.counter("absint.solver.widenings").add(scan.stats.widenings);
        if !scan.stats.converged {
            metrics.counter("absint.solver.nonconverged").add(1);
        }
        metrics.counter("absint.findings").add(scan.findings.len() as u64);
        metrics.histogram("absint.domain.interval_micros").observe(scan.interval_micros);
        metrics.histogram("absint.domain.nullness_micros").observe(scan.nullness_micros);
        metrics.histogram("absint.domain.init_micros").observe(scan.init_micros);
        metrics.histogram("absint.domain.ownership_micros").observe(scan.ownership_micros);
        metrics.histogram("absint.domain.width_micros").observe(scan.width_micros);
        metrics.histogram("absint.domain.provenance_micros").observe(scan.provenance_micros);
        scan.findings
    }
}

/// Detection counts for one CWE class on the fixed semantic-gap corpus —
/// one row of [`AbsintBaseline`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// CWE id (e.g. 125).
    pub cwe: u32,
    /// Vulnerable samples where the semantic suite reported this class.
    pub true_positives: usize,
    /// Fixed twins where the suite still reported this class.
    pub false_positives: usize,
}

/// Committed per-CWE detection baseline for the semantic checker suite
/// (`tests/absint_baseline.json`). The regression gate fails when any
/// class's true positives drop below — or false positives rise above — the
/// committed numbers; conscious improvements regenerate the file instead.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbsintBaseline {
    /// One entry per semantic-gap CWE class, sorted by id.
    pub entries: Vec<BaselineEntry>,
}

impl Default for SemanticEngine {
    fn default() -> Self {
        SemanticEngine::new()
    }
}

impl StaticDetector for SemanticEngine {
    fn name(&self) -> &'static str {
        "semantic-suite"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![
            Cwe::OutOfBoundsWrite,
            Cwe::OutOfBoundsRead,
            Cwe::IntegerOverflow,
            Cwe::DivideByZero,
            Cwe::NullDereference,
            Cwe::UninitializedUse,
            Cwe::UseAfterFree,
            Cwe::DoubleFree,
            Cwe::IntegerTruncation,
            Cwe::Toctou,
            Cwe::CommandInjection,
            Cwe::FormatString,
        ]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        self.analyze(program).findings
    }
}

/// Pre-registers every `absint.*` instrument the semantic engine can
/// produce, so exported snapshots have a stable schema even when a counter
/// never fires (the same pattern as the `oracle.*` and `fault.*` families).
pub fn register_absint_instruments(metrics: &Registry) {
    metrics.counter("absint.solver.iterations");
    metrics.counter("absint.solver.widenings");
    metrics.counter("absint.solver.nonconverged");
    metrics.counter("absint.findings");
    metrics.histogram("absint.domain.interval_micros");
    metrics.histogram("absint.domain.nullness_micros");
    metrics.histogram("absint.domain.init_micros");
    metrics.histogram("absint.domain.ownership_micros");
    metrics.histogram("absint.domain.width_micros");
    metrics.histogram("absint.domain.provenance_micros");
}

// ---------------------------------------------------------------------------
// Instruction traversal helpers
// ---------------------------------------------------------------------------

/// Every expression syntactically contained in an instruction (lvalue
/// sub-expressions included).
fn inst_exprs(inst: &CfgInst) -> Vec<&Expr> {
    match inst {
        CfgInst::Decl { init, .. } => init.iter().collect(),
        CfgInst::Assign { target, value } => {
            let mut out = vec![value];
            match target {
                LValue::Var(_) => {}
                LValue::Deref(e) => out.push(e),
                LValue::Index(base, index) => {
                    out.push(base);
                    out.push(index);
                }
            }
            out
        }
        CfgInst::Expr(e) | CfgInst::Branch(e) => vec![e],
        CfgInst::Return(e) => e.iter().collect(),
    }
}

/// Depth-first walk over an expression tree.
fn walk<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary(_, inner) => walk(inner, f),
        ExprKind::Binary(_, l, r) => {
            walk(l, f);
            walk(r, f);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        ExprKind::Index(base, index) => {
            walk(base, f);
            walk(index, f);
        }
        ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) | ExprKind::Var(_) => {}
    }
}

/// One `base[index]` access with direction.
struct IndexAccess<'a> {
    base: &'a str,
    index: &'a Expr,
    is_write: bool,
}

/// All array/pointer index accesses in an instruction whose base is a plain
/// variable.
fn index_accesses(inst: &CfgInst) -> Vec<IndexAccess<'_>> {
    let mut out = Vec::new();
    if let CfgInst::Assign { target: LValue::Index(base, index), .. } = inst {
        if let ExprKind::Var(name) = &base.kind {
            out.push(IndexAccess { base: name, index, is_write: true });
        }
    }
    for e in inst_exprs(inst) {
        walk(e, &mut |e| {
            if let ExprKind::Index(base, index) = &e.kind {
                if let ExprKind::Var(name) = &base.kind {
                    out.push(IndexAccess { base: name, index, is_write: false });
                }
            }
        });
    }
    out
}

/// All divisor sub-expressions (`/` and `%` right operands) in an
/// instruction.
fn divisors(inst: &CfgInst) -> Vec<&Expr> {
    let mut out = Vec::new();
    for e in inst_exprs(inst) {
        walk(e, &mut |e| {
            if let ExprKind::Binary(BinOp::Div | BinOp::Rem, _, r) = &e.kind {
                out.push(&**r);
            }
        });
    }
    out
}

/// Variables dereferenced by an instruction (`*p`, `p[i]`, and stores
/// through either form).
fn deref_targets(inst: &CfgInst) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    if let CfgInst::Assign { target: LValue::Deref(e) | LValue::Index(e, _), .. } = inst {
        if let ExprKind::Var(name) = &e.kind {
            out.insert(name.as_str());
        }
    }
    for e in inst_exprs(inst) {
        walk(e, &mut |e| match &e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => {
                if let ExprKind::Var(name) = &inner.kind {
                    out.insert(name.as_str());
                }
            }
            ExprKind::Index(base, _) => {
                if let ExprKind::Var(name) = &base.kind {
                    out.insert(name.as_str());
                }
            }
            _ => {}
        });
    }
    out
}

/// Evidence facts for every variable read by `exprs`, rendered from the
/// pre-state of the report point.
fn facts_for<V: vulnman_lang::absint::AbstractValue + std::fmt::Display>(
    pre: &Env<V>,
    exprs: &[&Expr],
) -> Vec<EvidenceFact> {
    let mut vars: BTreeSet<&str> = BTreeSet::new();
    for e in exprs {
        vars.extend(e.read_vars());
    }
    vars.into_iter()
        .map(|v| EvidenceFact { var: v.to_string(), value: pre.get(v).to_string() })
        .collect()
}

// ---------------------------------------------------------------------------
// Interval checkers: OOB (CWE-787/125), div-by-zero (CWE-369), overflow (190)
// ---------------------------------------------------------------------------

fn check_intervals(
    func: &Function,
    cfg: &Cfg,
    domain: &IntervalDomain,
    analysis: &DomainAnalysis<Interval>,
    out: &mut Vec<Finding>,
) {
    // Declared array lengths in this function. The language has
    // function-level scope, so one map per function suffices.
    let mut arrays: BTreeMap<&str, i128> = BTreeMap::new();
    for block in &cfg.blocks {
        for inst in &block.insts {
            if let CfgInst::Decl { name, ty, .. } = &inst.inst {
                if let Some(n) = ty.array_len() {
                    arrays.insert(name, n as i128);
                }
            }
        }
    }

    let reachable = cfg.reachable();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for access in index_accesses(&inst.inst) {
                let Some(&len) = arrays.get(access.base) else { continue };
                let iv = domain.eval(&pre, access.index);
                // Must-style gate: report only when *every* possible index
                // is outside `[0, len)` — a proof, not a possibility.
                if iv.is_bottom() || (iv.lo() < len && iv.hi() >= 0) {
                    continue;
                }
                let (cwe, verb) = if access.is_write {
                    (Cwe::OutOfBoundsWrite, "write to")
                } else {
                    (Cwe::OutOfBoundsRead, "read of")
                };
                let claim = format!(
                    "index into `{}` is {iv}, entirely outside the valid range [0, {len})",
                    access.base
                );
                out.push(Finding {
                    cwe,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-interval".into(),
                    message: format!(
                        "{verb} `{}[...]` with an index proven out of bounds ({iv} vs length \
                         {len})",
                        access.base
                    ),
                    confidence: Confidence::High,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: facts_for(&pre, &[access.index]),
                        claim,
                    }),
                });
            }
            for divisor in divisors(&inst.inst) {
                let dv = domain.eval(&pre, divisor);
                if !dv.is_point(0) {
                    continue;
                }
                out.push(Finding {
                    cwe: Cwe::DivideByZero,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-interval".into(),
                    message: "division by a divisor proven to be exactly zero".into(),
                    confidence: Confidence::High,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: facts_for(&pre, &[divisor]),
                        claim: "the divisor evaluates to [0, 0] on every path reaching this \
                                division"
                            .into(),
                    }),
                });
            }
            if let CfgInst::Decl { init: Some(value), .. } | CfgInst::Assign { value, .. } =
                &inst.inst
            {
                let v = domain.eval(&pre, value);
                if v.fits_i64() {
                    continue;
                }
                out.push(Finding {
                    cwe: Cwe::IntegerOverflow,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-interval".into(),
                    message: format!(
                        "assigned value {v} lies entirely outside the 64-bit integer range"
                    ),
                    confidence: Confidence::High,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: facts_for(&pre, &[value]),
                        claim: format!("the assigned expression evaluates to {v}"),
                    }),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Nullness checker: null dereference (CWE-476)
// ---------------------------------------------------------------------------

fn check_nullness(
    func: &Function,
    cfg: &Cfg,
    domain: &NullnessDomain,
    analysis: &DomainAnalysis<Nullness>,
    out: &mut Vec<Finding>,
) {
    let reachable = cfg.reachable();
    // One finding per variable per function: later dereferences of the same
    // null pointer add no information.
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for name in deref_targets(&inst.inst) {
                let v = pre.get(name);
                if !v.is_derefable_bug() || reported.contains(name) {
                    continue;
                }
                reported.insert(name.to_string());
                let (confidence, how) = match v {
                    Nullness::Null => (Confidence::High, "is the literal null on every path"),
                    _ => (
                        Confidence::Medium,
                        "may be the literal null: a null-valued path \
                           merges in unguarded",
                    ),
                };
                out.push(Finding {
                    cwe: Cwe::NullDereference,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-nullness".into(),
                    message: format!("dereference of `{name}`, which {how}"),
                    confidence,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: vec![EvidenceFact { var: name.to_string(), value: v.to_string() }],
                        claim: format!("`{name}` is {v} at the dereference"),
                    }),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Definite-initialization checker: use of uninitialized variable (CWE-457)
// ---------------------------------------------------------------------------

fn check_init(
    func: &Function,
    cfg: &Cfg,
    domain: &InitDomain,
    analysis: &DomainAnalysis<Init>,
    out: &mut Vec<Finding>,
) {
    let reachable = cfg.reachable();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for name in inst_reads(&inst.inst) {
                let v = pre.get(name);
                if !v.is_read_bug() || reported.contains(name) {
                    continue;
                }
                reported.insert(name.to_string());
                let (confidence, how) = match v {
                    Init::No => (Confidence::High, "is never initialized before this read"),
                    _ => (
                        Confidence::Medium,
                        "is uninitialized on at least one path to this \
                           read",
                    ),
                };
                out.push(Finding {
                    cwe: Cwe::UninitializedUse,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-init".into(),
                    message: format!("read of `{name}`, which {how}"),
                    confidence,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: vec![EvidenceFact { var: name.to_string(), value: v.to_string() }],
                        claim: format!("`{name}` is {v} at the read"),
                    }),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ownership checker: use-after-free (CWE-416), double-free (CWE-415)
// ---------------------------------------------------------------------------

/// Variables released by a [`FREE_FNS`] call inside this instruction (the
/// call's first argument, when it is a plain variable).
fn freed_vars(inst: &CfgInst) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    for e in inst_exprs(inst) {
        walk(e, &mut |e| {
            if let ExprKind::Call(name, args) = &e.kind {
                if FREE_FNS.contains(&name.as_str()) {
                    if let Some(Expr { kind: ExprKind::Var(v), .. }) = args.first() {
                        out.insert(v.as_str());
                    }
                }
            }
        });
    }
    out
}

fn check_ownership(
    func: &Function,
    cfg: &Cfg,
    domain: &OwnershipDomain,
    analysis: &DomainAnalysis<Ownership>,
    out: &mut Vec<Finding>,
) {
    let reachable = cfg.reachable();
    // One finding per (variable, class) per function.
    let mut reported: BTreeSet<(String, u32)> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            let freed_here = freed_vars(&inst.inst);
            // A release of a handle that is already dead is a double free.
            for name in &freed_here {
                let v = pre.get(name);
                let (confidence, how) = if v.free_is_proven_bug() {
                    let how = match v {
                        Ownership::Moved => "whose ownership was already handed off",
                        _ => "already released on every path",
                    };
                    (Confidence::High, how)
                } else if v.free_is_possible_bug() {
                    (Confidence::Medium, "already released on at least one path")
                } else {
                    continue;
                };
                if !reported.insert((name.to_string(), Cwe::DoubleFree.id())) {
                    continue;
                }
                out.push(Finding {
                    cwe: Cwe::DoubleFree,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-ownership".into(),
                    message: format!("release of `{name}`, {how}"),
                    confidence,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: vec![EvidenceFact { var: name.to_string(), value: v.to_string() }],
                        claim: format!("`{name}` is {v} when released again"),
                    }),
                });
            }
            // Any other read of a dead handle is a use after free. The
            // release itself was reported above as the double free.
            for name in inst_reads(&inst.inst) {
                if freed_here.contains(name) {
                    continue;
                }
                let v = pre.get(name);
                let (confidence, how) = if v.use_is_proven_bug() {
                    (Confidence::High, "released on every path reaching this use")
                } else if v.use_is_possible_bug() {
                    (Confidence::Medium, "released on at least one path reaching this use")
                } else {
                    continue;
                };
                if !reported.insert((name.to_string(), Cwe::UseAfterFree.id())) {
                    continue;
                }
                out.push(Finding {
                    cwe: Cwe::UseAfterFree,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-ownership".into(),
                    message: format!("use of `{name}`, {how}"),
                    confidence,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: vec![EvidenceFact { var: name.to_string(), value: v.to_string() }],
                        claim: format!("`{name}` is {v} at the use"),
                    }),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-interleaving TOCTOU checker (CWE-367)
// ---------------------------------------------------------------------------

/// Functions that *check* a path's state without opening it.
const TOCTOU_CHECK_FNS: [&str; 1] = ["file_exists"];
/// Functions that *use* a path, trusting an earlier check.
const TOCTOU_USE_FNS: [&str; 2] = ["open_file", "fopen_path"];
/// Cap on enumerated check→use interleavings per check site.
const TOCTOU_PATH_CAP: u32 = 64;

/// A per-block event relevant to the check/use window of one path variable.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ToctouEvent<'a> {
    /// `file_exists(v)` — opens a stale window.
    Check(&'a str),
    /// `open_file(v)`-style use, with the callee name and its span.
    Use(&'a str, &'a str, vulnman_lang::Span),
    /// `v` is re-assigned or re-declared — the window closes.
    Kill(&'a str),
}

/// Collects check/use/kill events per basic block, in instruction order.
fn toctou_events(cfg: &Cfg) -> Vec<Vec<ToctouEvent<'_>>> {
    cfg.blocks
        .iter()
        .map(|block| {
            let mut events = Vec::new();
            for inst in &block.insts {
                for e in inst_exprs(&inst.inst) {
                    walk(e, &mut |e| {
                        if let ExprKind::Call(name, args) = &e.kind {
                            let Some(Expr { kind: ExprKind::Var(v), .. }) = args.first() else {
                                return;
                            };
                            if TOCTOU_CHECK_FNS.contains(&name.as_str()) {
                                events.push(ToctouEvent::Check(v));
                            } else if TOCTOU_USE_FNS.contains(&name.as_str()) {
                                events.push(ToctouEvent::Use(v, name, inst.span));
                            }
                        }
                    });
                }
                match &inst.inst {
                    CfgInst::Decl { name, .. } => events.push(ToctouEvent::Kill(name)),
                    CfgInst::Assign { target: LValue::Var(name), .. } => {
                        events.push(ToctouEvent::Kill(name))
                    }
                    _ => {}
                }
            }
            events
        })
        .collect()
}

/// Depth-first enumeration of acyclic check→use interleavings for `var`,
/// starting at `events[b][start]`. Each discovered path ends at its first
/// use (recorded in `uses`) or dies at a kill.
#[allow(clippy::too_many_arguments)]
fn toctou_dfs<'a>(
    cfg: &Cfg,
    events: &[Vec<ToctouEvent<'a>>],
    var: &str,
    b: usize,
    start: usize,
    visited: &mut Vec<bool>,
    uses: &mut Vec<(vulnman_lang::Span, &'a str)>,
    paths: &mut u32,
) {
    if *paths >= TOCTOU_PATH_CAP {
        return;
    }
    for ev in &events[b][start..] {
        match ev {
            ToctouEvent::Use(v, callee, span) if *v == var => {
                *paths += 1;
                uses.push((*span, callee));
                return;
            }
            ToctouEvent::Kill(v) if *v == var => return,
            _ => {}
        }
    }
    for &succ in &cfg.blocks[b].succs {
        if !visited[succ] {
            visited[succ] = true;
            toctou_dfs(cfg, events, var, succ, 0, visited, uses, paths);
            visited[succ] = false;
        }
    }
}

/// Enumerates check/use interleavings over the CFG: from every
/// `file_exists(p)` site, walks every acyclic continuation and reports when
/// a use of `p` is reachable with no intervening re-derivation of `p` —
/// i.e. at least one trace has a window in which the checked state can go
/// stale. Purely structural (no abstract domain), so flag-indirected checks
/// the syntactic race rule misses are still found.
fn check_toctou(func: &Function, cfg: &Cfg, out: &mut Vec<Finding>) {
    let events = toctou_events(cfg);
    let reachable = cfg.reachable();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (b, block_events) in events.iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        for (i, ev) in block_events.iter().enumerate() {
            let ToctouEvent::Check(var) = ev else { continue };
            if reported.contains(*var) {
                continue;
            }
            let mut visited = vec![false; cfg.blocks.len()];
            visited[b] = true;
            let mut uses = Vec::new();
            let mut paths = 0u32;
            toctou_dfs(cfg, &events, var, b, i + 1, &mut visited, &mut uses, &mut paths);
            if paths == 0 {
                continue;
            }
            reported.insert(var.to_string());
            // Anchor the finding at the earliest reachable use.
            uses.sort_by_key(|(span, _)| span.start);
            let (span, callee) = uses[0];
            let windows = if paths >= TOCTOU_PATH_CAP {
                format!("at least {TOCTOU_PATH_CAP}")
            } else {
                paths.to_string()
            };
            out.push(Finding {
                cwe: Cwe::Toctou,
                function: func.name.to_string(),
                span,
                detector: "absint-toctou".into(),
                message: format!(
                    "`{callee}({var})` trusts an earlier `file_exists({var})` check; the file \
                     can change in the window between them"
                ),
                confidence: Confidence::High,
                evidence: Some(Evidence {
                    domain: "trace-interleaving".into(),
                    facts: vec![EvidenceFact {
                        var: var.to_string(),
                        value: format!("{windows} stale check-to-use window(s)"),
                    }],
                    claim: format!(
                        "{windows} interleaving(s) reach `{callee}({var})` from the check with \
                         no re-validation of `{var}`"
                    ),
                }),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Width checker: integer truncation (CWE-197)
// ---------------------------------------------------------------------------

fn check_width(
    func: &Function,
    cfg: &Cfg,
    domain: &WidthDomain,
    analysis: &DomainAnalysis<Width>,
    out: &mut Vec<Finding>,
) {
    // Scalar `char` declarations in this function (function-level scope, so
    // one set suffices); stores into them are the narrowing points.
    let mut chars: BTreeSet<&str> = BTreeSet::new();
    for block in &cfg.blocks {
        for inst in &block.insts {
            if let CfgInst::Decl { name, ty: Type::Char, .. } = &inst.inst {
                chars.insert(name);
            }
        }
    }
    if chars.is_empty() {
        return;
    }

    let reachable = cfg.reachable();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            let (dest, value) = match &inst.inst {
                CfgInst::Decl { name, ty: Type::Char, init: Some(value) } => (name, value),
                CfgInst::Assign { target: LValue::Var(name), value }
                    if chars.contains(name.as_str()) =>
                {
                    (name, value)
                }
                _ => continue,
            };
            let v = domain.eval(&pre, value);
            // Must-style gate: only a range entirely outside the 8-bit
            // window proves the store truncates; may-truncation stays quiet.
            if !v.provably_exceeds_bits(8) || reported.contains(dest.as_str()) {
                continue;
            }
            reported.insert(dest.to_string());
            out.push(Finding {
                cwe: Cwe::IntegerTruncation,
                function: func.name.to_string(),
                span: inst.span,
                detector: "absint-width".into(),
                message: format!(
                    "store into 8-bit `{dest}` of a value proven outside the char range ({v})"
                ),
                confidence: Confidence::High,
                evidence: Some(Evidence {
                    domain: domain.name().into(),
                    facts: facts_for(&pre, &[value]),
                    claim: format!(
                        "the stored expression evaluates to {v}, entirely outside [-128, 127]"
                    ),
                }),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Provenance checker: format string (CWE-134), command injection (CWE-78)
// ---------------------------------------------------------------------------

/// Sinks the provenance checker proves kind-mismatches against: the callee,
/// the kind bit its first argument must be sanitized for, the class a
/// violation evidences, and the human name of the kind.
const PROVENANCE_SINKS: [(&str, u8, Cwe, &str); 4] = [
    ("printf_fmt", KIND_FORMAT, Cwe::FormatString, "format"),
    ("system", KIND_COMMAND, Cwe::CommandInjection, "command"),
    ("exec_shell", KIND_COMMAND, Cwe::CommandInjection, "command"),
    ("popen", KIND_COMMAND, Cwe::CommandInjection, "command"),
];

fn check_sinks(
    func: &Function,
    cfg: &Cfg,
    domain: &ProvenanceDomain,
    analysis: &DomainAnalysis<Provenance>,
    out: &mut Vec<Finding>,
) {
    let reachable = cfg.reachable();
    let mut reported: BTreeSet<(u32, u32)> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for e in inst_exprs(&inst.inst) {
                walk(e, &mut |e| {
                    let ExprKind::Call(name, args) = &e.kind else { return };
                    let Some((_, kind_bit, cwe, kind_name)) =
                        PROVENANCE_SINKS.iter().find(|(sink, ..)| sink == name)
                    else {
                        return;
                    };
                    let Some(arg) = args.first() else { return };
                    let v = domain.eval(&pre, arg);
                    let (confidence, how) = if v.sink_is_proven_bug(*kind_bit) {
                        (Confidence::High, "on every path")
                    } else if v.sink_is_possible_bug(*kind_bit) {
                        (Confidence::Medium, "on at least one path")
                    } else {
                        return;
                    };
                    if !reported.insert((inst.span.start as u32, cwe.id())) {
                        return;
                    }
                    out.push(Finding {
                        cwe: *cwe,
                        function: func.name.to_string(),
                        span: inst.span,
                        detector: "absint-provenance".into(),
                        message: format!(
                            "attacker-controlled data reaches the {kind_name} position of \
                             `{name}` {how}, never sanitized for `{kind_name}`"
                        ),
                        confidence,
                        evidence: Some(Evidence {
                            domain: domain.name().into(),
                            facts: facts_for(&pre, &[arg]),
                            claim: format!(
                                "the argument is {v} at the `{name}` sink — its sanitizer mask \
                                 never covered `{kind_name}`"
                            ),
                        }),
                    });
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::RuleEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::{parse, AnalysisCache};
    use vulnman_synth::emit::EmitCtx;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::templates::semantic::{semantic_gap_pair, GAP_CLASSES};
    use vulnman_synth::tier::Tier;

    #[test]
    fn semantic_suite_catches_gap_templates_and_passes_fixes() {
        let engine = SemanticEngine::new();
        let mut styles = vec![StyleProfile::mainstream()];
        styles.extend(StyleProfile::internal_teams());
        for style in &styles {
            for cwe in GAP_CLASSES {
                for seed in 0..6u64 {
                    let mut rng = StdRng::seed_from_u64(seed * 31 + cwe.id() as u64);
                    let mut ctx = EmitCtx::new(style, Tier::Curated, &mut rng);
                    let pair = semantic_gap_pair(cwe, &mut ctx);
                    let fv = engine.scan_source(&pair.vulnerable).unwrap();
                    let hit = fv.iter().find(|f| f.cwe == cwe);
                    assert!(
                        hit.is_some(),
                        "{cwe} seed {seed} team {}: vulnerable unit missed:\n{}",
                        style.team,
                        pair.vulnerable
                    );
                    assert!(
                        hit.unwrap().evidence.is_some(),
                        "{cwe}: semantic findings must carry evidence"
                    );
                    let ff = engine.scan_source(&pair.fixed).unwrap();
                    assert!(
                        ff.iter().all(|f| f.cwe != cwe),
                        "{cwe} seed {seed} team {}: fixed unit flagged:\n{}\n{ff:?}",
                        style.team,
                        pair.fixed
                    );
                }
            }
        }
    }

    #[test]
    fn rule_suite_stays_blind_to_gap_templates() {
        // The whole point of the semantic templates: the syntactic rule
        // suite has no trigger for constant-flow bugs.
        let rules = RuleEngine::default_suite();
        let style = StyleProfile::mainstream();
        for cwe in GAP_CLASSES {
            for seed in 0..6u64 {
                let mut rng = StdRng::seed_from_u64(seed * 13 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = semantic_gap_pair(cwe, &mut ctx);
                let findings = rules.scan_source(&pair.vulnerable).unwrap();
                assert!(
                    findings.iter().all(|f| f.cwe != cwe),
                    "{cwe} seed {seed}: rules unexpectedly caught a semantic template:\n{}",
                    pair.vulnerable
                );
            }
        }
    }

    #[test]
    fn no_false_positives_on_benign_and_fixed_classic_corpus() {
        use vulnman_synth::generator::SampleGenerator;
        let engine = SemanticEngine::new();
        let mut g = SampleGenerator::new(41, StyleProfile::mainstream());
        for _ in 0..30 {
            let b = g.benign_risky(Tier::Curated, "p");
            let findings = engine.scan_source(&b.source).unwrap();
            assert!(
                findings.is_empty(),
                "semantic checker flagged safe code:\n{}\n{findings:?}",
                b.source
            );
        }
        // Classic fixed templates must also stay clean.
        let style = StyleProfile::mainstream();
        for cwe in Cwe::CLASSIC {
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(seed * 7 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = vulnman_synth::templates::generate(cwe, &mut ctx);
                let ff = engine.scan_source(&pair.fixed).unwrap();
                assert!(
                    ff.iter().all(|f| f.cwe != cwe),
                    "{cwe} seed {seed}: semantic checker flagged the fixed unit:\n{}\n{ff:?}",
                    pair.fixed
                );
            }
        }
    }

    #[test]
    fn evidence_replays_the_abstract_state() {
        let engine = SemanticEngine::new();
        let findings = engine
            .scan_source("void f() { int a[4]; int i = 9; int x = a[i]; record_metric(\"x\", x); }")
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::OutOfBoundsRead).expect("OOB read found");
        let ev = f.evidence.as_ref().expect("evidence attached");
        assert_eq!(ev.domain, "interval");
        assert!(
            ev.facts.iter().any(|fa| fa.var == "i" && fa.value == "[9, 9]"),
            "the index variable's interval is the evidence: {ev:?}"
        );
        assert!(ev.claim.contains("[0, 4)"), "claim names the valid range: {}", ev.claim);
        // The Display form is the lint-output trace.
        let trace = ev.to_string();
        assert!(trace.contains("interval domain:"), "{trace}");
        assert!(trace.contains("i = [9, 9]"), "{trace}");
    }

    #[test]
    fn division_by_zero_and_overflow_are_proven_not_guessed() {
        let engine = SemanticEngine::new();
        // Interprocedural: the zero flows through a call summary.
        let findings = engine
            .scan_source(
                "int stride() { int k = 5; return k - 5; }\n\
                 void f() { int total = 100; int d = stride(); int q = total / d; \
                 record_metric(\"q\", q); }",
            )
            .unwrap();
        assert!(
            findings.iter().any(|f| f.cwe == Cwe::DivideByZero),
            "zero divisor through a summary: {findings:?}"
        );
        // A merely-possible zero is not reported (must, not may).
        let findings = engine
            .scan_source("void f(int n) { int q = 10 / n; record_metric(\"q\", q); }")
            .unwrap();
        assert!(findings.is_empty(), "unknown divisor must not be flagged: {findings:?}");
        // Overflow: a product proven outside i64.
        let findings = engine
            .scan_source(
                "void f() { int big = 9000000000000000000; int x = big * 9; \
                 record_metric(\"x\", x); }",
            )
            .unwrap();
        assert!(
            findings.iter().any(|f| f.cwe == Cwe::IntegerOverflow),
            "proven overflow: {findings:?}"
        );
    }

    #[test]
    fn maybe_states_report_at_medium_confidence() {
        let engine = SemanticEngine::new();
        let findings = engine
            .scan_source(
                "void f(int flag) { char* p = 0; if (flag > 0) { p = make_buf(8); } \
                 p[0] = 'x'; }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::NullDereference).expect("476 found");
        assert_eq!(f.confidence, Confidence::Medium, "maybe-null is a merge, not a must");
        let findings = engine.scan_source("void f() { char* p = 0; p[0] = 'x'; }").unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::NullDereference).expect("476 found");
        assert_eq!(f.confidence, Confidence::High, "definite null is a must");
    }

    #[test]
    fn double_free_and_use_after_free_are_proven_by_ownership() {
        let engine = SemanticEngine::new();
        // Release of an already-released handle is a must-double-free.
        let findings = engine
            .scan_source(
                "void f() { char* p = alloc_buffer(8); release_block(p); release_block(p); }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::DoubleFree).expect("415 found");
        assert_eq!(f.confidence, Confidence::High, "second release is a must");
        assert_eq!(f.detector, "absint-ownership");
        let ev = f.evidence.as_ref().expect("evidence attached");
        assert_eq!(ev.domain, "ownership");
        assert!(ev.facts.iter().any(|fa| fa.var == "p"), "the handle is the evidence: {ev:?}");
        // Releasing a handle whose ownership moved elsewhere is the same bug.
        let findings = engine
            .scan_source(
                "void f() { char* p = alloc_buffer(8); store_handle(p); release_block(p); }",
            )
            .unwrap();
        assert!(
            findings.iter().any(|f| f.cwe == Cwe::DoubleFree && f.confidence == Confidence::High),
            "release after handoff: {findings:?}"
        );
        // Any other read of a released handle is a use-after-free.
        let findings = engine
            .scan_source(
                "void f() { char* p = alloc_buffer(8); release_block(p); send_data(p, 8); }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::UseAfterFree).expect("416 found");
        assert_eq!(f.confidence, Confidence::High);
        // A one-sided release merges to maybe-freed: reported, at Medium.
        let findings = engine
            .scan_source(
                "void f(int flag) { char* p = alloc_buffer(8); \
                 if (flag > 0) { release_block(p); } send_data(p, 8); }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::UseAfterFree).expect("416 found");
        assert_eq!(f.confidence, Confidence::Medium, "maybe-freed is a merge, not a must");
        // A re-allocated handle is owned again: no finding.
        let findings = engine
            .scan_source(
                "void f() { char* p = alloc_buffer(8); release_block(p); \
                 p = alloc_buffer(16); send_data(p, 16); release_block(p); }",
            )
            .unwrap();
        assert!(findings.is_empty(), "re-allocation restores ownership: {findings:?}");
    }

    #[test]
    fn toctou_window_is_traced_through_interleavings() {
        let engine = SemanticEngine::new();
        // Flag-indirected check/use: the syntactic race rule needs the check
        // inside the branch condition, so only the trace walk sees this.
        let findings = engine
            .scan_source(
                "void f() { char* path = read_input(); int ok = file_exists(path); \
                 if (ok > 0) { int fd = open_file(path); record_metric(\"fd\", fd); } }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::Toctou).expect("367 found");
        assert_eq!(f.confidence, Confidence::High);
        let ev = f.evidence.as_ref().expect("evidence attached");
        assert_eq!(ev.domain, "trace-interleaving");
        assert!(
            ev.facts.iter().any(|fa| fa.var == "path" && fa.value.contains("window")),
            "the stale window count is the evidence: {ev:?}"
        );
        assert!(ev.claim.contains("open_file"), "claim names the trusting use: {}", ev.claim);
        // Re-deriving the path between check and use closes the window.
        let findings = engine
            .scan_source(
                "void f() { char* path = read_input(); int ok = file_exists(path); \
                 path = read_input(); int fd = open_file(path); record_metric(\"fd\", fd); }",
            )
            .unwrap();
        assert!(
            findings.iter().all(|f| f.cwe != Cwe::Toctou),
            "re-derivation kills the window: {findings:?}"
        );
        // The atomic open never trusts a prior check: no finding.
        let findings = engine
            .scan_source(
                "void f() { char* path = read_input(); \
                 int fd = open_file_atomic(path); record_metric(\"fd\", fd); }",
            )
            .unwrap();
        assert!(findings.iter().all(|f| f.cwe != Cwe::Toctou), "{findings:?}");
        // A use on a path with no preceding check is also clean.
        let findings = engine
            .scan_source(
                "void f() { char* path = read_input(); int fd = open_file(path); \
                 record_metric(\"fd\", fd); }",
            )
            .unwrap();
        assert!(findings.iter().all(|f| f.cwe != Cwe::Toctou), "{findings:?}");
    }

    #[test]
    fn truncation_is_proven_by_width_domain() {
        let engine = SemanticEngine::new();
        let findings = engine
            .scan_source(
                "void f() { int b = 40; int scaled = b * 8; char flag = scaled; \
                 record_metric(\"flag\", flag); }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::IntegerTruncation).expect("197 found");
        assert_eq!(f.confidence, Confidence::High);
        assert_eq!(f.detector, "absint-width");
        let ev = f.evidence.as_ref().expect("evidence attached");
        assert_eq!(ev.domain, "width");
        assert!(ev.claim.contains("[-128, 127]"), "claim names the window: {}", ev.claim);
        // Clamping before the store proves the value fits: no finding.
        let findings = engine
            .scan_source(
                "void f() { int b = 40; int scaled = b * 8; \
                 if (scaled > 127) { scaled = 127; } char flag = scaled; \
                 record_metric(\"flag\", flag); }",
            )
            .unwrap();
        assert!(findings.iter().all(|f| f.cwe != Cwe::IntegerTruncation), "{findings:?}");
        // A merely-possible truncation is not reported (must, not may).
        let findings =
            engine.scan_source("void f(int n) { char c = n; record_metric(\"c\", c); }").unwrap();
        assert!(findings.iter().all(|f| f.cwe != Cwe::IntegerTruncation), "{findings:?}");
    }

    #[test]
    fn kind_mismatched_sanitizers_are_proven_by_provenance() {
        let engine = SemanticEngine::new();
        // SQL-escaping a shell command leaves the command bit unsanitized.
        let findings = engine
            .scan_source(
                "void f() { char* cmd = read_input(); char* c = escape_sql(cmd); \
                 exec_shell(c); }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::CommandInjection).expect("78 found");
        assert_eq!(f.confidence, Confidence::High, "kind mismatch is a must");
        assert_eq!(f.detector, "absint-provenance");
        let ev = f.evidence.as_ref().expect("evidence attached");
        assert_eq!(ev.domain, "provenance");
        assert!(ev.claim.contains("command"), "claim names the missing kind: {}", ev.claim);
        // Same shape at the format sink.
        let findings = engine
            .scan_source(
                "void f() { char* m = getenv(\"APP_MSG\"); char* s = escape_html(m); \
                 printf_fmt(s); }",
            )
            .unwrap();
        assert!(
            findings.iter().any(|f| f.cwe == Cwe::FormatString && f.confidence == Confidence::High),
            "html-escaped format string: {findings:?}"
        );
        // The matching sanitizer discharges the proof.
        let findings = engine
            .scan_source(
                "void f() { char* cmd = read_input(); char* c = escape_shell(cmd); \
                 exec_shell(c); }",
            )
            .unwrap();
        assert!(findings.iter().all(|f| f.cwe != Cwe::CommandInjection), "{findings:?}");
        // Clean-on-one-path merges to maybe-external: reported at Medium.
        let findings = engine
            .scan_source(
                "void f(int flag) { char* x = \"status\"; \
                 if (flag > 0) { x = read_input(); } exec_shell(x); }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::CommandInjection).expect("78 found");
        assert_eq!(f.confidence, Confidence::Medium, "maybe-external is a merge, not a must");
    }

    #[test]
    fn cached_scan_is_identical_and_warm() {
        let engine = SemanticEngine::new();
        let src = "void f() { int a[4]; int i = 9; a[i] = 1; consume_table(a, 4); }";
        let cache = AnalysisCache::new();
        let cold = engine.scan_source_cached(src, &cache).unwrap();
        let warm = engine.scan_source_cached(src, &cache).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, engine.scan_source(src).unwrap());
        assert!(!cold.is_empty());
        // Different solver configs must not share cache entries.
        let other = SemanticEngine::with_config(SolverConfig {
            widening_threshold: 2,
            max_iterations: 10_000,
        });
        assert_ne!(engine.fingerprint(), other.fingerprint());
    }

    #[test]
    fn absint_instruments_are_schema_stable() {
        let metrics = Registry::new();
        register_absint_instruments(&metrics);
        let engine = SemanticEngine::new();
        let program = parse("void f() { int x; record_metric(\"x\", x); }").unwrap();
        let findings = engine.scan_with_metrics(&program, &metrics);
        assert_eq!(findings.len(), 1);
        let json = serde_json::to_string(&metrics.snapshot()).unwrap();
        for key in [
            "absint.solver.iterations",
            "absint.solver.widenings",
            "absint.solver.nonconverged",
            "absint.findings",
            "absint.domain.interval_micros",
            "absint.domain.nullness_micros",
            "absint.domain.init_micros",
            "absint.domain.ownership_micros",
            "absint.domain.width_micros",
            "absint.domain.provenance_micros",
        ] {
            assert!(json.contains(key), "{key} must be pre-registered");
        }
        assert!(metrics.counter("absint.solver.iterations").get() > 0);
        assert_eq!(metrics.counter("absint.findings").get(), 1);
    }
}
