//! Semantic checkers: detectors backed by the abstract-interpretation
//! framework in [`vulnman_lang::absint`].
//!
//! Where the rule-based suite in [`crate::detectors`] pattern-matches on
//! syntax (known source functions, known loop shapes), these checkers prove
//! facts about program *values* — an index interval entirely outside the
//! array, a pointer that is the literal null on some path, a variable read
//! before any initialization — and only report when the abstract state
//! constitutes a proof. Every finding therefore carries
//! [`Evidence`](crate::finding::Evidence): the abstract facts at the report
//! point plus the claim derived from them, reproducible by re-running the
//! named domain to the same point.
//!
//! The domains are tuned so "maybe" verdicts only arise from *tracked*
//! merges (a literal null joined with a non-null path; an initialized path
//! joined with an uninitialized one) — the lattice top is never
//! report-worthy. That keeps the suite false-positive-free on the synthetic
//! corpus while catching the semantic template classes the rule suite is
//! blind to by construction.

use crate::detectors::StaticDetector;
use crate::finding::{Confidence, Evidence, EvidenceFact, Finding};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;
use vulnman_lang::absint::domain::inst_reads;
use vulnman_lang::absint::{
    analyze_program_parallel, Domain, DomainAnalysis, Env, Init, InitDomain, Interval,
    IntervalDomain, Nullness, NullnessDomain, SolverConfig, SolverStats,
};
use vulnman_lang::ast::{BinOp, Expr, ExprKind, Function, LValue, Program, UnOp};
use vulnman_lang::cfg::{Cfg, CfgInst};
use vulnman_lang::incremental::{
    analyze_program_incremental_in, IncrementalContext, IncrementalTrace,
};
use vulnman_obs::Registry;
use vulnman_synth::cwe::Cwe;

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// The full result of a semantic scan: findings plus solver telemetry.
#[derive(Debug, Clone)]
pub struct SemanticScan {
    /// Findings, sorted by `(span.start, cwe)`; each carries evidence.
    pub findings: Vec<Finding>,
    /// Accumulated fixpoint statistics across all three domain passes.
    pub stats: SolverStats,
    /// Wall time of the interval pass (solver + checker), in microseconds.
    pub interval_micros: u64,
    /// Wall time of the nullness pass, in microseconds.
    pub nullness_micros: u64,
    /// Wall time of the definite-initialization pass, in microseconds.
    pub init_micros: u64,
}

/// The result of an incremental semantic scan: findings and statistics
/// byte-identical to [`SemanticEngine::analyze`], plus the per-function
/// recompute trace (no wall-clock fields — incremental results must stay
/// comparable across runs and cache states).
#[derive(Debug, Clone)]
pub struct IncrementalSemanticScan {
    /// Findings, sorted by `(span.start, cwe)`; each carries evidence.
    pub findings: Vec<Finding>,
    /// Accumulated fixpoint statistics across all three domain passes
    /// (cached components contribute their recorded statistics).
    pub stats: SolverStats,
    /// Which functions any domain pass re-solved vs. reused.
    pub trace: IncrementalTrace,
}

/// Runs the three abstract domains over a program and reports semantic
/// findings with machine-checkable evidence.
///
/// Implements [`StaticDetector`] so it plugs into the same registries as the
/// rule suite, but it is deliberately *not* part of
/// [`RuleEngine::default_suite`](crate::detectors::RuleEngine::default_suite):
/// the differential oracle treats rules and semantics as independent views.
#[derive(Debug, Clone, Copy)]
pub struct SemanticEngine {
    config: SolverConfig,
    jobs: usize,
}

impl SemanticEngine {
    /// An engine with the default solver configuration.
    pub fn new() -> Self {
        SemanticEngine { config: SolverConfig::default(), jobs: 1 }
    }

    /// An engine with custom widening/iteration knobs.
    pub fn with_config(config: SolverConfig) -> Self {
        SemanticEngine { config, jobs: 1 }
    }

    /// Solves per-function fixpoints on up to `jobs` worker threads via
    /// [`analyze_program_parallel`]. Findings, summaries, and statistics
    /// are byte-identical for every value, so `jobs` is deliberately not
    /// part of [`SemanticEngine::fingerprint`] — cached results are shared
    /// across worker counts. Small programs always solve sequentially.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// A 64-bit fingerprint of the engine configuration, used as the
    /// analysis-cache config key (same FNV construction as
    /// [`RuleEngine::fingerprint`](crate::detectors::RuleEngine::fingerprint)).
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        for b in "semantic-suite".bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        for v in [self.config.widening_threshold as u64, self.config.max_iterations] {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        }
        h
    }

    /// Runs all three domain passes and returns findings plus telemetry.
    pub fn analyze(&self, program: &Program) -> SemanticScan {
        let mut findings = Vec::new();
        let mut stats = SolverStats { converged: true, ..SolverStats::default() };

        let t = Instant::now();
        let pa = analyze_program_parallel::<IntervalDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| IntervalDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_intervals(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let interval_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<NullnessDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |summaries| NullnessDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                check_nullness(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let nullness_micros = t.elapsed().as_micros() as u64;

        let t = Instant::now();
        let pa = analyze_program_parallel::<InitDomain, _, _>(
            program,
            self.config,
            self.jobs,
            |_| InitDomain,
            |func, cfg, domain, analysis| {
                check_init(func, cfg, domain, analysis, &mut findings);
            },
        );
        stats.absorb(&pa.stats);
        let init_micros = t.elapsed().as_micros() as u64;

        findings.sort_by_key(|f| (f.span.start, f.cwe.id()));
        SemanticScan { findings, stats, interval_micros, nullness_micros, init_micros }
    }

    /// Parses and scans source text.
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source(&self, source: &str) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        Ok(self.scan(&vulnman_lang::parse(source)?))
    }

    /// Parses and scans through a content-addressed cache under the
    /// `"absint-findings"` kind: warm runs skip the fixpoint entirely.
    /// Results are identical to [`SemanticEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source_cached(
        &self,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        self.scan_source_cached_keyed(
            vulnman_lang::AnalysisCache::content_key(source),
            source,
            cache,
        )
    }

    /// [`SemanticEngine::scan_source_cached`] with a precomputed
    /// [`content_key`](vulnman_lang::AnalysisCache::content_key), so callers
    /// that consult several cache tables for the same sample hash its source
    /// once. Results are identical to [`SemanticEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C.
    pub fn scan_source_cached_keyed(
        &self,
        content_key: u64,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<Vec<Finding>, vulnman_lang::ParseError> {
        let program = cache.parse_keyed(content_key, source)?;
        let findings =
            cache.analysis_keyed(content_key, "absint-findings", self.fingerprint(), || {
                self.scan(&program)
            });
        Ok((*findings).clone())
    }

    /// [`SemanticEngine::analyze`] through the per-stage incremental
    /// tables of `cache`: CFGs, summaries, and findings of functions whose
    /// inputs are unchanged since a previous call are reused instead of
    /// re-solved (see [`vulnman_lang::incremental`]). Findings and solver
    /// statistics are byte-identical to the batch path; the returned trace
    /// says which functions were actually re-analyzed.
    pub fn analyze_incremental(
        &self,
        program: &Program,
        cache: &vulnman_lang::AnalysisCache,
    ) -> IncrementalSemanticScan {
        // The call graph and function fingerprints are pass-independent;
        // build them once and share across all three domain passes.
        self.analyze_incremental_in(&IncrementalContext::new(program), program, cache)
    }

    fn analyze_incremental_in(
        &self,
        ctx: &IncrementalContext,
        program: &Program,
        cache: &vulnman_lang::AnalysisCache,
    ) -> IncrementalSemanticScan {
        let base = self.fingerprint();
        let mut findings = Vec::new();
        let mut stats = SolverStats { converged: true, ..SolverStats::default() };
        let mut trace = IncrementalTrace::default();

        let run = analyze_program_incremental_in::<IntervalDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x01,
            |summaries| IntervalDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_intervals(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<NullnessDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x02,
            |summaries| NullnessDomain::with_summaries(summaries.clone()),
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_nullness(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        let run = analyze_program_incremental_in::<InitDomain, _, _, Vec<Finding>>(
            ctx,
            program,
            cache,
            self.config,
            base ^ 0x03,
            |_| InitDomain,
            |func, cfg, domain, analysis| {
                let mut out = Vec::new();
                check_init(func, cfg, domain, analysis, &mut out);
                out
            },
        );
        stats.absorb(&run.analysis.stats);
        trace.merge(&run.trace);
        findings.extend(run.payloads.into_iter().flat_map(|(_, f)| f));

        findings.sort_by_key(|f| (f.span.start, f.cwe.id()));
        IncrementalSemanticScan { findings, stats, trace }
    }

    /// Parses (through the [`Stage::Lex`](vulnman_lang::Stage) and
    /// [`Stage::Parse`](vulnman_lang::Stage) tables) and scans `source`
    /// incrementally. Results are identical to
    /// [`SemanticEngine::scan_source`].
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` is not valid mini-C (cached, so
    /// malformed resubmissions fail at the lex/parse stage without
    /// re-running anything downstream).
    pub fn scan_source_incremental(
        &self,
        source: &str,
        cache: &vulnman_lang::AnalysisCache,
    ) -> Result<IncrementalSemanticScan, vulnman_lang::ParseError> {
        let key = vulnman_lang::AnalysisCache::content_key(source);
        let lexed = cache.stage(vulnman_lang::Stage::Lex, key, || {
            vulnman_lang::lexer::lex(source).map(|out| out.tokens.len())
        });
        if let Err(e) = &*lexed {
            return Err(e.clone());
        }
        let program = cache.parse_stage(key, source)?;
        // The source is in hand, so fingerprint functions from their raw
        // source slices — far cheaper than rendering each AST.
        let ctx = IncrementalContext::with_source(&program, source);
        Ok(self.analyze_incremental_in(&ctx, &program, cache))
    }

    /// Scans and reports solver telemetry through the pre-registered
    /// `absint.*` instruments (see [`register_absint_instruments`]).
    pub fn scan_with_metrics(&self, program: &Program, metrics: &Registry) -> Vec<Finding> {
        let scan = self.analyze(program);
        metrics.counter("absint.solver.iterations").add(scan.stats.iterations);
        metrics.counter("absint.solver.widenings").add(scan.stats.widenings);
        if !scan.stats.converged {
            metrics.counter("absint.solver.nonconverged").add(1);
        }
        metrics.counter("absint.findings").add(scan.findings.len() as u64);
        metrics.histogram("absint.domain.interval_micros").observe(scan.interval_micros);
        metrics.histogram("absint.domain.nullness_micros").observe(scan.nullness_micros);
        metrics.histogram("absint.domain.init_micros").observe(scan.init_micros);
        scan.findings
    }
}

/// Detection counts for one CWE class on the fixed semantic-gap corpus —
/// one row of [`AbsintBaseline`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// CWE id (e.g. 125).
    pub cwe: u32,
    /// Vulnerable samples where the semantic suite reported this class.
    pub true_positives: usize,
    /// Fixed twins where the suite still reported this class.
    pub false_positives: usize,
}

/// Committed per-CWE detection baseline for the semantic checker suite
/// (`tests/absint_baseline.json`). The regression gate fails when any
/// class's true positives drop below — or false positives rise above — the
/// committed numbers; conscious improvements regenerate the file instead.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbsintBaseline {
    /// One entry per semantic-gap CWE class, sorted by id.
    pub entries: Vec<BaselineEntry>,
}

impl Default for SemanticEngine {
    fn default() -> Self {
        SemanticEngine::new()
    }
}

impl StaticDetector for SemanticEngine {
    fn name(&self) -> &'static str {
        "semantic-suite"
    }

    fn cwes(&self) -> Vec<Cwe> {
        vec![
            Cwe::OutOfBoundsWrite,
            Cwe::OutOfBoundsRead,
            Cwe::IntegerOverflow,
            Cwe::DivideByZero,
            Cwe::NullDereference,
            Cwe::UninitializedUse,
        ]
    }

    fn scan(&self, program: &Program) -> Vec<Finding> {
        self.analyze(program).findings
    }
}

/// Pre-registers every `absint.*` instrument the semantic engine can
/// produce, so exported snapshots have a stable schema even when a counter
/// never fires (the same pattern as the `oracle.*` and `fault.*` families).
pub fn register_absint_instruments(metrics: &Registry) {
    metrics.counter("absint.solver.iterations");
    metrics.counter("absint.solver.widenings");
    metrics.counter("absint.solver.nonconverged");
    metrics.counter("absint.findings");
    metrics.histogram("absint.domain.interval_micros");
    metrics.histogram("absint.domain.nullness_micros");
    metrics.histogram("absint.domain.init_micros");
}

// ---------------------------------------------------------------------------
// Instruction traversal helpers
// ---------------------------------------------------------------------------

/// Every expression syntactically contained in an instruction (lvalue
/// sub-expressions included).
fn inst_exprs(inst: &CfgInst) -> Vec<&Expr> {
    match inst {
        CfgInst::Decl { init, .. } => init.iter().collect(),
        CfgInst::Assign { target, value } => {
            let mut out = vec![value];
            match target {
                LValue::Var(_) => {}
                LValue::Deref(e) => out.push(e),
                LValue::Index(base, index) => {
                    out.push(base);
                    out.push(index);
                }
            }
            out
        }
        CfgInst::Expr(e) | CfgInst::Branch(e) => vec![e],
        CfgInst::Return(e) => e.iter().collect(),
    }
}

/// Depth-first walk over an expression tree.
fn walk<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match &e.kind {
        ExprKind::Unary(_, inner) => walk(inner, f),
        ExprKind::Binary(_, l, r) => {
            walk(l, f);
            walk(r, f);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                walk(a, f);
            }
        }
        ExprKind::Index(base, index) => {
            walk(base, f);
            walk(index, f);
        }
        ExprKind::Int(_) | ExprKind::Char(_) | ExprKind::Str(_) | ExprKind::Var(_) => {}
    }
}

/// One `base[index]` access with direction.
struct IndexAccess<'a> {
    base: &'a str,
    index: &'a Expr,
    is_write: bool,
}

/// All array/pointer index accesses in an instruction whose base is a plain
/// variable.
fn index_accesses(inst: &CfgInst) -> Vec<IndexAccess<'_>> {
    let mut out = Vec::new();
    if let CfgInst::Assign { target: LValue::Index(base, index), .. } = inst {
        if let ExprKind::Var(name) = &base.kind {
            out.push(IndexAccess { base: name, index, is_write: true });
        }
    }
    for e in inst_exprs(inst) {
        walk(e, &mut |e| {
            if let ExprKind::Index(base, index) = &e.kind {
                if let ExprKind::Var(name) = &base.kind {
                    out.push(IndexAccess { base: name, index, is_write: false });
                }
            }
        });
    }
    out
}

/// All divisor sub-expressions (`/` and `%` right operands) in an
/// instruction.
fn divisors(inst: &CfgInst) -> Vec<&Expr> {
    let mut out = Vec::new();
    for e in inst_exprs(inst) {
        walk(e, &mut |e| {
            if let ExprKind::Binary(BinOp::Div | BinOp::Rem, _, r) = &e.kind {
                out.push(&**r);
            }
        });
    }
    out
}

/// Variables dereferenced by an instruction (`*p`, `p[i]`, and stores
/// through either form).
fn deref_targets(inst: &CfgInst) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    if let CfgInst::Assign { target: LValue::Deref(e) | LValue::Index(e, _), .. } = inst {
        if let ExprKind::Var(name) = &e.kind {
            out.insert(name.as_str());
        }
    }
    for e in inst_exprs(inst) {
        walk(e, &mut |e| match &e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => {
                if let ExprKind::Var(name) = &inner.kind {
                    out.insert(name.as_str());
                }
            }
            ExprKind::Index(base, _) => {
                if let ExprKind::Var(name) = &base.kind {
                    out.insert(name.as_str());
                }
            }
            _ => {}
        });
    }
    out
}

/// Evidence facts for every variable read by `exprs`, rendered from the
/// pre-state of the report point.
fn facts_for<V: vulnman_lang::absint::AbstractValue + std::fmt::Display>(
    pre: &Env<V>,
    exprs: &[&Expr],
) -> Vec<EvidenceFact> {
    let mut vars: BTreeSet<&str> = BTreeSet::new();
    for e in exprs {
        vars.extend(e.read_vars());
    }
    vars.into_iter()
        .map(|v| EvidenceFact { var: v.to_string(), value: pre.get(v).to_string() })
        .collect()
}

// ---------------------------------------------------------------------------
// Interval checkers: OOB (CWE-787/125), div-by-zero (CWE-369), overflow (190)
// ---------------------------------------------------------------------------

fn check_intervals(
    func: &Function,
    cfg: &Cfg,
    domain: &IntervalDomain,
    analysis: &DomainAnalysis<Interval>,
    out: &mut Vec<Finding>,
) {
    // Declared array lengths in this function. The language has
    // function-level scope, so one map per function suffices.
    let mut arrays: BTreeMap<&str, i128> = BTreeMap::new();
    for block in &cfg.blocks {
        for inst in &block.insts {
            if let CfgInst::Decl { name, ty, .. } = &inst.inst {
                if let Some(n) = ty.array_len() {
                    arrays.insert(name, n as i128);
                }
            }
        }
    }

    let reachable = cfg.reachable();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for access in index_accesses(&inst.inst) {
                let Some(&len) = arrays.get(access.base) else { continue };
                let iv = domain.eval(&pre, access.index);
                // Must-style gate: report only when *every* possible index
                // is outside `[0, len)` — a proof, not a possibility.
                if iv.is_bottom() || (iv.lo() < len && iv.hi() >= 0) {
                    continue;
                }
                let (cwe, verb) = if access.is_write {
                    (Cwe::OutOfBoundsWrite, "write to")
                } else {
                    (Cwe::OutOfBoundsRead, "read of")
                };
                let claim = format!(
                    "index into `{}` is {iv}, entirely outside the valid range [0, {len})",
                    access.base
                );
                out.push(Finding {
                    cwe,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-interval".into(),
                    message: format!(
                        "{verb} `{}[...]` with an index proven out of bounds ({iv} vs length \
                         {len})",
                        access.base
                    ),
                    confidence: Confidence::High,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: facts_for(&pre, &[access.index]),
                        claim,
                    }),
                });
            }
            for divisor in divisors(&inst.inst) {
                let dv = domain.eval(&pre, divisor);
                if !dv.is_point(0) {
                    continue;
                }
                out.push(Finding {
                    cwe: Cwe::DivideByZero,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-interval".into(),
                    message: "division by a divisor proven to be exactly zero".into(),
                    confidence: Confidence::High,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: facts_for(&pre, &[divisor]),
                        claim: "the divisor evaluates to [0, 0] on every path reaching this \
                                division"
                            .into(),
                    }),
                });
            }
            if let CfgInst::Decl { init: Some(value), .. } | CfgInst::Assign { value, .. } =
                &inst.inst
            {
                let v = domain.eval(&pre, value);
                if v.fits_i64() {
                    continue;
                }
                out.push(Finding {
                    cwe: Cwe::IntegerOverflow,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-interval".into(),
                    message: format!(
                        "assigned value {v} lies entirely outside the 64-bit integer range"
                    ),
                    confidence: Confidence::High,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: facts_for(&pre, &[value]),
                        claim: format!("the assigned expression evaluates to {v}"),
                    }),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Nullness checker: null dereference (CWE-476)
// ---------------------------------------------------------------------------

fn check_nullness(
    func: &Function,
    cfg: &Cfg,
    domain: &NullnessDomain,
    analysis: &DomainAnalysis<Nullness>,
    out: &mut Vec<Finding>,
) {
    let reachable = cfg.reachable();
    // One finding per variable per function: later dereferences of the same
    // null pointer add no information.
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for name in deref_targets(&inst.inst) {
                let v = pre.get(name);
                if !v.is_derefable_bug() || reported.contains(name) {
                    continue;
                }
                reported.insert(name.to_string());
                let (confidence, how) = match v {
                    Nullness::Null => (Confidence::High, "is the literal null on every path"),
                    _ => (
                        Confidence::Medium,
                        "may be the literal null: a null-valued path \
                           merges in unguarded",
                    ),
                };
                out.push(Finding {
                    cwe: Cwe::NullDereference,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-nullness".into(),
                    message: format!("dereference of `{name}`, which {how}"),
                    confidence,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: vec![EvidenceFact { var: name.to_string(), value: v.to_string() }],
                        claim: format!("`{name}` is {v} at the dereference"),
                    }),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Definite-initialization checker: use of uninitialized variable (CWE-457)
// ---------------------------------------------------------------------------

fn check_init(
    func: &Function,
    cfg: &Cfg,
    domain: &InitDomain,
    analysis: &DomainAnalysis<Init>,
    out: &mut Vec<Finding>,
) {
    let reachable = cfg.reachable();
    let mut reported: BTreeSet<String> = BTreeSet::new();
    for (b, &live) in reachable.iter().enumerate() {
        if !live {
            continue;
        }
        for (pre, inst) in analysis.replay(domain, cfg, b) {
            if !pre.is_reachable() {
                continue;
            }
            for name in inst_reads(&inst.inst) {
                let v = pre.get(name);
                if !v.is_read_bug() || reported.contains(name) {
                    continue;
                }
                reported.insert(name.to_string());
                let (confidence, how) = match v {
                    Init::No => (Confidence::High, "is never initialized before this read"),
                    _ => (
                        Confidence::Medium,
                        "is uninitialized on at least one path to this \
                           read",
                    ),
                };
                out.push(Finding {
                    cwe: Cwe::UninitializedUse,
                    function: func.name.to_string(),
                    span: inst.span,
                    detector: "absint-init".into(),
                    message: format!("read of `{name}`, which {how}"),
                    confidence,
                    evidence: Some(Evidence {
                        domain: domain.name().into(),
                        facts: vec![EvidenceFact { var: name.to_string(), value: v.to_string() }],
                        claim: format!("`{name}` is {v} at the read"),
                    }),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::RuleEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_lang::{parse, AnalysisCache};
    use vulnman_synth::emit::EmitCtx;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::templates::semantic::{semantic_gap_pair, GAP_CLASSES};
    use vulnman_synth::tier::Tier;

    #[test]
    fn semantic_suite_catches_gap_templates_and_passes_fixes() {
        let engine = SemanticEngine::new();
        let mut styles = vec![StyleProfile::mainstream()];
        styles.extend(StyleProfile::internal_teams());
        for style in &styles {
            for cwe in GAP_CLASSES {
                for seed in 0..6u64 {
                    let mut rng = StdRng::seed_from_u64(seed * 31 + cwe.id() as u64);
                    let mut ctx = EmitCtx::new(style, Tier::Curated, &mut rng);
                    let pair = semantic_gap_pair(cwe, &mut ctx);
                    let fv = engine.scan_source(&pair.vulnerable).unwrap();
                    let hit = fv.iter().find(|f| f.cwe == cwe);
                    assert!(
                        hit.is_some(),
                        "{cwe} seed {seed} team {}: vulnerable unit missed:\n{}",
                        style.team,
                        pair.vulnerable
                    );
                    assert!(
                        hit.unwrap().evidence.is_some(),
                        "{cwe}: semantic findings must carry evidence"
                    );
                    let ff = engine.scan_source(&pair.fixed).unwrap();
                    assert!(
                        ff.iter().all(|f| f.cwe != cwe),
                        "{cwe} seed {seed} team {}: fixed unit flagged:\n{}\n{ff:?}",
                        style.team,
                        pair.fixed
                    );
                }
            }
        }
    }

    #[test]
    fn rule_suite_stays_blind_to_gap_templates() {
        // The whole point of the semantic templates: the syntactic rule
        // suite has no trigger for constant-flow bugs.
        let rules = RuleEngine::default_suite();
        let style = StyleProfile::mainstream();
        for cwe in GAP_CLASSES {
            for seed in 0..6u64 {
                let mut rng = StdRng::seed_from_u64(seed * 13 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = semantic_gap_pair(cwe, &mut ctx);
                let findings = rules.scan_source(&pair.vulnerable).unwrap();
                assert!(
                    findings.iter().all(|f| f.cwe != cwe),
                    "{cwe} seed {seed}: rules unexpectedly caught a semantic template:\n{}",
                    pair.vulnerable
                );
            }
        }
    }

    #[test]
    fn no_false_positives_on_benign_and_fixed_classic_corpus() {
        use vulnman_synth::generator::SampleGenerator;
        let engine = SemanticEngine::new();
        let mut g = SampleGenerator::new(41, StyleProfile::mainstream());
        for _ in 0..30 {
            let b = g.benign_risky(Tier::Curated, "p");
            let findings = engine.scan_source(&b.source).unwrap();
            assert!(
                findings.is_empty(),
                "semantic checker flagged safe code:\n{}\n{findings:?}",
                b.source
            );
        }
        // Classic fixed templates must also stay clean.
        let style = StyleProfile::mainstream();
        for cwe in Cwe::CLASSIC {
            for seed in 0..4u64 {
                let mut rng = StdRng::seed_from_u64(seed * 7 + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = vulnman_synth::templates::generate(cwe, &mut ctx);
                let ff = engine.scan_source(&pair.fixed).unwrap();
                assert!(
                    ff.iter().all(|f| f.cwe != cwe),
                    "{cwe} seed {seed}: semantic checker flagged the fixed unit:\n{}\n{ff:?}",
                    pair.fixed
                );
            }
        }
    }

    #[test]
    fn evidence_replays_the_abstract_state() {
        let engine = SemanticEngine::new();
        let findings = engine
            .scan_source("void f() { int a[4]; int i = 9; int x = a[i]; record_metric(\"x\", x); }")
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::OutOfBoundsRead).expect("OOB read found");
        let ev = f.evidence.as_ref().expect("evidence attached");
        assert_eq!(ev.domain, "interval");
        assert!(
            ev.facts.iter().any(|fa| fa.var == "i" && fa.value == "[9, 9]"),
            "the index variable's interval is the evidence: {ev:?}"
        );
        assert!(ev.claim.contains("[0, 4)"), "claim names the valid range: {}", ev.claim);
        // The Display form is the lint-output trace.
        let trace = ev.to_string();
        assert!(trace.contains("interval domain:"), "{trace}");
        assert!(trace.contains("i = [9, 9]"), "{trace}");
    }

    #[test]
    fn division_by_zero_and_overflow_are_proven_not_guessed() {
        let engine = SemanticEngine::new();
        // Interprocedural: the zero flows through a call summary.
        let findings = engine
            .scan_source(
                "int stride() { int k = 5; return k - 5; }\n\
                 void f() { int total = 100; int d = stride(); int q = total / d; \
                 record_metric(\"q\", q); }",
            )
            .unwrap();
        assert!(
            findings.iter().any(|f| f.cwe == Cwe::DivideByZero),
            "zero divisor through a summary: {findings:?}"
        );
        // A merely-possible zero is not reported (must, not may).
        let findings = engine
            .scan_source("void f(int n) { int q = 10 / n; record_metric(\"q\", q); }")
            .unwrap();
        assert!(findings.is_empty(), "unknown divisor must not be flagged: {findings:?}");
        // Overflow: a product proven outside i64.
        let findings = engine
            .scan_source(
                "void f() { int big = 9000000000000000000; int x = big * 9; \
                 record_metric(\"x\", x); }",
            )
            .unwrap();
        assert!(
            findings.iter().any(|f| f.cwe == Cwe::IntegerOverflow),
            "proven overflow: {findings:?}"
        );
    }

    #[test]
    fn maybe_states_report_at_medium_confidence() {
        let engine = SemanticEngine::new();
        let findings = engine
            .scan_source(
                "void f(int flag) { char* p = 0; if (flag > 0) { p = make_buf(8); } \
                 p[0] = 'x'; }",
            )
            .unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::NullDereference).expect("476 found");
        assert_eq!(f.confidence, Confidence::Medium, "maybe-null is a merge, not a must");
        let findings = engine.scan_source("void f() { char* p = 0; p[0] = 'x'; }").unwrap();
        let f = findings.iter().find(|f| f.cwe == Cwe::NullDereference).expect("476 found");
        assert_eq!(f.confidence, Confidence::High, "definite null is a must");
    }

    #[test]
    fn cached_scan_is_identical_and_warm() {
        let engine = SemanticEngine::new();
        let src = "void f() { int a[4]; int i = 9; a[i] = 1; consume_table(a, 4); }";
        let cache = AnalysisCache::new();
        let cold = engine.scan_source_cached(src, &cache).unwrap();
        let warm = engine.scan_source_cached(src, &cache).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold, engine.scan_source(src).unwrap());
        assert!(!cold.is_empty());
        // Different solver configs must not share cache entries.
        let other = SemanticEngine::with_config(SolverConfig {
            widening_threshold: 2,
            max_iterations: 10_000,
        });
        assert_ne!(engine.fingerprint(), other.fingerprint());
    }

    #[test]
    fn absint_instruments_are_schema_stable() {
        let metrics = Registry::new();
        register_absint_instruments(&metrics);
        let engine = SemanticEngine::new();
        let program = parse("void f() { int x; record_metric(\"x\", x); }").unwrap();
        let findings = engine.scan_with_metrics(&program, &metrics);
        assert_eq!(findings.len(), 1);
        let json = serde_json::to_string(&metrics.snapshot()).unwrap();
        for key in [
            "absint.solver.iterations",
            "absint.solver.widenings",
            "absint.solver.nonconverged",
            "absint.findings",
            "absint.domain.interval_micros",
            "absint.domain.nullness_micros",
            "absint.domain.init_micros",
        ] {
            assert!(json.contains(key), "{key} must be pre-registered");
        }
        assert!(metrics.counter("absint.solver.iterations").get() > 0);
        assert_eq!(metrics.counter("absint.findings").get(), 1);
    }
}
