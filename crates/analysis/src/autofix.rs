//! Rule-based automatic remediation (the "Auto-Fix" box of Figure 1).
//!
//! The paper observes that "mainstream auto-fix solutions are still developed
//! based on different security rules, particularly for common vulnerabilities
//! that can benefit from a unified approach". This module implements those
//! unified mechanical fixes; classes without a universal fix (use-after-free
//! reordering, TOCTOU restructuring) are deliberately *unsupported* and route
//! to expert recommendation in the workflow engine.

use vulnman_lang::ast::{BinOp, Expr, ExprKind, Function, Program, Stmt, StmtKind, Type};
use vulnman_lang::taint::{TaintAnalysis, TaintConfig};
use vulnman_lang::{parse, print_program, Span};
use vulnman_synth::cwe::Cwe;

/// Rule-based patcher for mechanically fixable CWE classes.
#[derive(Debug, Default)]
pub struct AutoFixer {
    _private: (),
}

impl AutoFixer {
    /// Creates a fixer with the standard rules.
    pub fn new() -> Self {
        AutoFixer::default()
    }

    /// CWE classes this fixer can remediate mechanically.
    pub fn supported_cwes() -> Vec<Cwe> {
        vec![
            Cwe::SqlInjection,
            Cwe::CommandInjection,
            Cwe::CrossSiteScripting,
            Cwe::PathTraversal,
            Cwe::FormatString,
            Cwe::HardcodedCredentials,
            Cwe::NullDereference,
            Cwe::OutOfBoundsWrite,
            Cwe::OutOfBoundsRead,
        ]
    }

    /// Returns `true` if `cwe` has a unified mechanical fix.
    pub fn supports(cwe: Cwe) -> bool {
        Self::supported_cwes().contains(&cwe)
    }

    /// Attempts to fix all instances of `cwe` in `source`.
    ///
    /// Returns the patched source if the class is supported *and* at least
    /// one rewrite was applied; `None` otherwise (unsupported class, parse
    /// failure, or nothing to fix).
    ///
    /// # Examples
    ///
    /// ```
    /// use vulnman_analysis::autofix::AutoFixer;
    /// use vulnman_synth::cwe::Cwe;
    /// let src = r#"void f() { char* q = http_param("id"); exec_query(q); }"#;
    /// let fixed = AutoFixer::new().fix_source(src, Cwe::SqlInjection).unwrap();
    /// assert!(fixed.contains("escape_sql"));
    /// ```
    pub fn fix_source(&self, source: &str, cwe: Cwe) -> Option<String> {
        self.fix_program(parse(source).ok()?, cwe).map(|p| print_program(&p))
    }

    /// [`AutoFixer::fix_source`] over an already-parsed program, returning
    /// the patched AST instead of text — callers holding a cached parse
    /// (the workflow repair stage) clone the AST (cheap: interned symbols)
    /// instead of re-lexing the source, verify the patched program
    /// directly, and print only when the fix sticks.
    pub fn fix_program(&self, mut program: Program, cwe: Cwe) -> Option<Program> {
        let changed = match cwe {
            Cwe::SqlInjection => fix_injection(&mut program, "sql", "escape_sql"),
            Cwe::CommandInjection => fix_injection(&mut program, "command", "escape_shell"),
            Cwe::CrossSiteScripting => fix_injection(&mut program, "xss", "escape_html"),
            Cwe::PathTraversal => fix_injection(&mut program, "path", "sanitize_path"),
            Cwe::FormatString => fix_format_string(&mut program),
            Cwe::HardcodedCredentials => fix_credentials(&mut program),
            Cwe::NullDereference => fix_null_deref(&mut program),
            Cwe::OutOfBoundsWrite => fix_oob_write(&mut program),
            Cwe::OutOfBoundsRead => fix_oob_read(&mut program),
            Cwe::UseAfterFree
            | Cwe::IntegerOverflow
            | Cwe::RaceCondition
            | Cwe::UninitializedUse
            | Cwe::DivideByZero
            | Cwe::DoubleFree
            | Cwe::IntegerTruncation
            | Cwe::Toctou => false,
        };
        changed.then_some(program)
    }
}

// ---------------------------------------------------------------------------
// Injection fixes: wrap tainted sink arguments in the canonical sanitizer.
// ---------------------------------------------------------------------------

fn fix_injection(program: &mut Program, kind: &str, sanitizer: &str) -> bool {
    let config = TaintConfig::default_config();
    let analysis = TaintAnalysis::run(program, &config);
    let spans: Vec<Span> =
        analysis.findings.iter().filter(|f| f.sink_kind == kind).map(|f| f.span).collect();
    if spans.is_empty() {
        return false;
    }
    let mut changed = false;
    for func in &mut program.functions {
        for s in &mut func.body {
            rewrite_stmt_exprs(s, &mut |e| {
                if let ExprKind::Call(_, args) = &mut e.kind {
                    if spans.contains(&e.span) {
                        for a in args.iter_mut() {
                            if !matches!(a.kind, ExprKind::Str(_) | ExprKind::Int(_)) {
                                let inner = a.clone();
                                *a = Expr::new(
                                    ExprKind::Call(sanitizer.into(), vec![inner]),
                                    a.span,
                                );
                                changed = true;
                            }
                        }
                    }
                }
            });
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Format string: printf_fmt(x) -> printf_fmt("%s", x).
// ---------------------------------------------------------------------------

fn fix_format_string(program: &mut Program) -> bool {
    let mut changed = false;
    for func in &mut program.functions {
        for s in &mut func.body {
            rewrite_stmt_exprs(s, &mut |e| {
                if let ExprKind::Call(name, args) = &mut e.kind {
                    if name == "printf_fmt"
                        && args.len() == 1
                        && !matches!(args[0].kind, ExprKind::Str(_))
                    {
                        let data = args.remove(0);
                        args.push(Expr::new(ExprKind::Str("%s".to_string()), data.span));
                        args.push(data);
                        changed = true;
                    }
                }
            });
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Credentials: secret-shaped literals -> load_secret("…").
// ---------------------------------------------------------------------------

fn secret_like(s: &str) -> bool {
    s.len() >= 10
        && !s.contains(' ')
        && !s.contains('/')
        && !s.contains('%')
        && s.chars().any(|c| c.is_ascii_digit())
        && s.chars().any(|c| c.is_ascii_alphabetic())
}

fn fix_credentials(program: &mut Program) -> bool {
    let mut changed = false;
    for func in &mut program.functions {
        for s in &mut func.body {
            rewrite_stmt_exprs(s, &mut |e| {
                // Do not rewrite the key-name argument of load_secret itself.
                if let ExprKind::Call(name, _) = &e.kind {
                    if name == "load_secret" {
                        return;
                    }
                }
                if let ExprKind::Str(lit) = &e.kind {
                    if secret_like(lit) {
                        e.kind = ExprKind::Call(
                            "load_secret".into(),
                            vec![Expr::new(ExprKind::Str("managed_api_key".to_string()), e.span)],
                        );
                        changed = true;
                    }
                }
            });
        }
    }
    changed
}

// ---------------------------------------------------------------------------
// Null dereference: insert `if (v == 0) { return; }` after risky lookups.
// ---------------------------------------------------------------------------

const MAYBE_NULL_FNS: [&str; 4] = ["find_entry", "lookup_user", "get_config", "find_session"];

fn fix_null_deref(program: &mut Program) -> bool {
    let mut changed = false;
    for func in &mut program.functions {
        changed |= insert_null_guards(&mut func.body);
    }
    changed
}

fn insert_null_guards(stmts: &mut Vec<Stmt>) -> bool {
    let mut changed = false;
    let mut i = 0;
    while i < stmts.len() {
        // Recurse into nested blocks first.
        match &mut stmts[i].kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                changed |= insert_null_guards(then_branch);
                if let Some(e) = else_branch {
                    changed |= insert_null_guards(e);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                changed |= insert_null_guards(body);
            }
            _ => {}
        }
        let needs_guard = match &stmts[i].kind {
            StmtKind::Decl { name, init: Some(init), .. } => {
                let risky = MAYBE_NULL_FNS.iter().any(|f| init.called_fns().contains(f));
                let already_guarded = stmts.get(i + 1).is_some_and(|next|

                    matches!(&next.kind, StmtKind::If { cond, .. } if is_null_cmp(cond, name)));
                (risky && !already_guarded).then(|| name.clone())
            }
            _ => None,
        };
        if let Some(var) = needs_guard {
            let span = stmts[i].span;
            let cond = Expr::new(
                ExprKind::Binary(
                    BinOp::Eq,
                    Box::new(Expr::new(ExprKind::Var(var), span)),
                    Box::new(Expr::new(ExprKind::Int(0), span)),
                ),
                span,
            );
            let guard = Stmt::new(
                StmtKind::If {
                    cond,
                    then_branch: vec![Stmt::new(StmtKind::Return(None), span)],
                    else_branch: None,
                },
                span,
            );
            stmts.insert(i + 1, guard);
            changed = true;
            i += 1;
        }
        i += 1;
    }
    changed
}

fn is_null_cmp(cond: &Expr, var: &str) -> bool {
    let mut found = false;
    cond.walk(&mut |e| {
        if let ExprKind::Binary(BinOp::Eq | BinOp::Ne, l, r) = &e.kind {
            let hit = (matches!(&l.kind, ExprKind::Var(v) if v == var)
                && matches!(r.kind, ExprKind::Int(0)))
                || (matches!(&r.kind, ExprKind::Var(v) if v == var)
                    && matches!(l.kind, ExprKind::Int(0)));
            if hit {
                found = true;
            }
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Out-of-bounds write: bound unbounded copy loops; replace strcpy.
// ---------------------------------------------------------------------------

fn fix_oob_write(program: &mut Program) -> bool {
    let mut changed = false;
    for func in &mut program.functions {
        let arrays = local_arrays(func);
        changed |= fix_oob_write_stmts(&mut func.body, &arrays);
    }
    changed
}

fn local_arrays(func: &Function) -> Vec<(String, usize)> {
    let mut v = Vec::new();
    func.walk_stmts(&mut |s| {
        if let StmtKind::Decl { name, ty: Type::Array(_, n), .. } = &s.kind {
            v.push((name.to_string(), *n));
        }
    });
    for p in &func.params {
        if let Type::Array(_, n) = &p.ty {
            v.push((p.name.to_string(), *n));
        }
    }
    v
}

fn fix_oob_write_stmts(stmts: &mut [Stmt], arrays: &[(String, usize)]) -> bool {
    let mut changed = false;
    for s in stmts.iter_mut() {
        match &mut s.kind {
            StmtKind::While { cond, body } => {
                changed |= fix_oob_write_stmts(body, arrays);
                // Find an index write into a known array.
                let mut target: Option<(String, usize)> = None;
                for inner in body.iter() {
                    if let StmtKind::Assign {
                        target: vulnman_lang::ast::LValue::Index(base, idx),
                        ..
                    } = &inner.kind
                    {
                        if let (ExprKind::Var(b), ExprKind::Var(i)) = (&base.kind, &idx.kind) {
                            if let Some((_, n)) = arrays.iter().find(|(a, _)| a == b) {
                                target = Some((i.to_string(), *n));
                            }
                        }
                    }
                }
                if let Some((idx_var, n)) = target {
                    if !cond_bounds(cond, &idx_var) {
                        let span = cond.span;
                        let bound = Expr::new(
                            ExprKind::Binary(
                                BinOp::Lt,
                                Box::new(Expr::new(ExprKind::Var(idx_var.into()), span)),
                                Box::new(Expr::new(ExprKind::Int(n as i64 - 1), span)),
                            ),
                            span,
                        );
                        let old = cond.clone();
                        *cond = Expr::new(
                            ExprKind::Binary(BinOp::And, Box::new(old), Box::new(bound)),
                            span,
                        );
                        changed = true;
                    }
                }
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                changed |= fix_oob_write_stmts(then_branch, arrays);
                if let Some(e) = else_branch {
                    changed |= fix_oob_write_stmts(e, arrays);
                }
            }
            StmtKind::For { body, .. } => {
                changed |= fix_oob_write_stmts(body, arrays);
            }
            StmtKind::Expr(e) => {
                // strcpy(buf, src) -> copy_bounded(buf, src, N-1)
                if let ExprKind::Call(name, args) = &mut e.kind {
                    if name == "strcpy" && args.len() == 2 {
                        if let ExprKind::Var(b) = &args[0].kind {
                            if let Some((_, n)) = arrays.iter().find(|(a, _)| a == b) {
                                *name = "copy_bounded".into();
                                args.push(Expr::new(ExprKind::Int(*n as i64 - 1), e.span));
                                changed = true;
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    changed
}

fn cond_bounds(cond: &Expr, var: &str) -> bool {
    let mut bounded = false;
    cond.walk(&mut |e| {
        if let ExprKind::Binary(op, l, r) = &e.kind {
            let l_is = matches!(&l.kind, ExprKind::Var(v) if v == var);
            let r_is = matches!(&r.kind, ExprKind::Var(v) if v == var);
            match op {
                BinOp::Lt | BinOp::Le if l_is => bounded = true,
                BinOp::Gt | BinOp::Ge if r_is => bounded = true,
                _ => {}
            }
        }
    });
    bounded
}

// ---------------------------------------------------------------------------
// Out-of-bounds read: insert a range guard before the first risky read.
// ---------------------------------------------------------------------------

fn fix_oob_read(program: &mut Program) -> bool {
    let mut changed = false;
    for func in &mut program.functions {
        let arrays = local_arrays(func);
        // Identify external indices (declared from to_int(…)).
        let mut ext: Vec<String> = Vec::new();
        func.walk_stmts(&mut |s| {
            if let StmtKind::Decl { name, init: Some(init), .. } = &s.kind {
                if init.called_fns().contains(&"to_int") {
                    ext.push(name.to_string());
                }
            }
        });
        for idx_var in ext {
            changed |= guard_read(&mut func.body, &idx_var, &arrays);
        }
    }
    changed
}

fn guard_read(stmts: &mut Vec<Stmt>, idx_var: &str, arrays: &[(String, usize)]) -> bool {
    for i in 0..stmts.len() {
        // Existing validation: done.
        if let StmtKind::If { cond, .. } = &stmts[i].kind {
            if cond.read_vars().contains(&idx_var) {
                return false;
            }
        }
        let mut risky_size: Option<usize> = None;
        for e in stmts[i].exprs() {
            e.walk(&mut |sub| {
                if let ExprKind::Index(base, idx) = &sub.kind {
                    if let (ExprKind::Var(b), ExprKind::Var(iv)) = (&base.kind, &idx.kind) {
                        if iv == idx_var {
                            if let Some((_, n)) = arrays.iter().find(|(a, _)| a == b) {
                                risky_size = Some(*n);
                            }
                        }
                    }
                }
            });
        }
        if let Some(n) = risky_size {
            let span = stmts[i].span;
            let var = |name: &str| Expr::new(ExprKind::Var(name.into()), span);
            let cond = Expr::new(
                ExprKind::Binary(
                    BinOp::Or,
                    Box::new(Expr::new(
                        ExprKind::Binary(
                            BinOp::Lt,
                            Box::new(var(idx_var)),
                            Box::new(Expr::new(ExprKind::Int(0), span)),
                        ),
                        span,
                    )),
                    Box::new(Expr::new(
                        ExprKind::Binary(
                            BinOp::Ge,
                            Box::new(var(idx_var)),
                            Box::new(Expr::new(ExprKind::Int(n as i64), span)),
                        ),
                        span,
                    )),
                ),
                span,
            );
            let guard = Stmt::new(
                StmtKind::If {
                    cond,
                    then_branch: vec![Stmt::new(StmtKind::Return(None), span)],
                    else_branch: None,
                },
                span,
            );
            stmts.insert(i, guard);
            return true;
        }
        // Recurse into nested statements.
        let nested_changed = match &mut stmts[i].kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                let mut c = guard_read(then_branch, idx_var, arrays);
                if let Some(e) = else_branch {
                    c |= guard_read(e, idx_var, arrays);
                }
                c
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                guard_read(body, idx_var, arrays)
            }
            _ => false,
        };
        if nested_changed {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Expression rewriting plumbing
// ---------------------------------------------------------------------------

/// Applies `f` to every expression in the statement tree, bottom-up, so a
/// rewrite sees already-rewritten children.
fn rewrite_stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match &mut s.kind {
        StmtKind::Decl { init, .. } => {
            if let Some(e) = init {
                rewrite_expr(e, f);
            }
        }
        StmtKind::Assign { target, value, .. } => {
            match target {
                vulnman_lang::ast::LValue::Var(_) => {}
                vulnman_lang::ast::LValue::Deref(e) => rewrite_expr(e, f),
                vulnman_lang::ast::LValue::Index(b, i) => {
                    rewrite_expr(b, f);
                    rewrite_expr(i, f);
                }
            }
            rewrite_expr(value, f);
        }
        StmtKind::If { cond, then_branch, else_branch } => {
            rewrite_expr(cond, f);
            for t in then_branch {
                rewrite_stmt_exprs(t, f);
            }
            if let Some(e) = else_branch {
                for t in e {
                    rewrite_stmt_exprs(t, f);
                }
            }
        }
        StmtKind::While { cond, body } => {
            rewrite_expr(cond, f);
            for t in body {
                rewrite_stmt_exprs(t, f);
            }
        }
        StmtKind::For { init, cond, step, body } => {
            if let Some(i) = init {
                rewrite_stmt_exprs(i, f);
            }
            if let Some(c) = cond {
                rewrite_expr(c, f);
            }
            if let Some(st) = step {
                rewrite_stmt_exprs(st, f);
            }
            for t in body {
                rewrite_stmt_exprs(t, f);
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                rewrite_expr(e, f);
            }
        }
        StmtKind::Expr(e) => rewrite_expr(e, f),
        StmtKind::Break | StmtKind::Continue => {}
    }
}

fn rewrite_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match &mut e.kind {
        ExprKind::Unary(_, inner) => rewrite_expr(inner, f),
        ExprKind::Binary(_, l, r) => {
            rewrite_expr(l, f);
            rewrite_expr(r, f);
        }
        ExprKind::Call(_, args) => {
            for a in args {
                rewrite_expr(a, f);
            }
        }
        ExprKind::Index(b, i) => {
            rewrite_expr(b, f);
            rewrite_expr(i, f);
        }
        _ => {}
    }
    f(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detectors::RuleEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vulnman_synth::emit::EmitCtx;
    use vulnman_synth::style::StyleProfile;
    use vulnman_synth::templates;
    use vulnman_synth::tier::Tier;

    fn fixer() -> AutoFixer {
        AutoFixer::new()
    }

    #[test]
    fn fixes_remove_findings_for_supported_classes() {
        let engine = RuleEngine::default_suite();
        let style = StyleProfile::mainstream();
        for cwe in AutoFixer::supported_cwes() {
            for seed in 0..5u64 {
                let mut rng = StdRng::seed_from_u64(seed + cwe.id() as u64);
                let mut ctx = EmitCtx::new(&style, Tier::Curated, &mut rng);
                let pair = templates::generate(cwe, &mut ctx);
                let fixed = fixer()
                    .fix_source(&pair.vulnerable, cwe)
                    .unwrap_or_else(|| panic!("{cwe}: fix must apply\n{}", pair.vulnerable));
                vulnman_lang::parse(&fixed)
                    .unwrap_or_else(|e| panic!("{cwe}: fixed source must parse: {e}\n{fixed}"));
                let remaining = engine.scan_source(&fixed).unwrap();
                assert!(
                    remaining.iter().all(|f| f.cwe != cwe),
                    "{cwe}: finding should be remediated\n{fixed}\n{remaining:?}"
                );
            }
        }
    }

    #[test]
    fn unsupported_classes_return_none() {
        let src = r#"void f() { char* p = alloc_buffer(8); free_mem(p); p[0] = 'x'; }"#;
        assert!(fixer().fix_source(src, Cwe::UseAfterFree).is_none());
        assert!(!AutoFixer::supports(Cwe::UseAfterFree));
        assert!(!AutoFixer::supports(Cwe::RaceCondition));
        assert!(!AutoFixer::supports(Cwe::IntegerOverflow));
    }

    #[test]
    fn clean_code_returns_none() {
        let src = r#"void f() { char* q = escape_sql(http_param("id")); exec_query(q); }"#;
        assert!(fixer().fix_source(src, Cwe::SqlInjection).is_none());
    }

    #[test]
    fn format_fix_shape() {
        let src = r#"void f() { char* m = read_input(); printf_fmt(m); }"#;
        let fixed = fixer().fix_source(src, Cwe::FormatString).unwrap();
        assert!(fixed.contains("printf_fmt(\"%s\", m)"), "{fixed}");
    }

    #[test]
    fn credential_fix_uses_secret_store() {
        let src = r#"void f() { char* k = "sk_live_9aF3xQ81LmZz"; int c = authenticate("svc", k); use(c); }"#;
        let fixed = fixer().fix_source(src, Cwe::HardcodedCredentials).unwrap();
        assert!(fixed.contains("load_secret"));
        assert!(!fixed.contains("sk_live"));
    }

    #[test]
    fn null_guard_inserted_once() {
        let src = r#"void f() { char* e = find_entry(1); e[0] = 'x'; }"#;
        let fixed = fixer().fix_source(src, Cwe::NullDereference).unwrap();
        assert_eq!(fixed.matches("== 0").count(), 1, "{fixed}");
        // Idempotent: re-fixing finds nothing to do.
        assert!(fixer().fix_source(&fixed, Cwe::NullDereference).is_none(), "{fixed}");
    }

    #[test]
    fn oob_write_loop_gets_bound() {
        let src = r#"void f() { char buf[8]; char* s = read_input(); int i = 0; while (s[i] != '\0') { buf[i] = s[i]; i++; } }"#;
        let fixed = fixer().fix_source(src, Cwe::OutOfBoundsWrite).unwrap();
        assert!(fixed.contains("i < 7"), "{fixed}");
    }

    #[test]
    fn strcpy_replaced_with_bounded_copy() {
        let src = r#"void f() { char buf[16]; char* s = read_input(); strcpy(buf, s); }"#;
        let fixed = fixer().fix_source(src, Cwe::OutOfBoundsWrite).unwrap();
        assert!(fixed.contains("copy_bounded(buf, s, 15)"), "{fixed}");
    }

    #[test]
    fn oob_read_guard_inserted_before_access() {
        let src = r#"void f() { int t[8]; init_table(t, 8); int i = to_int(http_param("x")); int v = t[i]; use(v); }"#;
        let fixed = fixer().fix_source(src, Cwe::OutOfBoundsRead).unwrap();
        let guard_pos = fixed.find(">= 8").unwrap();
        let read_pos = fixed.find("t[i]").unwrap();
        assert!(guard_pos < read_pos, "{fixed}");
    }
}
